"""EXT — beyond the paper: DRRIP and CAMP baselines under Base-Victim.

Section VII.C names adopting CAMP (compressed-size-aware replacement) in
the Baseline Cache as future work; DRRIP is the dynamic variant of the
SRRIP policy the paper evaluates.  This extension bench verifies the
architecture's composability claim on both: the Base-Victim guarantee
(reads never above the same-policy uncompressed baseline) holds, and
compression adds performance on top of each policy.
"""

from dataclasses import replace

from benchmarks.conftest import ratio_maps
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB
from repro.sim.metrics import count_losers, geomean
from repro.sim.report import format_table

#: Extension policies under test.
POLICIES = ("drrip", "camp")


def run_ext_policies(runner, names):
    rows = {}
    for policy in POLICIES:
        policy_base = replace(BASELINE_2MB, policy=policy)
        policy_bv = replace(BASE_VICTIM_2MB, policy=policy)
        vs_nru, _ = ratio_maps(runner, policy_base, BASELINE_2MB, names)
        with_bv, _ = ratio_maps(runner, policy_bv, BASELINE_2MB, names)
        vs_self, self_reads = ratio_maps(runner, policy_bv, policy_base, names)
        rows[policy] = {
            "policy vs nru": geomean(vs_nru.values()),
            "policy+compression vs nru": geomean(with_bv.values()),
            "compression vs same policy": geomean(vs_self.values()),
            "self losers": count_losers(vs_self.values(), threshold=0.99),
            "max read ratio": max(self_reads.values()),
        }
    return rows


def test_ext_advanced_policies(benchmark, runner, sensitive_names):
    rows = benchmark.pedantic(
        run_ext_policies, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    print("Extension — DRRIP and CAMP baselines (60 cache-sensitive traces)")
    print(
        format_table(
            [
                "policy",
                "vs NRU",
                "+compr vs NRU",
                "compr vs self",
                "losers",
                "max rd",
            ],
            [
                [
                    policy,
                    f"{r['policy vs nru']:.3f}",
                    f"{r['policy+compression vs nru']:.3f}",
                    f"{r['compression vs same policy']:.3f}",
                    r["self losers"],
                    f"{r['max read ratio']:.3f}",
                ]
                for policy, r in rows.items()
            ],
        )
    )

    for policy, r in rows.items():
        # Composability: compression gains on top of every policy.
        assert r["compression vs same policy"] > 1.0, policy

    # The structural guarantee (reads never above the same-policy
    # uncompressed cache) holds for size-blind policies like DRRIP.  CAMP
    # is size-aware: its insertion depends on compressed sizes, which an
    # uncompressed cache cannot see, so the two baselines legitimately
    # diverge and only the aggregate gain is asserted.
    assert rows["drrip"]["self losers"] == 0
    assert rows["drrip"]["max read ratio"] <= 1.0 + 1e-9
    assert rows["camp"]["max read ratio"] <= 1.05

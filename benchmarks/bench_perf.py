#!/usr/bin/env python
"""Standalone perf-benchmark runner (the script CI's perf-smoke job runs).

Thin wrapper over :mod:`repro.sim.perfbench` so the benchmark works both
as ``python benchmarks/bench_perf.py`` and as ``repro perf``.  Typical
invocations:

    # Full bench-preset matrix, 3 repeats, table to stdout:
    PYTHONPATH=src python benchmarks/bench_perf.py

    # CI smoke slice: 2 traces on the test preset, gate against the
    # committed baseline, write the artifact:
    PYTHONPATH=src python benchmarks/bench_perf.py \
        --preset test --trace mcf.1 --trace sjeng.1 \
        --output BENCH_PERF.ci.json \
        --check BENCH_PERF.json --section test-ci
"""

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.perfbench import main

if __name__ == "__main__":
    raise SystemExit(main())

"""E4 — Figure 9: per-category gains vs a 50% larger uncompressed cache.

Paper result: for compression-friendly traces, Base-Victim averages +8.5%
against the 2MB baseline — the same as a 3MB uncompressed LLC (which pays
one extra cycle of latency); across all cache-sensitive traces the split
is +7.3% (Base-Victim) vs +8.1% (3MB).  Per-category ordering: SPECint
and client gain most, SPECfp least.
"""

from benchmarks.conftest import merged_obs, ratio_maps
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, UNCOMPRESSED_3MB
from repro.sim.metrics import geomean
from repro.sim.report import category_table, hit_category_breakdown


def run_figure9(runner, names):
    bv_ipc, _ = ratio_maps(runner, BASE_VICTIM_2MB, BASELINE_2MB, names)
    big_ipc, _ = ratio_maps(runner, UNCOMPRESSED_3MB, BASELINE_2MB, names)
    return bv_ipc, big_ipc


def test_fig09_per_category(
    benchmark, runner, sensitive_names, friendly_names
):
    bv_ipc, big_ipc = benchmark.pedantic(
        run_figure9, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    friendly = set(friendly_names)
    print(
        category_table(
            {
                "3MB uncompressed (CF)": {
                    n: r for n, r in big_ipc.items() if n in friendly
                },
                "Base-Victim (CF)": {
                    n: r for n, r in bv_ipc.items() if n in friendly
                },
                "3MB uncompressed (all)": big_ipc,
                "Base-Victim (all)": bv_ipc,
            },
            "Figure 9 — per-category IPC ratio vs 2MB baseline",
        )
    )
    bv_overall = geomean(bv_ipc.values())
    big_overall = geomean(big_ipc.values())
    print("\n  paper: Base-Victim +7.3% overall vs 3MB +8.1%")
    print(f"  measured: Base-Victim {bv_overall:.3f} vs 3MB {big_overall:.3f}")

    # Where Base-Victim's gain comes from: the observability layer's
    # hit-category split over the same runs (all served from cache).
    breakdown = hit_category_breakdown(merged_obs(runner, BASE_VICTIM_2MB, sensitive_names))
    llc_total = breakdown["llc_base"] + breakdown["llc_victim"]
    print("\n  Base-Victim hit categories over the 60 sensitive traces:")
    print(f"    {breakdown}")
    print(f"    victim-cache share of LLC hits: {breakdown['llc_victim'] / llc_total:.1%}")
    assert breakdown["llc_victim"] > 0, "victim cache never hit across the suite"

    # Shape: Base-Victim performs like the 50% larger cache — close to it
    # and slightly below on average.
    assert bv_overall > 1.0 and big_overall > 1.0
    assert abs(bv_overall - big_overall) < 0.06, (
        "Base-Victim should track the 3MB uncompressed cache"
    )

"""E3 — Figure 8: Base-Victim opportunistic compression (the headline).

Paper result: reads from memory never exceed the baseline; only one
0.01%-level negative IPC outlier (decompression + tag latency); +8.5%
and −16% reads for compression-friendly traces; +1.45% for poorly
compressing ones; +7.3% across all 60 cache-sensitive traces.
"""

from pathlib import Path

from benchmarks.conftest import ratio_maps
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB
from repro.sim.figures import ascii_series_plot, write_series_csv
from repro.sim.metrics import count_losers, geomean
from repro.sim.report import ratio_series_summary


def run_figure8(runner, names):
    return ratio_maps(runner, BASE_VICTIM_2MB, BASELINE_2MB, names)


def test_fig08_base_victim(
    benchmark, runner, sensitive_names, friendly_names, poor_names
):
    ipc, reads = benchmark.pedantic(
        run_figure8, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    print(
        ratio_series_summary(
            "Figure 8 — Base-Victim opportunistic compression", ipc, reads
        )
    )
    series = {"IPC ratio": ipc, "DRAM read ratio": reads}
    print(ascii_series_plot(series, "Figure 8 (sorted per-trace series)"))
    csv_path = Path(".repro_cache") / "figure8.csv"
    if csv_path.parent.is_dir():
        write_series_csv(csv_path, series)
        print(f"  series exported to {csv_path}")
    cf = geomean(ipc[n] for n in friendly_names)
    cf_reads = geomean(reads[n] for n in friendly_names)
    poor = geomean(ipc[n] for n in poor_names)
    overall = geomean(ipc.values())
    print("  paper: CF +8.5% / reads −16%; poor +1.45%; overall +7.3%")
    print(
        f"  measured: CF {cf:.3f} / reads {cf_reads:.3f}; "
        f"poor {poor:.3f}; overall {overall:.3f}"
    )

    # The structural guarantee: DRAM reads never above baseline.
    assert all(r <= 1.0 + 1e-9 for r in reads.values()), (
        "Base-Victim must never read more from memory than the baseline"
    )
    # Performance: essentially no losers (tiny latency-induced dips only).
    assert min(ipc.values()) > 0.98
    assert count_losers(ipc.values(), threshold=0.99) == 0
    # Gains concentrate in compression-friendly traces.
    assert cf > poor > 0.99
    assert overall > 1.0

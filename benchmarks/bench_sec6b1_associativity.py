"""E11 — Section VI.B.1: effect of LLC associativity.

Paper result: a 16-tags-per-set Base-Victim (8 baseline ways + 8 victim
tags over the same 2MB capacity) gains 6.2% vs the 16-way baseline,
compared to 7.3% for the 32-tag version; meanwhile doubling the
*uncompressed* cache's associativity from 16 to 32 gains ~nothing —
the benefit comes from compression, not extra tags.
"""

from benchmarks.conftest import ratio_maps
from repro.sim.config import (
    ARCH_BASE_VICTIM,
    BASE_VICTIM_2MB,
    BASELINE_2MB,
    MachineConfig,
)
from repro.sim.metrics import geomean

#: Same 2MB capacity, half the ways, twice the sets: 16 tags/set under
#: compression.
BASE_VICTIM_16TAG = MachineConfig(
    arch=ARCH_BASE_VICTIM, llc_ways=8, llc_sets_mult=2.0
)

#: 32-way uncompressed 2MB (half the sets).
UNCOMPRESSED_32WAY = MachineConfig(llc_ways=32, llc_sets_mult=0.5)


def run_sec6b1(runner, names):
    bv32, _ = ratio_maps(runner, BASE_VICTIM_2MB, BASELINE_2MB, names)
    bv16, _ = ratio_maps(runner, BASE_VICTIM_16TAG, BASELINE_2MB, names)
    assoc32, _ = ratio_maps(runner, UNCOMPRESSED_32WAY, BASELINE_2MB, names)
    return bv32, bv16, assoc32


def test_sec6b1_associativity(benchmark, runner, sensitive_names):
    bv32, bv16, assoc32 = benchmark.pedantic(
        run_sec6b1, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    g32 = geomean(bv32.values())
    g16 = geomean(bv16.values())
    ga = geomean(assoc32.values())
    print("Section VI.B.1 — associativity sensitivity (vs 2MB 16-way baseline)")
    print("  paper: 32-tag BV +7.3%; 16-tag BV +6.2%; 32-way uncompressed ~0%")
    print(f"  measured: 32-tag BV {g32:.3f}; 16-tag BV {g16:.3f}; "
          f"32-way uncompressed {ga:.3f}")

    # Shape: both compressed variants gain; fewer tags gain somewhat less;
    # raw associativity without compression gains almost nothing.
    assert g32 > 1.0 and g16 > 1.0
    assert g16 < g32 + 0.005, "halving the tags should not gain more"
    assert abs(ga - 1.0) < 0.03, "extra associativity alone is near-neutral"
    assert g32 - ga > 0.02, "compression must clearly beat extra tags alone"

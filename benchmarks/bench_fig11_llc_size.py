"""E6 — Figure 11: sensitivity to LLC size.

Paper result (vs a 2MB uncompressed baseline): a 4MB uncompressed cache
gains 15.8%; Base-Victim on top of 4MB adds a further 6.8%; a 6MB
(50% larger than 4MB) uncompressed cache reaches ~9% over 4MB.
"""


from benchmarks.conftest import ratio_maps
from repro.sim.config import ARCH_BASE_VICTIM, BASELINE_2MB, MachineConfig
from repro.sim.metrics import geomean
from repro.sim.report import category_table

#: 4MB: doubled sets.  6MB: doubled sets + 24 ways (+1 cycle, as 3MB).
UNCOMPRESSED_4MB = MachineConfig(llc_sets_mult=2.0)
UNCOMPRESSED_6MB = MachineConfig(llc_ways=24, llc_sets_mult=2.0, extra_llc_latency=1)
BASE_VICTIM_4MB = MachineConfig(arch=ARCH_BASE_VICTIM, llc_sets_mult=2.0)


def run_figure11(runner, names):
    series = {}
    for label, machine in (
        ("4MB", UNCOMPRESSED_4MB),
        ("6MB", UNCOMPRESSED_6MB),
        ("4MB+compression", BASE_VICTIM_4MB),
    ):
        series[label], _ = ratio_maps(runner, machine, BASELINE_2MB, names)
    return series


def test_fig11_llc_size(benchmark, runner, sensitive_names):
    series = benchmark.pedantic(
        run_figure11, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    print(
        category_table(
            series, "Figure 11 — LLC size sensitivity (IPC ratio vs 2MB baseline)"
        )
    )
    g4 = geomean(series["4MB"].values())
    g6 = geomean(series["6MB"].values())
    g4bv = geomean(series["4MB+compression"].values())
    print("\n  paper: 4MB +15.8%; compression adds +6.8% on top; 6MB ~ +25%")
    print(
        f"  measured: 4MB {g4:.3f}; 4MB+compression {g4bv:.3f} "
        f"(adds {g4bv / g4:.3f}); 6MB {g6:.3f}"
    )

    # Shape: compression still pays at 4MB, and lands near the 6MB cache.
    assert g4bv > g4, "compression must add performance on a 4MB LLC"
    assert g4 > 1.0
    assert abs(g4bv - g6) < 0.08, "4MB+compression should be close to 6MB"

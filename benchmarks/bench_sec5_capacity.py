"""E14 — Sections V / VI.B.4: effective capacity of the architectures.

Paper: functional simulation of VSC-2X/DCC-style designs "comes close to
an 80% increase in cache capacity", while the opportunistic Base-Victim
architecture reaches ~1.5x effective capacity even though friendly data
compresses ~2x — the victim cache's pairing constraint costs the rest.
This bench measures resident logical lines per physical line slot on the
compression-friendly traces.
"""

from repro.core.interfaces import AccessKind
from repro.sim.config import (
    ARCH_BASE_VICTIM,
    ARCH_DCC,
    ARCH_SCC,
    ARCH_VSC,
    BENCH,
    MachineConfig,
)
from repro.sim.metrics import geomean
from repro.workloads.suite import friendly_specs

#: Traces sampled for the functional capacity measurement.
SAMPLE = 12


def effective_capacity(runner, machine: MachineConfig, name: str) -> float:
    """Average resident logical lines / physical lines over a trace replay.

    Drives the raw architecture directly (no hierarchy) so the number is
    a pure capacity measurement, as in the paper's functional models.
    """
    llc = machine.build_llc(BENCH)
    suite = runner.suite
    trace = suite.trace(name)
    data = suite.data_model(name)
    physical = llc.geometry.num_lines
    samples = []
    addrs = trace.addrs
    kinds = trace.kinds
    for i in range(len(addrs)):
        kind = AccessKind.WRITE if kinds[i] == 1 else AccessKind.READ
        llc.access(addrs[i], kind, data.size_of(addrs[i]))
        if i % 2048 == 2047:
            samples.append(llc.resident_logical_lines() / physical)
    # Ignore the cold-start ramp: use the second half of the run.
    tail = samples[len(samples) // 2 :]
    return sum(tail) / len(tail)


def run_sec5(runner):
    names = [spec.name for spec in friendly_specs() if spec.ws_factor > 1.4]
    names = names[:SAMPLE]
    machines = {
        "vsc-2x": MachineConfig(arch=ARCH_VSC),
        "dcc": MachineConfig(arch=ARCH_DCC),
        "scc": MachineConfig(arch=ARCH_SCC),
        "base-victim": MachineConfig(arch=ARCH_BASE_VICTIM),
    }
    return {
        label: [effective_capacity(runner, machine, n) for n in names]
        for label, machine in machines.items()
    }


def test_sec5_effective_capacity(benchmark, runner):
    capacities = benchmark.pedantic(run_sec5, args=(runner,), rounds=1, iterations=1)
    print()
    means = {label: geomean(values) for label, values in capacities.items()}
    print("Sections V / VI.B.4 — effective capacity on friendly traces")
    print("  paper: VSC-2X/DCC-class designs ~1.8x, Base-Victim ~1.5x")
    print(
        "  measured: "
        + ", ".join(f"{label} {mean:.2f}x" for label, mean in means.items())
    )

    # Shape: the unconstrained decoupled designs pack more than
    # Base-Victim's pairing constraint allows; all exceed 1x.
    assert means["vsc-2x"] > means["base-victim"] > 1.2
    assert means["vsc-2x"] > 1.5
    assert means["base-victim"] < 1.85
    # DCC/SCC trade capacity for simpler data paths: between BV and VSC,
    # with SCC's power-of-two rounding costing it some packing density.
    assert means["dcc"] > 1.2
    assert means["scc"] <= means["vsc-2x"] + 0.05

"""E13 — Section IV.C: area overheads.

Paper arithmetic for a 2MB 16-way LLC with 48-bit addresses: the added
Victim Cache tag (31 bits) plus 9 metadata bits (two 4-bit size fields,
one valid bit) cost 40b/(39b+512b) = 7.3% of the tag+data array; adding
the 1.2% compression/decompression logic estimate yields 8.5% total.
"""

import pytest

from repro.cache.config import CacheGeometry
from repro.power.area import base_victim_area, paper_headline_area
from repro.sim.report import format_table


def run_sec4c():
    headline = paper_headline_area()
    sweep = {
        f"{mb}MB/16w": base_victim_area(CacheGeometry(mb * 2**20, 16))
        for mb in (1, 2, 4, 8)
    }
    return headline, sweep


def test_sec4c_area(benchmark):
    headline, sweep = benchmark.pedantic(run_sec4c, rounds=1, iterations=1)
    print()
    print("Section IV.C — Base-Victim area overhead")
    rows = [
        [
            label,
            report.tag_bits,
            report.added_bits,
            f"{report.tag_metadata_overhead:.1%}",
            f"{report.total_overhead:.1%}",
        ]
        for label, report in sweep.items()
    ]
    print(
        format_table(
            ["geometry", "tag bits", "added bits/way", "tags+meta", "total"],
            rows,
        )
    )
    print("\n  paper: 31-bit tags, 40 added bits, 7.3% tags+meta, 8.5% total")

    assert headline.tag_bits == 31
    assert headline.added_bits == 40
    assert headline.tag_metadata_overhead == pytest.approx(0.073, abs=0.001)
    assert headline.total_overhead == pytest.approx(0.085, abs=0.001)

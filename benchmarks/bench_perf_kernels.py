"""Performance microbenchmarks of the simulator's hot kernels.

Unlike the figure benches (which reproduce the paper and run their
workload once), these time the library's inner loops with repeated
rounds, so performance regressions in the simulator itself are caught:

* BDI compression/decompression throughput,
* codec size computation, scalar vs vectorised, per codec,
* LLC access throughput per architecture,
* DRAM model request rate,
* end-to-end hierarchy access rate.
"""

import struct

import pytest

from repro.cache.config import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.replacement import NRUPolicy, make_victim_policy
from repro.compression import kernels, make_compressor
from repro.compression.bdi import BDICompressor
from repro.core.basevictim import BaseVictimLLC
from repro.core.interfaces import AccessKind
from repro.core.uncompressed import UncompressedLLC
from repro.memory.dram import DRAMModel


def _sample_lines() -> list[bytes]:
    base = 0x3FF0_0000_0000_0000
    return [
        b"\x00" * 64,
        struct.pack("<8Q", *(base + i * 3 for i in range(8))),
        struct.pack("<16i", *(i - 8 for i in range(16))),
        bytes((i * 37 + 11) % 256 for i in range(64)),
    ]


def test_perf_bdi_compress(benchmark):
    bdi = BDICompressor()
    lines = _sample_lines()

    def kernel():
        for line in lines:
            bdi.compress(line)

    benchmark(kernel)


def test_perf_bdi_roundtrip(benchmark):
    bdi = BDICompressor()
    blocks = [bdi.compress(line) for line in _sample_lines()]

    def kernel():
        for block in blocks:
            bdi.decompress(block)

    benchmark(kernel)


def _codec_lines(n=256):
    """Deterministic 64B lines spanning the compressibility spectrum."""
    lines = []
    state = 12345
    for i in range(n):
        kind = i % 4
        if kind == 0:
            lines.append(b"\x00" * 64)
        elif kind == 1:
            base = 0x1000 + i * 97
            lines.append(struct.pack("<8Q", *(base + j * (i % 5) for j in range(8))))
        elif kind == 2:
            lines.append(
                struct.pack("<16i", *((j - 8) * (i % 7 + 1) for j in range(16)))
            )
        else:
            out = bytearray()
            for _ in range(64):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                out.append(state & 0xFF)
            lines.append(bytes(out))
    return lines


@pytest.mark.parametrize("codec", sorted(kernels.SIZE_KERNELS))
def test_perf_codec_size_scalar(benchmark, codec):
    """Scalar baseline: one compress() call per line, sizes only."""
    compressor = make_compressor(codec)
    lines = _codec_lines()

    def kernel():
        return [compressor.compress(line).size_bytes for line in lines]

    benchmark(kernel)


@pytest.mark.parametrize("codec", sorted(kernels.SIZE_KERNELS))
def test_perf_codec_size_vectorized(benchmark, codec):
    """One kernel pass over the whole line matrix (the load-time path)."""
    if not kernels.available():
        pytest.skip("NumPy unavailable; vectorised size kernels inactive")
    lines = _codec_lines()
    matrix = kernels.lines_matrix(lines)
    size_kernel = kernels.SIZE_KERNELS[codec]

    # The two rows must time identical work, or a regression in either
    # path could hide behind a semantic drift between them.
    compressor = make_compressor(codec)
    scalar = [compressor.compress(line).size_bytes for line in lines]
    assert size_kernel(matrix).tolist() == scalar

    benchmark(lambda: size_kernel(matrix))


def _address_stream(n=2048, footprint=4096):
    addr = 1
    out = []
    for i in range(n):
        addr = (addr * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(addr % footprint)
    return out


def test_perf_uncompressed_llc_access(benchmark):
    llc = UncompressedLLC(CacheGeometry(256 * 1024, 16), NRUPolicy())
    addrs = _address_stream()

    def kernel():
        for addr in addrs:
            llc.access(addr, AccessKind.READ, 16)

    benchmark(kernel)


def test_perf_base_victim_llc_access(benchmark):
    llc = BaseVictimLLC(
        CacheGeometry(256 * 1024, 16), NRUPolicy(), make_victim_policy("ecm")
    )
    addrs = _address_stream()

    def kernel():
        for i, addr in enumerate(addrs):
            llc.access(addr, AccessKind.READ, 4 + (i & 7))

    benchmark(kernel)


def test_perf_dram_requests(benchmark):
    dram = DRAMModel()
    addrs = _address_stream(n=1024, footprint=1 << 20)

    def kernel():
        now = 0.0
        for addr in addrs:
            now += 40.0
            dram.read(addr, now)

    benchmark(kernel)


def test_perf_full_hierarchy_access(benchmark):
    llc = BaseVictimLLC(
        CacheGeometry(256 * 1024, 16), NRUPolicy(), make_victim_policy("ecm")
    )
    hierarchy = CacheHierarchy(
        llc,
        size_fn=lambda addr: 4 + (addr & 7),
        config=HierarchyConfig(
            l1_geometry=CacheGeometry(4 * 1024, 8),
            l2_geometry=CacheGeometry(32 * 1024, 8),
        ),
        memory=DRAMModel(),
    )
    addrs = _address_stream()

    def kernel():
        for i, addr in enumerate(addrs):
            hierarchy.now += 30.0
            hierarchy.access(addr, i & 7 == 0)

    benchmark(kernel)

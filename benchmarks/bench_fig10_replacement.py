"""E5 — Figure 10: synergy with advanced replacement policies.

Paper result: on top of NRU, SRRIP gains 2.9% and CHAR 3.2%; adding
Base-Victim compression yields a further 6.4% (SRRIP) and 7.2% (CHAR),
with no decrease in baseline hit rate and no negative outliers — the
architecture composes with any baseline replacement policy.
"""

from dataclasses import replace

from benchmarks.conftest import ratio_maps
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB
from repro.sim.metrics import count_losers, geomean
from repro.sim.report import category_table


def run_figure10(runner, names):
    series = {}
    for policy in ("srrip", "char"):
        policy_base = replace(BASELINE_2MB, policy=policy)
        policy_bv = replace(BASE_VICTIM_2MB, policy=policy)
        series[policy], _ = ratio_maps(runner, policy_base, BASELINE_2MB, names)
        series[policy + "+compression"], _ = ratio_maps(
            runner, policy_bv, BASELINE_2MB, names
        )
        # For the no-outlier check: compression vs its own policy baseline.
        series[policy + "/self"], _ = ratio_maps(runner, policy_bv, policy_base, names)
    return series


def test_fig10_replacement_policies(benchmark, runner, sensitive_names):
    series = benchmark.pedantic(
        run_figure10, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    print(
        category_table(
            {k: v for k, v in series.items() if not k.endswith("/self")},
            "Figure 10 — replacement policies x compression (vs NRU baseline)",
        )
    )
    srrip = geomean(series["srrip"].values())
    srrip_bv = geomean(series["srrip+compression"].values())
    char = geomean(series["char"].values())
    char_bv = geomean(series["char+compression"].values())
    print("\n  paper: SRRIP +2.9% -> +6.4% more; CHAR +3.2% -> +7.2% more")
    print(
        f"  measured: SRRIP {srrip:.3f} -> {srrip_bv:.3f}; "
        f"CHAR {char:.3f} -> {char_bv:.3f}"
    )

    # Shape: compression adds performance on top of each advanced policy.
    assert srrip_bv > srrip
    assert char_bv > char
    # And introduces no negative outliers vs the same-policy baseline.
    for policy in ("srrip", "char"):
        self_ratios = series[policy + "/self"]
        assert min(self_ratios.values()) > 0.98
        assert count_losers(self_ratios.values(), threshold=0.99) == 0

"""E8 — Figure 13: four-thread multi-program mixes on a shared LLC.

Paper result: vs a 4MB shared baseline, Base-Victim gains 8.7% weighted
speedup on average while a 6MB cache gains 9%; vs an 8MB baseline it
gains 11.2% while a 12MB cache gains 15.7%.  Every mix's hit rate is at
least the uncompressed cache's.
"""

from repro.sim.config import ARCH_BASE_VICTIM, MachineConfig
from repro.sim.metrics import geomean, weighted_speedup
from repro.workloads.mixes import build_mixes

#: Multi-program LLCs (Section V: 4MB shared for 4 threads).
BASE_4MB = MachineConfig(llc_sets_mult=2.0)
BV_4MB = MachineConfig(arch=ARCH_BASE_VICTIM, llc_sets_mult=2.0)
BIG_6MB = MachineConfig(llc_ways=24, llc_sets_mult=2.0, extra_llc_latency=1)

#: Mixes simulated per configuration (all 20 by default).
NUM_MIXES = 20


def run_figure13(runner):
    mixes = build_mixes()[:NUM_MIXES]
    machines = {"4MB": BASE_4MB, "4MB+compression": BV_4MB, "6MB": BIG_6MB}
    # One prewarm covers the whole figure, so every uncached mix and
    # single-program run fans out across the runner's workers at once.
    alone_names = sorted({name for mix in mixes for name in mix.trace_names})
    runner.prewarm(
        pairs=[(m, name) for m in machines.values() for name in alone_names],
        mixes=[(m, mix) for m in machines.values() for mix in mixes],
    )
    speedups: dict[str, dict[str, float]] = {label: {} for label in machines}
    hit_rates: dict[str, dict[str, float]] = {label: {} for label in machines}
    for label, machine in machines.items():
        for mix in mixes:
            shared = runner.run_mix(machine, mix)
            alone = [
                runner.run_single(machine, name) for name in mix.trace_names
            ]
            speedups[label][mix.name] = weighted_speedup(
                shared.thread_results, alone
            )
            hit_rates[label][mix.name] = shared.llc_hit_rate
    return speedups, hit_rates


def test_fig13_multiprogram(benchmark, runner):
    speedups, hit_rates = benchmark.pedantic(
        run_figure13, args=(runner,), rounds=1, iterations=1
    )
    print()
    print("Figure 13 — weighted speedup normalised to the 4MB baseline")
    base = speedups["4MB"]
    print(f"{'mix':8s} {'4MB+compr':>10s} {'6MB':>8s}")
    ratios_bv = {}
    ratios_big = {}
    for mix_name in sorted(base):
        ratios_bv[mix_name] = speedups["4MB+compression"][mix_name] / base[mix_name]
        ratios_big[mix_name] = speedups["6MB"][mix_name] / base[mix_name]
        print(
            f"{mix_name:8s} {ratios_bv[mix_name]:10.3f} {ratios_big[mix_name]:8.3f}"
        )
    bv = geomean(ratios_bv.values())
    big = geomean(ratios_big.values())
    print("\n  paper: Base-Victim +8.7% vs 6MB +9.0% (4MB baseline)")
    print(f"  measured: Base-Victim {bv:.3f} vs 6MB {big:.3f}")

    # Shape: compression gains are close to the 50% larger shared cache,
    # and no mix loses performance or hit rate.
    assert bv > 1.0
    assert min(ratios_bv.values()) > 0.98
    assert abs(bv - big) < 0.08
    for mix_name in base:
        assert (
            hit_rates["4MB+compression"][mix_name]
            >= hit_rates["4MB"][mix_name] - 1e-9
        ), f"{mix_name}: compressed hit rate fell below the uncompressed one"

"""E2 — Figure 7: the modified (ECM-like) two-tag architecture.

Paper result: +4.7% for compression-friendly traces but −3.8% for poorly
compressing ones, negative outliers down to −14%, and nearly half the
traces (27/60) still lose vs the uncompressed cache.
"""

from benchmarks.conftest import ratio_maps
from repro.sim.config import BASELINE_2MB, TWO_TAG_MODIFIED_2MB
from repro.sim.metrics import count_losers, geomean
from repro.sim.report import ratio_series_summary


def run_figure7(runner, names):
    return ratio_maps(runner, TWO_TAG_MODIFIED_2MB, BASELINE_2MB, names)


def test_fig07_modified_twotag(
    benchmark, runner, sensitive_names, friendly_names, poor_names
):
    ipc, reads = benchmark.pedantic(
        run_figure7, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    print(
        ratio_series_summary(
            "Figure 7 — modified two-tag (vs 2MB uncompressed baseline)",
            ipc,
            reads,
        )
    )
    cf = geomean(ipc[n] for n in friendly_names)
    poor = geomean(ipc[n] for n in poor_names)
    print("  paper: CF +4.7%, poor −3.8%, 27/60 lose, outliers to −14%")
    print(
        f"  measured: CF {cf:.3f}, poor {poor:.3f}, "
        f"{count_losers(ipc.values())}/60 lose, min {min(ipc.values()):.3f}"
    )

    # Shape: the repair is not safe — real negative outliers remain and
    # they concentrate in the poorly compressing traces (our synthetic
    # suite reproduces the direction; the paper's magnitudes were larger,
    # see EXPERIMENTS.md).
    assert min(ipc.values()) < 0.98, "negative outliers must exist"
    assert count_losers(ipc.values()) >= 5, "a real population must lose"
    assert cf > poor, "compression-friendly traces must fare better"
    worst = min(ipc, key=ipc.get)
    assert worst in set(poor_names) or ipc[worst] < 0.99

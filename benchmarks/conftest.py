"""Shared fixtures for the paper-reproduction bench suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  All benches share one
:class:`~repro.sim.experiment.ExperimentRunner` on the ``BENCH`` preset
with an on-disk result cache, so machine configurations that recur across
figures (the 2MB baseline, Base-Victim, 3MB) are simulated once.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.sim.config import BENCH
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import dram_read_ratio, ipc_ratio
from repro.workloads.suite import friendly_specs, poor_specs, sensitive_specs


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner with persistent caching."""
    return ExperimentRunner(BENCH)


@pytest.fixture(scope="session")
def sensitive_names() -> list[str]:
    """The 60 cache-sensitive trace names (Section V)."""
    return [spec.name for spec in sensitive_specs()]


@pytest.fixture(scope="session")
def friendly_names() -> list[str]:
    """The 50 compression-friendly cache-sensitive traces."""
    return [spec.name for spec in friendly_specs()]


@pytest.fixture(scope="session")
def poor_names() -> list[str]:
    """The 10 poorly compressing cache-sensitive traces."""
    return [spec.name for spec in poor_specs()]


def ratio_maps(runner, machine, baseline, names):
    """Per-trace IPC and DRAM-read ratios of ``machine`` vs ``baseline``."""
    ipc = {}
    reads = {}
    for name in names:
        base = runner.run_single(baseline, name)
        run = runner.run_single(machine, name)
        ipc[name] = ipc_ratio(run, base)
        reads[name] = dram_read_ratio(run, base)
    return ipc, reads

"""Shared fixtures for the paper-reproduction bench suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  All benches share one
:class:`~repro.sim.experiment.ExperimentRunner` on the ``BENCH`` preset
with an on-disk result cache, so machine configurations that recur across
figures (the 2MB baseline, Base-Victim, 3MB) are simulated once.

Uncached sweeps fan out across one worker process per CPU by default;
set ``REPRO_JOBS`` to override (``REPRO_JOBS=1`` forces the serial
path, which produces bit-identical results).  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.obs.registry import merge_observations
from repro.sim.config import BENCH
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import dram_read_ratio, ipc_ratio
from repro.sim.parallel import resolve_jobs
from repro.workloads.suite import friendly_specs, poor_specs, sensitive_specs


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner with persistent caching.

    Parallel by default ($REPRO_JOBS overrides, 0 = one worker per CPU).
    """
    return ExperimentRunner(BENCH, jobs=resolve_jobs(None, default=0))


@pytest.fixture(scope="session")
def sensitive_names() -> list[str]:
    """The 60 cache-sensitive trace names (Section V)."""
    return [spec.name for spec in sensitive_specs()]


@pytest.fixture(scope="session")
def friendly_names() -> list[str]:
    """The 50 compression-friendly cache-sensitive traces."""
    return [spec.name for spec in friendly_specs()]


@pytest.fixture(scope="session")
def poor_names() -> list[str]:
    """The 10 poorly compressing cache-sensitive traces."""
    return [spec.name for spec in poor_specs()]


def ratio_maps(runner, machine, baseline, names):
    """Per-trace IPC and DRAM-read ratios of ``machine`` vs ``baseline``.

    Goes through :meth:`ExperimentRunner.run_pair`, so uncached runs fan
    out across the runner's worker processes.
    """
    ipc = {}
    reads = {}
    for name, (base, run) in zip(names, runner.run_pair(baseline, machine, names)):
        ipc[name] = ipc_ratio(run, base)
        reads[name] = dram_read_ratio(run, base)
    return ipc, reads


def merged_obs(runner, machine, names):
    """Observability counters of ``machine`` merged across ``names``.

    Every cached run carries its serialised registry (``RunResult.obs``);
    merging them gives suite-level histograms and hit-category counts —
    the same numbers ``repro stats --json`` reports.
    """
    return merge_observations(run.obs for run in runner.run_many(machine, names))

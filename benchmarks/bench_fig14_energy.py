"""E9 — Figure 14: energy of the memory + cache subsystem.

Paper result: with SRAM word enables, opportunistic compression saves
6.5% subsystem energy on average over the 100 traces; without word
enables (read-modify-write fills) the savings drop to 2.2%.  A few traces
burn more energy than the baseline (up to +2.3% with word enables, up to
+6% without); savings track the DRAM read reduction.
"""

from repro.power.energy import EnergyInputs, system_energy
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, BENCH
from repro.sim.metrics import geomean
from repro.workloads.suite import all_specs


def energy_inputs(run) -> EnergyInputs:
    return EnergyInputs(
        cycles=run.cycles,
        llc_accesses=run.llc_accesses,
        llc_data_reads=run.llc_data_reads,
        llc_data_writes=run.llc_data_writes,
        llc_fill_segments=run.llc_fill_segments,
        compressions=run.memory_reads + run.writebacks_to_llc,
        decompressions=run.compressed_hits,
        dram_reads=run.memory_reads,
        dram_writes=run.memory_writes,
        dram_activates=run.dram_activates,
    )


def run_figure14(runner):
    geometry = BENCH.llc_geometry(16, 1.0)
    ratios_we: dict[str, float] = {}
    ratios_rmw: dict[str, float] = {}
    read_ratios: dict[str, float] = {}
    names = [spec.name for spec in all_specs()]
    pairs = dict(zip(names, runner.run_pair(BASELINE_2MB, BASE_VICTIM_2MB, names)))
    for spec in all_specs():
        base, bv = pairs[spec.name]
        base_j = system_energy(energy_inputs(base), geometry).total_j
        bv_we = system_energy(
            energy_inputs(bv), geometry, tags_per_way=2, extra_metadata_bits=9,
            word_enables=True,
        ).total_j
        bv_rmw = system_energy(
            energy_inputs(bv), geometry, tags_per_way=2, extra_metadata_bits=9,
            word_enables=False,
        ).total_j
        ratios_we[spec.name] = bv_we / base_j
        ratios_rmw[spec.name] = bv_rmw / base_j
        read_ratios[spec.name] = (
            bv.memory_reads / base.memory_reads if base.memory_reads else 1.0
        )
    return ratios_we, ratios_rmw, read_ratios


def test_fig14_energy(benchmark, runner):
    ratios_we, ratios_rmw, read_ratios = benchmark.pedantic(
        run_figure14, args=(runner,), rounds=1, iterations=1
    )
    print()
    we = geomean(ratios_we.values())
    rmw = geomean(ratios_rmw.values())
    print("Figure 14 — energy ratio vs uncompressed baseline (100 traces)")
    print("  paper: with word enables 0.935 (−6.5%); without 0.978 (−2.2%)")
    print(
        f"  measured: with word enables {we:.3f}; without {rmw:.3f}; "
        f"worst with-WE {max(ratios_we.values()):.3f}, "
        f"worst without {max(ratios_rmw.values()):.3f}"
    )

    # Shape: word enables must save energy on average; read-modify-write
    # erodes (but does not erase) the savings; a few traces may lose.
    assert we < 1.0
    assert we < rmw
    assert rmw < 1.03
    assert max(ratios_we.values()) < 1.10

    # Savings correlate with DRAM read reduction: traces with the biggest
    # read cuts must save more energy than traces with none.
    big_cut = [n for n, r in read_ratios.items() if r < 0.8]
    no_cut = [n for n, r in read_ratios.items() if r > 0.98]
    if big_cut and no_cut:
        assert geomean(ratios_we[n] for n in big_cut) < geomean(
            ratios_we[n] for n in no_cut
        )

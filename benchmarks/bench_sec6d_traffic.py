"""E15 — Section VI.D: traffic accounting behind the power analysis.

Paper numbers (2MB single-thread runs): opportunistic compression saves
16% of memory reads but no memory writes (the victim cache is clean),
giving a 12% average memory bandwidth reduction, while adding about 31%
more LLC accesses from base<->victim migrations and extra hits.
"""

from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB
from repro.sim.report import traffic_summary


def run_sec6d(runner, names):
    base = runner.run_many(BASELINE_2MB, names)
    bv = runner.run_many(BASE_VICTIM_2MB, names)
    return base, bv


def test_sec6d_traffic(benchmark, runner, friendly_names):
    base, bv = benchmark.pedantic(
        run_sec6d, args=(runner, friendly_names), rounds=1, iterations=1
    )
    print()
    print("Section VI.D — traffic vs the uncompressed baseline (CF traces)")
    print(traffic_summary(bv, base))
    print("  paper: reads 0.84, writes 1.00, bandwidth 0.88, LLC accesses 1.31")

    reads = sum(r.memory_reads for r in bv) / sum(r.memory_reads for r in base)
    writes = sum(r.memory_writes for r in bv) / sum(
        r.memory_writes for r in base
    )
    llc = sum(r.llc_data_reads + r.llc_data_writes for r in bv) / sum(
        b.llc_data_reads + b.llc_data_writes for b in base
    )

    # Shape: reads drop; writes do NOT drop (clean victim cache) but may
    # not rise either; data-array operations rise from migrations.
    assert reads < 0.95, "memory reads must drop substantially"
    assert 0.9 < writes < 1.1, "memory writes stay ~unchanged (clean victims)"
    assert llc > 1.0, "migrations must add LLC data-array operations"

    # Per-trace: reads never increase (the structural guarantee).
    for b, v in zip(base, bv):
        assert v.memory_reads <= b.memory_reads, v.trace

    # Victim hits and demotions are the LLC-access adders.
    victim_hits = sum(r.llc_victim_hits for r in bv)
    assert victim_hits > 0

"""E12 — Section VI.B.4: Victim Cache replacement policy ablation.

Paper result: none of the tried variants (LRU, size/LRU mixes) improved
significantly on the ECM-inspired default; effective capacity stays
~1.5x despite ~2x compressibility.  This bench sweeps every implemented
victim-cache policy (including the strict literal ECM reading and plain
random from the worked examples) and reports the spread.
"""

from dataclasses import replace

from benchmarks.conftest import ratio_maps
from repro.cache.replacement.victim import VICTIM_POLICIES
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB
from repro.sim.metrics import geomean
from repro.sim.report import format_table


def run_sec6b4(runner, names):
    means = {}
    for policy in sorted(VICTIM_POLICIES):
        machine = replace(BASE_VICTIM_2MB, victim_policy=policy)
        ipc, _ = ratio_maps(runner, machine, BASELINE_2MB, names)
        means[policy] = geomean(ipc.values())
    # Ablation of the clean-victim design choice (Section IV.B.3): the
    # non-inclusive variant defers demotion writebacks.
    dirty = replace(BASE_VICTIM_2MB, clean_victims=False)
    ipc, _ = ratio_maps(runner, dirty, BASELINE_2MB, names)
    means["ecm (dirty victims)"] = geomean(ipc.values())
    writes_base = sum(
        runner.run_single(BASELINE_2MB, n).memory_writes for n in names
    )
    writes_clean = sum(
        runner.run_single(BASE_VICTIM_2MB, n).memory_writes for n in names
    )
    writes_dirty = sum(runner.run_single(dirty, n).memory_writes for n in names)
    write_ratios = {
        "clean victims": writes_clean / writes_base,
        "dirty victims": writes_dirty / writes_base,
    }
    return means, write_ratios


def test_sec6b4_victim_policies(benchmark, runner, sensitive_names):
    means, write_ratios = benchmark.pedantic(
        run_sec6b4, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    rows = [[policy, f"{mean:.4f}"] for policy, mean in sorted(means.items())]
    print("Section VI.B.4 — Victim Cache replacement policy ablation")
    print(format_table(["victim policy", "geomean IPC ratio"], rows))
    policy_means = {k: v for k, v in means.items() if "dirty" not in k}
    spread = max(policy_means.values()) - min(policy_means.values())
    print("\n  paper: no variant significantly beats ECM; spread is small")
    print(f"  measured spread: {spread:.4f}")
    print(
        "  memory-write ratio vs baseline: "
        f"clean victims {write_ratios['clean victims']:.3f} (paper: 1.00), "
        f"dirty victims {write_ratios['dirty victims']:.3f} (< 1: deferred writebacks)"
    )

    # Shape: every policy gains (the guarantee is policy-independent).
    assert all(mean > 1.0 for mean in means.values())
    # The variants the paper tried (LRU, size/LRU mix) do not improve on
    # ECM — their spread is tiny, exactly as Section VI.B.4 reports.
    paper_variants = {means[p] for p in ("ecm", "lru", "mix")}
    assert max(paper_variants) - min(paper_variants) < 0.02
    assert means["ecm"] >= max(paper_variants) - 0.005
    # Quality-insensitive choices cost capacity: plain random (the worked
    # examples' placeholder) and the strict literal ECM reading trail.
    assert means["random"] <= means["ecm"]
    assert means["ecm-strict"] <= means["ecm"]
    # Section IV.B.3 trade-off: clean victims save no write traffic, the
    # non-inclusive dirty variant does.
    assert write_ratios["clean victims"] > 0.95
    assert write_ratios["dirty victims"] < write_ratios["clean victims"]

"""E10 — Table I: workload suite composition and compressibility.

Paper: 100 traces in four categories (30 SPECfp, 29 SPECint, 14
productivity, 27 client), 60 cache-sensitive; of those, 50 are
compression-friendly (~50% average compressed block size) and 10 compress
poorly (>75%); the average across all 60 is ~55% (Section VI.A).
"""

from collections import Counter

from repro.sim.report import format_table
from repro.workloads.suite import (
    all_specs,
    CATEGORIES,
    friendly_specs,
    poor_specs,
    sensitive_specs,
    TraceSuite,
)


def run_table1():
    counts = Counter(spec.category for spec in all_specs())
    sensitive = Counter(spec.category for spec in sensitive_specs())
    suite = TraceSuite(reference_llc_lines=512, length=1)
    fractions = {
        spec.name: suite.data_model(spec.name).average_size_fraction()
        for spec in sensitive_specs()
    }
    return counts, sensitive, fractions


def test_table1_workloads(benchmark):
    counts, sensitive, fractions = benchmark.pedantic(
        run_table1, rounds=1, iterations=1
    )
    print()
    rows = [
        [category, counts[category], sensitive[category]]
        for category in CATEGORIES
    ]
    rows.append(["total", sum(counts.values()), sum(sensitive.values())])
    print(
        format_table(["category", "traces (Table I)", "cache-sensitive"], rows)
    )

    friendly = {spec.name for spec in friendly_specs()}
    poor = {spec.name for spec in poor_specs()}
    cf_avg = sum(fractions[n] for n in friendly) / len(friendly)
    poor_avg = sum(fractions[n] for n in poor) / len(poor)
    all_avg = sum(fractions.values()) / len(fractions)
    print("\n  compressed block size (fraction of 64B, measured with BDI):")
    print("  paper: CF ~0.50, poor >0.75, all-60 average ~0.55")
    print(
        f"  measured: CF {cf_avg:.2f} ({len(friendly)} traces), "
        f"poor {poor_avg:.2f} ({len(poor)} traces), all {all_avg:.2f}"
    )

    # Table I population.
    assert counts == Counter(
        {"fspec": 30, "ispec": 29, "productivity": 14, "client": 27}
    )
    assert sum(sensitive.values()) == 60
    # Section VI.A compressibility bands.
    assert 0.40 <= cf_avg <= 0.60
    assert poor_avg > 0.75
    assert 0.45 <= all_avg <= 0.62

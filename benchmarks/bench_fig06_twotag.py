"""E1 — Figure 6: the naive two-tag architecture vs the 2MB baseline.

Paper result: despite the capacity increase, partner-line victimization
costs 12% average performance; 37 of 60 cache-sensitive traces lose, and
the DRAM read ratio shows large positive outliers.
"""

from benchmarks.conftest import ratio_maps
from repro.sim.config import BASELINE_2MB, TWO_TAG_2MB
from repro.sim.metrics import count_losers, geomean
from repro.sim.report import ratio_series_summary


def run_figure6(runner, names):
    return ratio_maps(runner, TWO_TAG_2MB, BASELINE_2MB, names)


def test_fig06_naive_twotag(benchmark, runner, sensitive_names):
    ipc, reads = benchmark.pedantic(
        run_figure6, args=(runner, sensitive_names), rounds=1, iterations=1
    )
    print()
    print(
        ratio_series_summary(
            "Figure 6 — naive two-tag (IPC and DRAM-read ratios vs 2MB baseline)",
            ipc,
            reads,
        )
    )
    losers = count_losers(ipc.values())
    mean = geomean(ipc.values())
    print("  paper: geomean 0.88 (−12%), 37/60 traces lose")
    print(f"  measured: geomean {mean:.3f}, {losers}/60 traces lose")

    # Shape assertions: many traces must lose, and the strawman must be
    # clearly worse than Base-Victim's guaranteed-no-loss behaviour.
    assert losers >= 10, "partner victimization must hurt a substantial subset"
    assert min(ipc.values()) < 0.99, "there must be real negative outliers"

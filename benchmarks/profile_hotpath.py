#!/usr/bin/env python
"""cProfile harness for the simulation inner loop.

Dumps the top-N functions by cumulative time for one (machine, trace)
run, so perf PRs start from measured hot spots instead of guesses:

    PYTHONPATH=src python benchmarks/profile_hotpath.py
    PYTHONPATH=src python benchmarks/profile_hotpath.py \
        --machine baseline --trace lbm.1 --preset bench --sort tottime

The profiled region is exactly one :func:`simulate_trace` call — trace
generation and palette construction are excluded, matching what
``repro perf`` measures.  ``--dump`` saves the raw pstats file for
``snakeviz``/``pstats`` spelunking.
"""

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, PRESETS
from repro.sim.single_core import simulate_trace
from repro.workloads.suite import TraceSuite

MACHINES = {
    "baseline": BASELINE_2MB,
    "base-victim": BASE_VICTIM_2MB,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--machine", default="base-victim", choices=sorted(MACHINES))
    parser.add_argument("--trace", default="mcf.1")
    parser.add_argument("--preset", default="bench", choices=sorted(PRESETS))
    parser.add_argument("--top", type=int, default=25, metavar="N")
    parser.add_argument(
        "--sort", default="cumulative", choices=["cumulative", "tottime", "ncalls"]
    )
    parser.add_argument("--dump", metavar="PATH", help="save raw pstats output")
    args = parser.parse_args(argv)

    preset = PRESETS[args.preset]
    machine = MACHINES[args.machine]
    suite = TraceSuite(preset.reference_llc_lines, preset.trace_length)
    trace = suite.trace(args.trace)
    data = suite.data_model(args.trace)

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = simulate_trace(trace, data, machine, preset)
    profiler.disable()
    elapsed = time.perf_counter() - started

    print(
        f"{machine.label} | {args.trace} | {preset.name}: "
        f"{result.accesses:,} accesses in {elapsed:.3f}s "
        f"({result.accesses / elapsed:,.0f} accesses/sec)"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw pstats written to {args.dump}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""cProfile harness for the simulation inner loop.

Thin wrapper over ``repro perf --profile`` — the profiling logic lives
in :mod:`repro.sim.perfbench` now, so the CLI and this script can never
drift apart.  Kept for muscle memory and existing docs:

    PYTHONPATH=src python benchmarks/profile_hotpath.py
    PYTHONPATH=src python benchmarks/profile_hotpath.py \
        --machine baseline --trace lbm.1 --preset bench --sort tottime

The profiled region is one (machine, trace) matrix cell at
``--repeats 1``: exactly one :func:`simulate_trace` call, as before.
``--dump`` saves the raw pstats file for ``snakeviz``/``pstats``
spelunking.
"""

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.config import PRESETS
from repro.sim.perfbench import PERF_MACHINES, main as perf_main


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--machine", default="base-victim", choices=sorted(PERF_MACHINES)
    )
    parser.add_argument("--trace", default="mcf.1")
    parser.add_argument("--preset", default="bench", choices=sorted(PRESETS))
    parser.add_argument("--top", type=int, default=25, metavar="N")
    parser.add_argument(
        "--sort", default="cumulative", choices=["cumulative", "tottime", "ncalls"]
    )
    parser.add_argument("--dump", metavar="PATH", help="save raw pstats output")
    args = parser.parse_args(argv)

    forwarded = [
        "--preset", args.preset,
        "--machine", args.machine,
        "--trace", args.trace,
        "--repeats", "1",
        "--profile", str(args.top),
        "--profile-sort", args.sort,
    ]
    if args.dump:
        forwarded += ["--profile-dump", args.dump]
    return perf_main(forwarded)


if __name__ == "__main__":
    raise SystemExit(main())

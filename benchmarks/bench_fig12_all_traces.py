"""E7 — Figure 12: the full 100-trace list, including cache-insensitive.

Paper result: with the 40 insensitive traces included, Base-Victim gains
4.3% on average vs 4.9% for the 3MB uncompressed cache, and shows no
significant negative outliers.
"""

from benchmarks.conftest import ratio_maps
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, UNCOMPRESSED_3MB
from repro.sim.metrics import geomean
from repro.sim.report import ratio_series_summary
from repro.workloads.suite import all_specs


def run_figure12(runner):
    names = [spec.name for spec in all_specs()]
    bv_ipc, bv_reads = ratio_maps(runner, BASE_VICTIM_2MB, BASELINE_2MB, names)
    big_ipc, _ = ratio_maps(runner, UNCOMPRESSED_3MB, BASELINE_2MB, names)
    return bv_ipc, bv_reads, big_ipc


def test_fig12_all_100_traces(benchmark, runner):
    bv_ipc, bv_reads, big_ipc = benchmark.pedantic(
        run_figure12, args=(runner,), rounds=1, iterations=1
    )
    print()
    print(
        ratio_series_summary(
            "Figure 12 — all 100 traces, Base-Victim vs 2MB baseline",
            bv_ipc,
            bv_reads,
        )
    )
    bv = geomean(bv_ipc.values())
    big = geomean(big_ipc.values())
    print("  paper: Base-Victim +4.3% vs 3MB +4.9% over 100 traces")
    print(f"  measured: Base-Victim {bv:.3f} vs 3MB {big:.3f}")

    # Shape: diluted but positive gains, no significant negative outliers,
    # still tracking the 50% larger cache.
    assert bv > 1.0
    assert min(bv_ipc.values()) > 0.98
    assert abs(bv - big) < 0.05
    # Insensitive traces dilute the average below the 60-trace figure.
    sensitive_only = geomean(
        ratio for name, ratio in bv_ipc.items()
        if next(s for s in all_specs() if s.name == name).cache_sensitive
    )
    assert bv < sensitive_only

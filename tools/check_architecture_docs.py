#!/usr/bin/env python3
"""Docs gate: keep ARCHITECTURE.md's module map in sync with src/repro.

Extracts the dotted module names from the ``<!-- module-map:begin -->``
block in ARCHITECTURE.md and compares them, as exact sets, with the
modules that actually exist under ``src/repro/``.  Exits nonzero and
prints the drift (missing / stale entries) if they differ, so CI fails
whenever a module is added, removed or renamed without updating the
documentation.

Usage::

    python tools/check_architecture_docs.py [--repo-root PATH]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

BEGIN_MARK = "<!-- module-map:begin -->"
END_MARK = "<!-- module-map:end -->"
# A documented entry is the leading dotted name on a line, e.g.
# ``repro.sim.retry — retry policy ...``.
ENTRY_RE = re.compile(r"^(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)*)\s")


def documented_modules(architecture_md: Path) -> set[str]:
    """Dotted module names listed in ARCHITECTURE.md's module map."""
    text = architecture_md.read_text(encoding="utf-8")
    try:
        start = text.index(BEGIN_MARK) + len(BEGIN_MARK)
        end = text.index(END_MARK, start)
    except ValueError:
        raise SystemExit(
            f"{architecture_md}: missing {BEGIN_MARK}/{END_MARK} markers"
        )
    modules = set()
    for line in text[start:end].splitlines():
        match = ENTRY_RE.match(line.strip())
        if match:
            modules.add(match.group(1))
    if not modules:
        raise SystemExit(f"{architecture_md}: module map block is empty")
    return modules


def actual_modules(src_root: Path) -> set[str]:
    """Dotted module names for every .py file under src/repro."""
    package_root = src_root / "repro"
    modules = set()
    for path in package_root.rglob("*.py"):
        relative = path.relative_to(src_root).with_suffix("")
        parts = list(relative.parts)
        if parts[-1] == "__init__":
            parts.pop()
        modules.add(".".join(parts))
    return modules


def main(argv: list[str] | None = None) -> int:
    """Compare the documented and actual module sets; 0 iff identical."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root containing ARCHITECTURE.md and src/repro",
    )
    args = parser.parse_args(argv)

    documented = documented_modules(args.repo_root / "ARCHITECTURE.md")
    actual = actual_modules(args.repo_root / "src")

    undocumented = sorted(actual - documented)
    stale = sorted(documented - actual)
    if undocumented:
        print("modules missing from ARCHITECTURE.md module map:")
        for name in undocumented:
            print(f"  {name}")
    if stale:
        print("ARCHITECTURE.md lists modules that no longer exist:")
        for name in stale:
            print(f"  {name}")
    if undocumented or stale:
        print(
            f"\ndocs gate FAILED: {len(undocumented)} undocumented, "
            f"{len(stale)} stale (of {len(actual)} actual modules)."
        )
        return 1
    print(f"docs gate OK: ARCHITECTURE.md matches all {len(actual)} modules.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

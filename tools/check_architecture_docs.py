#!/usr/bin/env python3
"""Docs gate: keep ARCHITECTURE.md and PROTOCOL.md in sync with the code.

Two independent checks, both run by CI's lint job and by
``tests/test_docs_gate.py``; their failures aggregate so one run shows
all drift at once:

* **Module map** — extracts the dotted module names from the
  ``<!-- module-map:begin -->`` block in ARCHITECTURE.md and compares
  them, as exact sets, with the modules that actually exist under
  ``src/repro/``, so CI fails whenever a module is added, removed or
  renamed without updating the documentation.
* **Protocol examples** — parses every fenced ``json`` example in
  PROTOCOL.md back through ``repro.serve.protocol``: frames must
  encode within the frame bound, requests must parse
  (``hello``/``submit``/``lease``/``status``, real trace names, valid
  machine specs), events and reject reasons must be ones the server
  can emit, every op/event/reason must have at least one example or
  mention (the spec may not silently omit a message type), and the
  constants table must match the code's values.  Skipped when the repo
  under ``--repo-root`` has no ``src/repro/serve/protocol.py`` (e.g.
  the minimal fixtures the docs-gate tests build).

Usage::

    python tools/check_architecture_docs.py [--repo-root PATH]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

BEGIN_MARK = "<!-- module-map:begin -->"
END_MARK = "<!-- module-map:end -->"
# A documented entry is the leading dotted name on a line, e.g.
# ``repro.sim.retry — retry policy ...``.
ENTRY_RE = re.compile(r"^(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)*)\s")

# Fenced ```json blocks in PROTOCOL.md (each one wire-format example).
JSON_BLOCK_RE = re.compile(r"```json\n(.*?)```", re.DOTALL)

# Constants-table rows: | `NAME` | value | ...
CONSTANT_ROW_RE = re.compile(r"\|\s*`([A-Z_]+)`\s*\|\s*`?(\d+)`?\s*\|")

#: Constants PROTOCOL.md must state, checked against the code's values.
SPEC_CONSTANTS = (
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "PING_MIN_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_JOBS_PER_SUBMIT",
)


def documented_modules(architecture_md: Path) -> set[str]:
    """Dotted module names listed in ARCHITECTURE.md's module map."""
    text = architecture_md.read_text(encoding="utf-8")
    try:
        start = text.index(BEGIN_MARK) + len(BEGIN_MARK)
        end = text.index(END_MARK, start)
    except ValueError:
        raise SystemExit(
            f"{architecture_md}: missing {BEGIN_MARK}/{END_MARK} markers"
        )
    modules = set()
    for line in text[start:end].splitlines():
        match = ENTRY_RE.match(line.strip())
        if match:
            modules.add(match.group(1))
    if not modules:
        raise SystemExit(f"{architecture_md}: module map block is empty")
    return modules


def actual_modules(src_root: Path) -> set[str]:
    """Dotted module names for every .py file under src/repro."""
    package_root = src_root / "repro"
    modules = set()
    for path in package_root.rglob("*.py"):
        relative = path.relative_to(src_root).with_suffix("")
        parts = list(relative.parts)
        if parts[-1] == "__init__":
            parts.pop()
        modules.add(".".join(parts))
    return modules


def check_module_map(repo_root: Path) -> list[str]:
    """Module-map drift as a list of failure lines (empty = in sync)."""
    documented = documented_modules(repo_root / "ARCHITECTURE.md")
    actual = actual_modules(repo_root / "src")
    failures = []
    for name in sorted(actual - documented):
        failures.append(f"module missing from ARCHITECTURE.md module map: {name}")
    for name in sorted(documented - actual):
        failures.append(f"ARCHITECTURE.md lists a module that no longer exists: {name}")
    return failures


def _validate_request(protocol, frame: dict, known_traces: frozenset) -> None:
    """Parse one request example with the op's real parser."""
    op = frame["op"]
    if op == "hello":
        protocol.parse_hello(frame)
    elif op == "submit":
        protocol.parse_submit(frame, known_traces)
    elif op == "lease":
        protocol.parse_lease(frame, known_traces)
    elif op == "ping":
        protocol.parse_ping(frame)
    else:  # status
        unknown = sorted(set(frame) - {"op"})
        if unknown:
            raise protocol.ProtocolError(
                f"unknown status field(s): {', '.join(unknown)}"
            )


def check_protocol_examples(repo_root: Path) -> list[str]:
    """Validate PROTOCOL.md's examples and constants against the code.

    Returns failure lines (empty = spec and code agree).  Skips — with
    no failures — when the repo has no serve protocol module, so the
    gate still works on the minimal fixture trees tests build.
    """
    protocol_md = repo_root / "PROTOCOL.md"
    protocol_py = repo_root / "src" / "repro" / "serve" / "protocol.py"
    if not protocol_py.exists():
        return []
    if not protocol_md.exists():
        return [f"{protocol_md} is missing (the serve protocol must be specified)"]

    src = str(repo_root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.serve import protocol
    from repro.workloads.suite import all_specs

    known_traces = frozenset(spec.name for spec in all_specs())
    text = protocol_md.read_text(encoding="utf-8")
    failures: list[str] = []

    seen_ops: set[str] = set()
    seen_events: set[str] = set()
    blocks = JSON_BLOCK_RE.findall(text)
    if not blocks:
        failures.append("PROTOCOL.md contains no fenced json examples")
    for number, block in enumerate(blocks, start=1):
        label = f"PROTOCOL.md json example #{number}"
        try:
            frame = json.loads(block)
        except json.JSONDecodeError as exc:
            failures.append(f"{label}: not valid JSON: {exc.msg}")
            continue
        if not isinstance(frame, dict):
            failures.append(f"{label}: frame must be a JSON object")
            continue
        try:
            protocol.encode_frame(frame)
        except protocol.ProtocolError as exc:
            failures.append(f"{label}: {exc}")
            continue
        if "op" in frame:
            if frame["op"] not in protocol.REQUEST_OPS:
                failures.append(f"{label}: unknown op {frame['op']!r}")
                continue
            seen_ops.add(frame["op"])
            try:
                _validate_request(protocol, frame, known_traces)
            except protocol.ProtocolError as exc:
                failures.append(f"{label}: {exc}")
        elif "event" in frame:
            if frame["event"] not in protocol.EVENT_KINDS:
                failures.append(f"{label}: unknown event {frame['event']!r}")
                continue
            seen_events.add(frame["event"])
            if frame["event"] == "rejected":
                reason = frame.get("reason")
                if reason not in protocol.REJECT_REASONS:
                    failures.append(
                        f"{label}: unknown reject reason {reason!r}"
                    )
        else:
            failures.append(f"{label}: frame has neither 'op' nor 'event'")

    # Coverage: the spec may not silently omit a message type.
    for op in protocol.REQUEST_OPS:
        if op not in seen_ops:
            failures.append(f"PROTOCOL.md has no example for request op {op!r}")
    for event in protocol.EVENT_KINDS:
        if event not in seen_events:
            failures.append(f"PROTOCOL.md has no example for event {event!r}")
    for reason in protocol.REJECT_REASONS:
        if f"`{reason}`" not in text:
            failures.append(
                f"PROTOCOL.md does not document reject reason {reason!r}"
            )

    stated = dict(CONSTANT_ROW_RE.findall(text))
    for name in SPEC_CONSTANTS:
        actual = getattr(protocol, name)
        if name not in stated:
            failures.append(f"PROTOCOL.md constants table is missing {name}")
        elif int(stated[name]) != actual:
            failures.append(
                f"PROTOCOL.md states {name} = {stated[name]}, code says {actual}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    """Run both checks; 0 iff docs and code agree."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root containing ARCHITECTURE.md and src/repro",
    )
    args = parser.parse_args(argv)

    failures = check_module_map(args.repo_root)
    failures += check_protocol_examples(args.repo_root)
    if failures:
        for line in failures:
            print(line)
        print(f"\ndocs gate FAILED: {len(failures)} problem(s).")
        return 1
    print("docs gate OK: module map and protocol spec match the code.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

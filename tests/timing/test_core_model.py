"""Tests for the analytic core timing model."""

import pytest

from repro.cache.hierarchy import L1, L2, LLC, MEMORY, AccessOutcome
from repro.timing.core_model import CoreParams, CoreTimingModel
from repro.timing.latency import LatencyParams


class TestLatencyParams:
    def test_paper_load_to_use(self):
        lat = LatencyParams()
        assert (lat.l1_cycles, lat.l2_cycles, lat.llc_cycles) == (3, 10, 24)

    def test_exposed_latencies(self):
        lat = LatencyParams()
        assert lat.l2_exposed == 7
        assert lat.llc_exposed == 21


class TestAccumulation:
    def test_base_cpi_only(self):
        core = CoreTimingModel(CoreParams(base_cpi=0.5))
        core.advance(1000)
        assert core.cycles == pytest.approx(500)
        assert core.ipc == pytest.approx(2.0)

    def test_l1_hit_adds_nothing(self):
        core = CoreTimingModel()
        core.advance(100)
        before = core.cycles
        core.account_access(AccessOutcome(L1), 0.0)
        assert core.cycles == before

    def test_l2_stall(self):
        params = CoreParams(mlp_l2=1.0)
        core = CoreTimingModel(params)
        core.advance(100)
        before = core.cycles
        core.account_access(AccessOutcome(L2), 0.0)
        assert core.cycles - before == pytest.approx(7)

    def test_llc_stall_includes_extra_cycles(self):
        params = CoreParams(mlp_llc=1.0)
        core = CoreTimingModel(params)
        core.advance(100)
        before = core.cycles
        core.account_access(AccessOutcome(LLC, extra_llc_cycles=3), 0.0)
        assert core.cycles - before == pytest.approx(24)

    def test_memory_stall_includes_dram_latency(self):
        params = CoreParams(mlp_memory=2.0)
        core = CoreTimingModel(params)
        core.advance(100)
        before = core.cycles
        core.account_access(AccessOutcome(MEMORY), 179.0)
        assert core.cycles - before == pytest.approx((21 + 179) / 2)

    def test_mlp_divides_stalls(self):
        fast = CoreTimingModel(CoreParams(mlp_memory=4.0))
        slow = CoreTimingModel(CoreParams(mlp_memory=1.0))
        for core in (fast, slow):
            core.advance(100)
            core.account_access(AccessOutcome(MEMORY), 100.0)
        assert fast.cycles < slow.cycles

    def test_unknown_level_rejected(self):
        core = CoreTimingModel()
        with pytest.raises(ValueError):
            core.account_access(AccessOutcome(99), 0.0)

    def test_ipc_zero_before_any_work(self):
        assert CoreTimingModel().ipc == 0.0

    def test_extra_llc_latency_lowers_ipc(self):
        """The decompression/tag adders must cost performance (Figure 8's
        'small losses')."""
        base = CoreTimingModel(CoreParams())
        penalised = CoreTimingModel(CoreParams())
        for _ in range(1000):
            base.advance(10)
            penalised.advance(10)
            base.account_access(AccessOutcome(LLC, extra_llc_cycles=0), 0.0)
            penalised.account_access(AccessOutcome(LLC, extra_llc_cycles=3), 0.0)
        assert penalised.ipc < base.ipc

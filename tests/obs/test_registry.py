"""Unit tests for the observability registry and merge semantics."""

import json

import pytest

from repro.obs.registry import (
    CounterRegistry,
    MetricKindError,
    merge_observations,
)


class TestCounterRegistry:
    def test_counter_accumulates(self):
        reg = CounterRegistry()
        reg.inc("llc/hits")
        reg.inc("llc/hits", 4)
        assert reg.counter("llc/hits").value == 5

    def test_histogram_buckets(self):
        reg = CounterRegistry()
        reg.observe("sizes", 8)
        reg.observe("sizes", 8)
        reg.observe("sizes", 64)
        hist = reg.histogram("sizes")
        assert hist.buckets == {8: 2, 64: 1}
        assert hist.total == 3

    def test_scoped_prefixes_and_nests(self):
        reg = CounterRegistry()
        llc = reg.scoped("llc")
        llc.inc("misses", 3)
        llc.scoped("victim").observe("occupancy", 7)
        assert reg.counter("llc/misses").value == 3
        assert reg.histogram("llc/victim/occupancy").buckets == {7: 1}

    def test_kind_mismatch_rejected(self):
        reg = CounterRegistry()
        reg.inc("metric")
        with pytest.raises(MetricKindError):
            reg.histogram("metric")
        with pytest.raises(MetricKindError):
            reg.timer("metric")

    def test_as_dict_sorted_and_without_timers(self):
        reg = CounterRegistry()
        reg.inc("z/last")
        reg.observe("a/first", 1)
        with reg.timer("phase/work"):
            pass
        out = reg.as_dict()
        assert list(out) == ["a/first", "z/last"]
        assert all(metric["kind"] != "timer" for metric in out.values())
        assert reg.timers["phase/work"] >= 0.0

    def test_as_dict_histogram_keys_are_strings(self):
        reg = CounterRegistry()
        reg.observe("h", 10)
        reg.observe("h", 2)
        out = reg.as_dict()["h"]
        assert out == {"kind": "histogram", "buckets": {"2": 1, "10": 1}}
        json.dumps(out)  # JSON-serialisable as-is

    def test_timer_accumulates_wall_time(self):
        reg = CounterRegistry()
        timer = reg.timer("phase/x")
        with timer:
            pass
        with timer:
            pass
        assert timer.seconds >= 0.0


class TestMergeObservations:
    def test_empty_inputs(self):
        assert merge_observations([]) == {}
        assert merge_observations([{}, {}]) == {}

    def test_counters_sum(self):
        a = {"c": {"kind": "counter", "value": 2}}
        b = {"c": {"kind": "counter", "value": 5}}
        assert merge_observations([a, b])["c"]["value"] == 7

    def test_empty_shard_is_identity(self):
        a = {"c": {"kind": "counter", "value": 2}}
        assert merge_observations([a, {}]) == merge_observations([a])

    def test_histograms_merge_disjoint_buckets(self):
        a = {"h": {"kind": "histogram", "buckets": {"1": 2}}}
        b = {"h": {"kind": "histogram", "buckets": {"9": 4}}}
        merged = merge_observations([a, b])
        assert merged["h"]["buckets"] == {"1": 2, "9": 4}

    def test_histograms_sum_shared_buckets(self):
        a = {"h": {"kind": "histogram", "buckets": {"1": 2, "3": 1}}}
        b = {"h": {"kind": "histogram", "buckets": {"3": 5}}}
        assert merge_observations([a, b])["h"]["buckets"] == {"1": 2, "3": 6}

    def test_bucket_keys_sorted_numerically(self):
        a = {"h": {"kind": "histogram", "buckets": {"10": 1}}}
        b = {"h": {"kind": "histogram", "buckets": {"2": 1}}}
        assert list(merge_observations([a, b])["h"]["buckets"]) == ["2", "10"]

    def test_kind_mismatch_between_shards_rejected(self):
        a = {"m": {"kind": "counter", "value": 1}}
        b = {"m": {"kind": "histogram", "buckets": {"1": 1}}}
        with pytest.raises(MetricKindError):
            merge_observations([a, b])

    def test_timers_rejected(self):
        with pytest.raises(MetricKindError):
            merge_observations([{"t": {"kind": "timer", "seconds": 1.0}}])

    def test_merge_does_not_mutate_inputs(self):
        a = {"h": {"kind": "histogram", "buckets": {"1": 1}}}
        b = {"h": {"kind": "histogram", "buckets": {"1": 1}}}
        merge_observations([a, b])
        assert a["h"]["buckets"] == {"1": 1}

    def test_registry_roundtrip_through_json(self):
        reg = CounterRegistry()
        reg.inc("c", 3)
        reg.observe("h", 5, 2)
        serialised = json.loads(json.dumps(reg.as_dict()))
        merged = merge_observations([serialised, serialised])
        assert merged["c"]["value"] == 6
        assert merged["h"]["buckets"] == {"5": 4}

"""Unit tests for the bounded-window trace recorder."""

import io
import json

import pytest

from repro.obs.tracing import (
    TRACE_ENV,
    TRACE_FILE_ENV,
    TRACE_LIMIT_ENV,
    TraceRecorder,
)
from repro.sim.config import BASE_VICTIM_2MB, TEST
from repro.sim.experiment import ExperimentRunner
from repro.sim.single_core import simulate_trace


class TestRecorder:
    def test_window_bounds_and_dropped_count(self):
        rec = TraceRecorder(limit=3)
        for i in range(5):
            rec.record(i=i)
        assert [e["i"] for e in rec.events] == [0, 1, 2]
        assert rec.dropped == 2
        assert not rec.active

    def test_flush_writes_jsonl_and_resets(self):
        rec = TraceRecorder(limit=2)
        for i in range(3):
            rec.record(i=i, addr=i * 64)
        out = io.StringIO()
        assert rec.flush(out) == 2
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        assert lines[0] == {"addr": 0, "i": 0}
        assert lines[-1] == {"truncated": True, "dropped_events": 1}
        assert rec.events == [] and rec.dropped == 0

    def test_flush_empty_window_writes_nothing(self):
        out = io.StringIO()
        assert TraceRecorder().flush(out) == 0
        assert out.getvalue() == ""

    def test_positive_limit_required(self):
        with pytest.raises(ValueError):
            TraceRecorder(limit=0)


class TestFromEnv:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert TraceRecorder.from_env() is None

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "0")
        assert TraceRecorder.from_env() is None

    def test_enabled_with_limit_and_file(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(TRACE_LIMIT_ENV, "17")
        monkeypatch.setenv(TRACE_FILE_ENV, str(tmp_path / "events.jsonl"))
        rec = TraceRecorder.from_env()
        assert rec is not None
        assert rec.limit == 17
        assert rec.path == str(tmp_path / "events.jsonl")

    def test_force_ignores_flag_but_honours_limit(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        monkeypatch.setenv(TRACE_LIMIT_ENV, "5")
        rec = TraceRecorder.from_env(force=True)
        assert rec is not None and rec.limit == 5

    def test_garbage_limit_rejected(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(TRACE_LIMIT_ENV, "lots")
        with pytest.raises(ValueError, match=TRACE_LIMIT_ENV):
            TraceRecorder.from_env()


class TestTracedSimulation:
    def test_tracing_does_not_change_results(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        runner = ExperimentRunner(TEST, use_disk_cache=False)
        trace = runner.suite.trace("sjeng.1")

        plain = simulate_trace(
            trace, runner.suite.data_model("sjeng.1"), BASE_VICTIM_2MB, TEST
        )
        tracer = TraceRecorder(limit=50)
        traced = simulate_trace(
            trace,
            runner.suite.data_model("sjeng.1"),
            BASE_VICTIM_2MB,
            TEST,
            tracer=tracer,
        )
        assert traced.to_dict() == plain.to_dict()

        # One header event plus a full window of access events.
        assert tracer.events[0]["event"] == "run"
        assert tracer.events[0]["trace"] == "sjeng.1"
        access_events = tracer.events[1:]
        assert len(tracer.events) == 50
        assert [e["i"] for e in access_events] == list(range(49))
        assert all(e["level"] in (1, 2, 3, 4) for e in access_events)
        assert tracer.dropped == len(trace) - 49

    def test_env_var_activates_tracing_to_file(self, monkeypatch, tmp_path):
        out = tmp_path / "events.jsonl"
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(TRACE_LIMIT_ENV, "10")
        monkeypatch.setenv(TRACE_FILE_ENV, str(out))
        runner = ExperimentRunner(TEST, use_disk_cache=False)
        simulate_trace(
            runner.suite.trace("sjeng.1"),
            runner.suite.data_model("sjeng.1"),
            BASE_VICTIM_2MB,
            TEST,
        )
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 11  # 10-event window + truncation marker
        assert lines[-1]["truncated"] is True

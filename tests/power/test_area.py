"""Tests for the Section IV.C area model."""

import pytest

from repro.cache.config import CacheGeometry
from repro.power.area import base_victim_area, paper_headline_area, tag_bits


class TestPaperNumbers:
    """Section IV.C quotes exact arithmetic; we must reproduce it."""

    def test_tag_bits_for_2mb_16way(self):
        assert tag_bits(CacheGeometry(2 * 2**20, 16)) == 31

    def test_added_bits_per_way(self):
        report = paper_headline_area()
        # One 31-bit tag + two 4-bit size fields + one valid bit = 40 bits.
        assert report.added_bits == 40

    def test_tag_metadata_overhead_is_7_3_percent(self):
        report = paper_headline_area()
        assert report.tag_metadata_overhead == pytest.approx(0.073, abs=0.001)

    def test_total_overhead_is_8_5_percent(self):
        report = paper_headline_area()
        assert report.total_overhead == pytest.approx(0.085, abs=0.001)


class TestScaling:
    def test_larger_cache_has_fewer_tag_bits(self):
        small = base_victim_area(CacheGeometry(2 * 2**20, 16))
        large = base_victim_area(CacheGeometry(8 * 2**20, 16))
        assert large.tag_bits == small.tag_bits - 2

    def test_overhead_fairly_stable_across_sizes(self):
        for size_mb in (1, 2, 4, 8):
            report = base_victim_area(CacheGeometry(size_mb * 2**20, 16))
            assert 0.06 < report.tag_metadata_overhead < 0.08

    def test_wider_address_increases_overhead(self):
        geometry = CacheGeometry(2 * 2**20, 16)
        narrow = base_victim_area(geometry, address_bits=40)
        wide = base_victim_area(geometry, address_bits=52)
        assert wide.tag_metadata_overhead > narrow.tag_metadata_overhead

"""Tests for SRAM and system energy models (Section VI.D)."""

import pytest

from repro.cache.config import CacheGeometry
from repro.memory.dram import DRAMModel
from repro.memory.power import dram_energy, dram_energy_from_counts
from repro.power.cacti import SRAMModel
from repro.power.energy import EnergyInputs, system_energy

GEOMETRY = CacheGeometry(2 * 2**20, 16)


def make_inputs(**overrides):
    base = dict(
        cycles=1e6,
        llc_accesses=10_000,
        llc_data_reads=8_000,
        llc_data_writes=5_000,
        llc_fill_segments=5_000 * 8,
        compressions=4_000,
        decompressions=3_000,
        dram_reads=4_000,
        dram_writes=2_000,
        dram_activates=1_500,
    )
    base.update(overrides)
    return EnergyInputs(**base)


class TestSRAMModel:
    def test_energy_scales_with_capacity(self):
        small = SRAMModel(CacheGeometry(1 * 2**20, 16))
        large = SRAMModel(CacheGeometry(4 * 2**20, 16))
        assert large.data_read_nj > small.data_read_nj
        assert large.leakage_watts > small.leakage_watts

    def test_doubled_tags_cost_more(self):
        single = SRAMModel(GEOMETRY, tags_per_way=1)
        double = SRAMModel(GEOMETRY, tags_per_way=2, extra_metadata_bits=9)
        assert double.tag_access_nj > single.tag_access_nj
        assert double.leakage_watts > single.leakage_watts

    def test_leakage_overhead_matches_area_overhead(self):
        """Doubling tags adds ~7% leakage, matching Section IV.C's area."""
        single = SRAMModel(GEOMETRY, tags_per_way=1)
        double = SRAMModel(GEOMETRY, tags_per_way=2, extra_metadata_bits=9)
        overhead = double.leakage_watts / single.leakage_watts - 1
        assert overhead == pytest.approx(0.073, abs=0.005)

    def test_partial_write_cheaper_than_full(self):
        sram = SRAMModel(GEOMETRY)
        assert sram.data_partial_write_nj(4, 16) < sram.data_write_nj
        assert sram.data_partial_write_nj(16, 16) == pytest.approx(
            sram.data_write_nj
        )

    def test_partial_write_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SRAMModel(GEOMETRY).data_partial_write_nj(4, 0)


class TestDRAMEnergy:
    def test_counts_and_model_agree(self):
        dram = DRAMModel()
        for i in range(100):
            dram.read(i, i * 1000.0)
        for i in range(50):
            dram.write(i, i * 1000.0)
        via_model = dram_energy(dram, cycles=1e6)
        via_counts = dram_energy_from_counts(
            dram.stat_reads, dram.stat_writes, dram.stat_activates, 1e6
        )
        assert via_model.total_j == pytest.approx(via_counts.total_j)

    def test_background_scales_with_time(self):
        short = dram_energy_from_counts(0, 0, 0, 1e6)
        long = dram_energy_from_counts(0, 0, 0, 2e6)
        assert long.background_j == pytest.approx(2 * short.background_j)


class TestSystemEnergy:
    def test_word_enables_save_energy_for_compressed_fills(self):
        inputs = make_inputs(llc_fill_segments=5_000 * 6)  # compressed fills
        with_we = system_energy(
            inputs, GEOMETRY, tags_per_way=2, extra_metadata_bits=9,
            word_enables=True,
        )
        without_we = system_energy(
            inputs, GEOMETRY, tags_per_way=2, extra_metadata_bits=9,
            word_enables=False,
        )
        assert with_we.data_write_j < without_we.data_write_j
        assert with_we.total_j < without_we.total_j

    def test_baseline_has_no_compression_energy(self):
        report = system_energy(make_inputs(), GEOMETRY, tags_per_way=1)
        assert report.compression_j == 0.0

    def test_compressed_config_charges_codec(self):
        report = system_energy(
            make_inputs(), GEOMETRY, tags_per_way=2, extra_metadata_bits=9
        )
        assert report.compression_j > 0.0

    def test_fewer_dram_reads_lower_total(self):
        high = system_energy(make_inputs(dram_reads=8_000), GEOMETRY)
        low = system_energy(make_inputs(dram_reads=2_000), GEOMETRY)
        assert low.total_j < high.total_j

    def test_breakdown_sums_to_total(self):
        report = system_energy(make_inputs(), GEOMETRY)
        total = (
            report.tag_j
            + report.data_read_j
            + report.data_write_j
            + report.leakage_j
            + report.compression_j
            + report.dram_j
        )
        assert report.total_j == pytest.approx(total)

"""Differential fuzz oracle: the batch engine vs the traced reference.

The batch engine (``repro.sim.batch``) vector-resolves each chunk's
leading run of L1 hits against a snapshot of the L1's flat columns and
hands everything from the first predicted miss onward to the scalar
body.  Its correctness argument has sharp edges — snapshot staleness,
exact LRU stamp reconstruction, sequential-fold cycle accumulation,
store ordering, occupancy sampling inside vs outside a run, chunk
boundaries — so it is proven, not argued: this module fuzzes dozens of
seeded randomized traces across every replacement policy and both the
uncompressed and Base-Victim LLCs, and requires the batched run to be
**byte-identical** to the traced reference — every ``RunResult`` field
and every serialised observation (``obs``) — on each one.

Traces are generated from the case seed alone, so every failure
reproduces from its parametrized test id.
"""

from __future__ import annotations

import json
import random
from array import array

import pytest

from repro.obs.tracing import TRACE_ENV, TRACE_FILE_ENV, TRACE_LIMIT_ENV
from repro.sim import batch
from repro.sim.config import TEST, MachineConfig
from repro.sim.single_core import simulate_trace
from repro.workloads.datagen import LineDataModel, build_palette
from repro.workloads.trace import LOAD, STORE, Trace, TraceMeta

pytestmark = pytest.mark.skipif(
    not batch.available(), reason="batch engine needs numpy"
)

#: Policies the oracle sweeps the LLC over (the L1/L2 stay LRU — that is
#: what the batch engine vectorises; the LLC policy shapes the miss tail
#: the scalar body must interleave with exactly).
POLICIES = ("lru", "nru", "srrip", "drrip")
ARCHS = ("uncompressed", "base-victim")

#: Distinct randomized traces per (policy, arch) cell.  7 x 4 x 2 = 56
#: distinct traces >= the oracle's 50-trace floor, and every cell of the
#: policy x architecture matrix is fuzzed with its own traces.
SEEDS_PER_CELL = 7

# TEST-preset geometry the generator sizes its footprints against:
# L1 = 16 lines, L2 = 128 lines, LLC = 1024 lines.
_L1_LINES = 16
_LLC_LINES = TEST.reference_llc_lines


def fuzz_trace(seed: int) -> Trace:
    """One randomized trace, fully determined by ``seed``.

    The generator mixes regimes so every engine path is exercised: an
    L1-resident hot set (long vectorised hit runs), an LLC-scale region
    (miss tails through L2/LLC/memory), short streaming bursts (membership
    churn right after a snapshot), and occasional revisits of recently
    touched lines (hits whose stamps the vector apply must get exactly
    right).  Lengths are deliberately varied around the chunk size.
    """
    rng = random.Random(seed)
    length = rng.randrange(200, 800)
    hot_lines = rng.randrange(4, _L1_LINES)
    hot_base = rng.randrange(1 << 20)
    big_lines = rng.randrange(_L1_LINES, 2 * _LLC_LINES)
    big_base = rng.randrange(1 << 20)
    write_fraction = rng.uniform(0.0, 0.5)
    hot_fraction = rng.uniform(0.2, 0.95)

    kinds = array("b")
    addrs = array("q")
    deltas = array("i")
    recent: list[int] = []
    stream_left = 0
    stream_addr = 0
    for _ in range(length):
        roll = rng.random()
        if stream_left > 0:
            stream_left -= 1
            stream_addr += 1
            addr = stream_addr
        elif roll < 0.05:
            stream_left = rng.randrange(1, 12)
            stream_addr = rng.randrange(1 << 20)
            addr = stream_addr
        elif roll < 0.10 and recent:
            addr = rng.choice(recent)
        elif roll < hot_fraction:
            addr = hot_base + rng.randrange(hot_lines)
        else:
            addr = big_base + rng.randrange(big_lines)
        recent.append(addr)
        if len(recent) > 32:
            recent.pop(0)
        kinds.append(STORE if rng.random() < write_fraction else LOAD)
        addrs.append(addr)
        deltas.append(rng.randrange(1, 9))
    meta = TraceMeta(
        name=f"fuzz.{seed}",
        category="fuzz",
        seed=seed,
        footprint_lines=hot_lines + big_lines,
        comp_class="mixed",
        cache_sensitive=True,
    )
    return Trace(meta, kinds, addrs, deltas)


def fuzz_data(seed: int) -> LineDataModel:
    """Fresh data model for one run (stores mutate it)."""
    return LineDataModel(build_palette("ispec", "mixed", seed), seed=seed)


def run_engine(trace: Trace, machine: MachineConfig, engine: str, **kwargs) -> str:
    """One run; returns the byte-comparable serialised result."""
    result = simulate_trace(
        trace, fuzz_data(trace.meta.seed), machine, TEST, engine=engine, **kwargs
    )
    return json.dumps(result.to_dict(), sort_keys=True)


def _cases():
    """(case_id, seed, machine) for the full fuzz matrix."""
    case = 0
    for arch in ARCHS:
        for policy in POLICIES:
            machine = MachineConfig(arch=arch, policy=policy).validate()
            for _ in range(SEEDS_PER_CELL):
                yield f"{arch}-{policy}-s{case}", case, machine
                case += 1


CASES = list(_cases())
assert len({seed for _, seed, _ in CASES}) >= 50


class TestFuzzOracle:
    @pytest.mark.parametrize(
        "seed,machine", [case[1:] for case in CASES], ids=[c[0] for c in CASES]
    )
    def test_batched_run_byte_identical_to_traced(self, seed, machine):
        trace = fuzz_trace(seed)
        assert run_engine(trace, machine, "batch") == run_engine(
            trace, machine, "traced"
        )


def miss_trace(seed: int) -> Trace:
    """A miss-dominated randomized trace (working set >> L1 and LLC).

    Near-uniform accesses over several LLC capacities, so almost every
    access walks the full scalar miss body — L2 probe, LLC fill,
    eviction, DRAM accounting — with only incidental vectorised hit
    runs.  This is the regime the resumable batch engine re-enters the
    NumPy probe from, and the regime the end-to-end bench matrix is
    weighted toward.
    """
    rng = random.Random(seed)
    length = rng.randrange(600, 1400)
    footprint = rng.randrange(3 * _LLC_LINES, 6 * _LLC_LINES)
    base = rng.randrange(1 << 20)
    write_fraction = rng.uniform(0.1, 0.5)

    kinds = array("b")
    addrs = array("q")
    deltas = array("i")
    stream_left = 0
    stream_addr = 0
    for _ in range(length):
        if stream_left > 0:
            # Short streaming runs: misses to *adjacent* lines, which
            # stress back-invalidate ordering right after refreshes.
            stream_left -= 1
            stream_addr += 1
            addr = stream_addr
        elif rng.random() < 0.08:
            stream_left = rng.randrange(2, 16)
            stream_addr = base + rng.randrange(footprint)
            addr = stream_addr
        else:
            addr = base + rng.randrange(footprint)
        kinds.append(STORE if rng.random() < write_fraction else LOAD)
        addrs.append(addr)
        deltas.append(rng.randrange(1, 9))
    meta = TraceMeta(
        name=f"fuzz-miss.{seed}",
        category="fuzz",
        seed=seed,
        footprint_lines=footprint,
        comp_class="mixed",
        cache_sensitive=True,
    )
    return Trace(meta, kinds, addrs, deltas)


def _miss_cases():
    """(case_id, seed, machine) for the miss-dominated fuzz matrix."""
    seed = 77_000
    for arch in ARCHS:
        for policy in ("nru", "lru"):
            machine = MachineConfig(arch=arch, policy=policy).validate()
            for _ in range(4):
                yield f"{arch}-{policy}-m{seed}", seed, machine
                seed += 1


MISS_CASES = list(_miss_cases())


class TestMissDominatedOracle:
    """Byte-identity where the scalar miss body does nearly all the work."""

    @pytest.mark.parametrize(
        "seed,machine",
        [case[1:] for case in MISS_CASES],
        ids=[c[0] for c in MISS_CASES],
    )
    def test_miss_dominated_byte_identical_to_traced(self, seed, machine):
        trace = miss_trace(seed)
        assert run_engine(trace, machine, "batch") == run_engine(
            trace, machine, "traced"
        )


class TestSizeMemoWriteInvalidation:
    """Property: the size memo tracks on_write rotations exactly.

    The batch engine's fill fast path reads ``size_memo`` (falling back
    to ``size_of``), so a stale entry after a store would silently skew
    compressed fills.  A primed model replaying an arbitrary store
    sequence must agree with a never-primed model at every step.
    """

    def _models(self, seed):
        primed = fuzz_data(seed)
        lazy = fuzz_data(seed)
        addrs = array("q", [seed * 131 + i * 7 for i in range(64)])
        primed.prime_size_memo(addrs)
        return primed, lazy, addrs

    @pytest.mark.parametrize("seed", range(88_000, 88_006))
    def test_primed_model_tracks_stores_exactly(self, seed):
        primed, lazy, addrs = self._models(seed)
        rng = random.Random(seed)
        changed = 0
        for _ in range(600):
            addr = addrs[rng.randrange(len(addrs))]
            if rng.random() < 0.6:
                before = primed.size_of(addr)
                primed.on_write(addr)
                lazy.on_write(addr)
                changed += primed.size_of(addr) != before
            assert primed.size_of(addr) == lazy.size_of(addr)
            # Write invalidation proper: the memo entry is rewritten in
            # the same step as the rotation, never left stale.
            assert primed.size_memo[addr] == lazy.size_of(addr)
        # Enough rotations to prove stores really change fill sizes
        # (a memo that ignored stores would pass a hits-only check).
        assert changed > 0

    def test_store_to_cached_address_changes_fill_size(self):
        primed, lazy, addrs = self._models(88_100)
        addr = int(addrs[0])
        period = primed._period
        sizes = {primed.size_of(addr)}
        for _ in range(8 * period):
            primed.on_write(addr)
            sizes.add(primed.size_of(addr))
        # Eight rotations through a varied palette ring must visit more
        # than one size; the memo reflects each rotation immediately.
        assert len(sizes) > 1
        assert primed.size_memo[addr] == primed.size_of(addr)


class TestChunkBoundaries:
    """Chunk-size edge cases, all on one miss-and-hit-mixed fuzz trace."""

    MACHINE = MachineConfig(arch="base-victim", policy="lru").validate()
    SEED = 99_001

    @pytest.fixture(scope="class")
    def reference(self):
        return run_engine(fuzz_trace(self.SEED), self.MACHINE, "traced")

    @pytest.mark.parametrize("chunk_size", [1, 7, 63, 10**9])
    def test_odd_tiny_and_oversized_chunks(self, reference, chunk_size):
        batched = run_engine(
            fuzz_trace(self.SEED), self.MACHINE, "batch", chunk_size=chunk_size
        )
        assert batched == reference

    def test_chunk_longer_than_trace_equals_single_chunk(self):
        trace = fuzz_trace(self.SEED)
        assert run_engine(
            trace, self.MACHINE, "batch", chunk_size=len(trace) + 1
        ) == run_engine(trace, self.MACHINE, "batch", chunk_size=10**9)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            run_engine(fuzz_trace(self.SEED), self.MACHINE, "batch", chunk_size=0)

    def test_empty_trace(self):
        meta = TraceMeta(
            name="fuzz.empty",
            category="fuzz",
            seed=0,
            footprint_lines=1,
            comp_class="mixed",
            cache_sensitive=False,
        )
        trace = Trace(meta)
        assert run_engine(trace, self.MACHINE, "batch") == run_engine(
            trace, self.MACHINE, "traced"
        )


class TestTraceWindowAcrossChunks:
    """$REPRO_TRACE windows spanning chunk boundaries.

    An active tracer forces the traced reference loop by design, so the
    invariant under test is: an env-traced run whose recording window
    spans what would be several batch chunks is byte-identical to the
    batched run of the same trace — tracing can never perturb state, and
    the batch engine can never disagree with what the tracer saw.
    """

    MACHINE = MachineConfig(arch="base-victim", policy="nru").validate()
    SEED = 99_002

    def test_window_spans_chunk_boundaries(self, tmp_path, monkeypatch):
        trace = fuzz_trace(self.SEED)
        chunk = 50  # several boundaries inside the window below
        batched = run_engine(trace, self.MACHINE, "batch", chunk_size=chunk)

        out = tmp_path / "events.jsonl"
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(TRACE_LIMIT_ENV, str(3 * chunk + chunk // 2))
        monkeypatch.setenv(TRACE_FILE_ENV, str(out))
        traced = run_engine(trace, self.MACHINE, "batch", chunk_size=chunk)

        assert batched == traced
        events = [json.loads(line) for line in out.read_text().splitlines()]
        recorded = [event["i"] for event in events if "i" in event]
        assert recorded[0] == 0
        assert recorded[-1] > 2 * chunk  # the window really spans chunks

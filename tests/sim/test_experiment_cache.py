"""Tests for experiment-runner caching semantics."""

import json

from repro.sim.config import BASELINE_2MB, TEST
from repro.sim.experiment import CACHE_VERSION, ExperimentRunner
from repro.workloads.suite import SUITE_VERSION


class TestCacheKeys:
    def test_keys_embed_suite_version(self):
        key = ExperimentRunner._single_key(BASELINE_2MB, "mcf.1", 100)
        assert f"s{SUITE_VERSION}" in key
        assert "mcf.1" in key

    def test_cache_file_embeds_cache_version(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        runner.run_single(BASELINE_2MB, "sjeng.1")
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        assert f"v{CACHE_VERSION}" in files[0].name

    def test_corrupt_cache_lines_are_skipped(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        result = runner.run_single(BASELINE_2MB, "sjeng.1")
        path = next(tmp_path.iterdir())
        with path.open("a") as handle:
            handle.write("{torn json\n")
        fresh = ExperimentRunner(TEST, cache_dir=tmp_path)
        again = fresh.run_single(BASELINE_2MB, "sjeng.1")
        assert again.to_dict() == result.to_dict()

    def test_memory_only_mode_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        runner = ExperimentRunner(TEST, use_disk_cache=False)
        runner.run_single(BASELINE_2MB, "sjeng.1")
        assert not (tmp_path / ".repro_cache").exists()

    def test_cache_entries_are_valid_json(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        runner.run_single(BASELINE_2MB, "sjeng.1")
        path = next(tmp_path.iterdir())
        for line in path.read_text().splitlines():
            entry = json.loads(line)
            assert set(entry) == {"key", "result"}

"""Tests for experiment-runner caching semantics."""

import json
import warnings

import pytest

from repro.sim.config import BASELINE_2MB, TEST
from repro.sim.experiment import CACHE_VERSION, ExperimentRunner
from repro.sim.resultcache import CorruptCacheLineWarning, load_cache_entries
from repro.workloads.suite import SUITE_VERSION


class TestCacheKeys:
    def test_keys_embed_suite_version(self):
        key = ExperimentRunner._single_key(BASELINE_2MB, "mcf.1", 100)
        assert f"s{SUITE_VERSION}" in key
        assert "mcf.1" in key

    def test_cache_file_embeds_cache_version(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        runner.run_single(BASELINE_2MB, "sjeng.1")
        files = list(tmp_path.glob("results-*.jsonl"))
        assert len(files) == 1
        assert f"v{CACHE_VERSION}" in files[0].name

    def test_corrupt_cache_lines_are_skipped_with_a_warning(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        result = runner.run_single(BASELINE_2MB, "sjeng.1")
        path = next(tmp_path.glob("results-*.jsonl"))
        with path.open("a") as handle:
            handle.write("{torn json\n")
        with pytest.warns(CorruptCacheLineWarning, match="1 corrupt"):
            fresh = ExperimentRunner(TEST, cache_dir=tmp_path)
        again = fresh.run_single(BASELINE_2MB, "sjeng.1")
        assert again.to_dict() == result.to_dict()
        assert fresh.cache_hits == 1  # served from the surviving entry

    def test_structurally_wrong_lines_are_skipped(self, tmp_path):
        """Lines that parse as JSON but are not cache entries are dropped.

        These occur when a worker is killed mid-write and the torn tail
        of one entry happens to remain valid JSON.
        """
        path = tmp_path / "cache.jsonl"
        good = {"key": "k1", "result": {"ipc": 1.0}}
        lines = [
            json.dumps(good),
            json.dumps(["not", "a", "dict"]),
            json.dumps({"result": {"no": "key"}}),
            json.dumps({"key": 42, "result": {}}),
            json.dumps({"key": "k2"}),
            "",
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(CorruptCacheLineWarning, match="4 corrupt"):
            entries = load_cache_entries(path)
        assert entries == {"k1": {"ipc": 1.0}}

    def test_clean_files_load_without_warning(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        runner.run_single(BASELINE_2MB, "sjeng.1")
        with warnings.catch_warnings():
            warnings.simplefilter("error", CorruptCacheLineWarning)
            ExperimentRunner(TEST, cache_dir=tmp_path)

    def test_memory_only_mode_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        runner = ExperimentRunner(TEST, use_disk_cache=False)
        runner.run_single(BASELINE_2MB, "sjeng.1")
        assert not (tmp_path / ".repro_cache").exists()

    def test_cache_entries_are_checksummed_json(self, tmp_path):
        """Every v5 line is canonical JSON plus a matching CRC32 suffix."""
        import zlib

        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        runner.run_single(BASELINE_2MB, "sjeng.1")
        path = next(tmp_path.glob("results-*.jsonl"))
        for line in path.read_text().splitlines():
            payload, _, crc = line.rpartition("#")
            assert crc == f"{zlib.crc32(payload.encode()) & 0xFFFFFFFF:08x}"
            entry = json.loads(payload)
            assert set(entry) == {"key", "result"}
            # Canonical encoding: byte-identity across serial/parallel
            # sweeps depends on sorted keys.
            assert payload == json.dumps(entry, sort_keys=True)

"""Fault-tolerance tests: injected failures must never corrupt a sweep.

Every test arms :mod:`repro.sim.faultinject` through the environment
(inherited by pool workers) and asserts the two invariants of the
fault-tolerance layer:

* a sweep that survives its faults is *byte-identical* to a clean
  ``jobs=1`` run — retries, pool rebuilds and shard salvage are pure
  scheduling noise;
* a sweep that cannot survive degrades gracefully — structured
  :class:`~repro.sim.retry.FailedCell` records and ``sweep/*`` counters,
  never a missing cell without provenance.
"""

from __future__ import annotations

import pytest

from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, TEST
from repro.sim.experiment import ExperimentRunner
from repro.sim.faultinject import (
    FAULTS_DIR_ENV,
    FAULTS_ENV,
    Fault,
    InjectedFault,
    parse_faults,
)
from repro.sim.resultcache import encode_entry
from repro.sim.retry import RetryPolicy, SweepFailedError

TRACES = ["sjeng.1", "mcf.1", "lbm.1", "octane.1"]


def _sweep(runner: ExperimentRunner) -> list[tuple[dict, dict]]:
    return [
        (base.to_dict(), bv.to_dict())
        for base, bv in runner.run_pair(BASELINE_2MB, BASE_VICTIM_2MB, TRACES)
    ]


@pytest.fixture()
def clean_reference(tmp_path):
    """A clean serial sweep: (results, cache bytes) to diff against."""
    runner = ExperimentRunner(TEST, cache_dir=tmp_path / "reference", jobs=1)
    results = _sweep(runner)
    return results, runner._cache_path.read_bytes()


def _arm(monkeypatch, tmp_path, spec: str) -> None:
    monkeypatch.setenv(FAULTS_ENV, spec)
    monkeypatch.setenv(FAULTS_DIR_ENV, str(tmp_path / "stamps"))


def _counter(runner: ExperimentRunner, name: str) -> int:
    metric = runner.registry.as_dict().get(name)
    return metric["value"] if metric else 0


class TestTransientFaults:
    def test_transient_failure_retries_to_byte_identity(
        self, tmp_path, monkeypatch, clean_reference
    ):
        results, cache_bytes = clean_reference
        _arm(monkeypatch, tmp_path, "fail:2:2")
        runner = ExperimentRunner(
            TEST, cache_dir=tmp_path / "faulty", jobs=4, retries=3
        )
        assert _sweep(runner) == results
        assert runner._cache_path.read_bytes() == cache_bytes
        assert runner.failed_cells == []
        assert _counter(runner, "sweep/retries") >= 2
        assert _counter(runner, "sweep/failures") == 0

    def test_worker_crash_is_recovered_to_byte_identity(
        self, tmp_path, monkeypatch, clean_reference
    ):
        results, cache_bytes = clean_reference
        _arm(monkeypatch, tmp_path, "crash:3:1")
        runner = ExperimentRunner(TEST, cache_dir=tmp_path / "crashy", jobs=4)
        assert _sweep(runner) == results
        assert runner._cache_path.read_bytes() == cache_bytes
        assert _counter(runner, "sweep/recovered_workers") == 1
        # No shard litter after recovery either.
        leftovers = [p for p in (tmp_path / "crashy").rglob("*") if "shard" in p.name]
        assert leftovers == []

    def test_crash_plus_transient_failure_in_one_sweep(
        self, tmp_path, monkeypatch, clean_reference
    ):
        """The acceptance scenario: crash + transient fault, no operator."""
        results, cache_bytes = clean_reference
        _arm(monkeypatch, tmp_path, "fail:1:2,crash:5:1")
        runner = ExperimentRunner(
            TEST, cache_dir=tmp_path / "both", jobs=3, retries=3
        )
        assert _sweep(runner) == results
        assert runner._cache_path.read_bytes() == cache_bytes
        assert runner.failed_cells == []
        assert _counter(runner, "sweep/recovered_workers") == 1

    def test_hang_is_cut_by_watchdog_and_retried(
        self, tmp_path, monkeypatch, clean_reference
    ):
        results, cache_bytes = clean_reference
        _arm(monkeypatch, tmp_path, "hang:0:1")
        runner = ExperimentRunner(
            TEST, cache_dir=tmp_path / "hung", jobs=2, retries=1, job_timeout=1.0
        )
        assert _sweep(runner) == results
        assert runner._cache_path.read_bytes() == cache_bytes
        assert _counter(runner, "sweep/retries") == 1

    def test_serial_path_retries_identically(
        self, tmp_path, monkeypatch, clean_reference
    ):
        """jobs=1 goes through the same retry primitive as the workers."""
        results, cache_bytes = clean_reference
        _arm(monkeypatch, tmp_path, "fail:0:1")
        runner = ExperimentRunner(
            TEST, cache_dir=tmp_path / "serial-faulty", jobs=1, retries=2
        )
        assert _sweep(runner) == results
        assert runner._cache_path.read_bytes() == cache_bytes
        assert _counter(runner, "sweep/retries") == 1


class TestGracefulDegradation:
    def test_retry_exhaustion_becomes_failed_cell(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, "fail:0:99")
        runner = ExperimentRunner(
            TEST, cache_dir=tmp_path, jobs=2, retries=1, strict=False
        )
        done = runner.prewarm(
            [(BASELINE_2MB, "sjeng.1"), (BASELINE_2MB, "mcf.1")]
        )
        assert done == 1  # the healthy cell completed
        [failure] = runner.failed_cells
        assert failure.error == "InjectedFault"
        assert failure.attempts == 2  # first try + one retry
        assert failure.elapsed > 0
        assert _counter(runner, "sweep/failures") == 1
        # The failed cell stays uncached; the healthy one is cached.
        assert runner.has_cached(BASELINE_2MB, "mcf.1")
        assert not runner.has_cached(BASELINE_2MB, "sjeng.1")

    def test_timeout_exhaustion_is_reported_as_timeout(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, "hang:0:99")
        runner = ExperimentRunner(
            TEST,
            cache_dir=tmp_path,
            jobs=2,
            retries=0,
            job_timeout=0.5,
            strict=False,
        )
        runner.prewarm([(BASELINE_2MB, "sjeng.1"), (BASELINE_2MB, "mcf.1")])
        [failure] = runner.failed_cells
        assert failure.error == "JobTimeoutError"
        assert failure.attempts == 1

    def test_strict_mode_raises_after_caching_survivors(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, "fail:0:99")
        runner = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=2, retries=0)
        with pytest.raises(SweepFailedError) as excinfo:
            runner.prewarm([(BASELINE_2MB, "sjeng.1"), (BASELINE_2MB, "mcf.1")])
        assert len(excinfo.value.failures) == 1
        assert runner.has_cached(BASELINE_2MB, "mcf.1")  # survivor cached


class TestCorruptShards:
    def test_corrupt_shard_line_is_counted_and_harmless(
        self, tmp_path, monkeypatch, clean_reference
    ):
        results, cache_bytes = clean_reference
        _arm(monkeypatch, tmp_path, "corrupt:0:1")
        runner = ExperimentRunner(TEST, cache_dir=tmp_path / "torn", jobs=2)
        with pytest.warns(RuntimeWarning, match="corrupt cache line"):
            assert _sweep(runner) == results
        assert runner._cache_path.read_bytes() == cache_bytes
        assert _counter(runner, "sweep/corrupt_lines") == 1
        assert runner.corrupt_lines_skipped == 1

    def test_torn_write_is_caught_by_crc_and_harmless(
        self, tmp_path, monkeypatch, clean_reference
    ):
        """A checksum-failed shard line is detected, counted, skipped."""
        results, cache_bytes = clean_reference
        _arm(monkeypatch, tmp_path, "torn-write:0:1")
        runner = ExperimentRunner(TEST, cache_dir=tmp_path / "torn-v5", jobs=2)
        with pytest.warns(RuntimeWarning, match="CRC"):
            assert _sweep(runner) == results
        assert runner._cache_path.read_bytes() == cache_bytes
        assert _counter(runner, "cache/crc_failures") == 1
        # CRC failures are a subset of the corrupt-line tally.
        assert _counter(runner, "sweep/corrupt_lines") == 1

    def test_corrupt_main_cache_lines_are_accounted_on_load(self, tmp_path):
        donor = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=1)
        donor.run_single(BASELINE_2MB, "sjeng.1")
        with donor._cache_path.open("a") as handle:
            handle.write('{"key": "torn-mid-wri\n')
        with pytest.warns(RuntimeWarning):
            again = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=1)
        assert again.corrupt_lines_skipped == 1
        assert _counter(again, "sweep/corrupt_lines") == 1


class TestResume:
    def _orphan_shards(self, runner: ExperimentRunner, donor, keys) -> None:
        """Fabricate what a SIGKILLed sweep leaves behind: shard files
        from a dead pid, never merged into the main cache."""
        shard_dir = runner._cache_path.parent / (
            runner._cache_path.stem + ".shards-999999999"
        )
        shard_dir.mkdir()
        with (shard_dir / "shard-1.jsonl").open("w") as handle:
            for key in keys:
                handle.write(encode_entry(key, donor._memory[key]) + "\n")

    def test_resume_recovers_exactly_the_completed_cells(self, tmp_path):
        donor = ExperimentRunner(TEST, cache_dir=tmp_path / "donor", jobs=1)
        donor.run_pair(BASELINE_2MB, BASE_VICTIM_2MB, TRACES)

        interrupted = ExperimentRunner(TEST, cache_dir=tmp_path / "killed", jobs=1)
        completed = sorted(donor._memory)[:3]
        self._orphan_shards(interrupted, donor, completed)

        resumed = ExperimentRunner(TEST, cache_dir=tmp_path / "killed", jobs=1)
        salvaged = resumed.resume_orphan_shards()
        assert salvaged == sorted(completed)
        assert _counter(resumed, "sweep/resumed_cells") == 3
        # The orphan directory is gone; entries are on disk now.
        assert not list((tmp_path / "killed").glob("*.shards-*"))

        # The resumed sweep recomputes only the missing cells.
        assert _sweep(resumed) == _sweep(donor)
        assert resumed.cache_misses == len(TRACES) * 2 - 3
        assert resumed.cache_hits == 3

    def test_resume_is_idempotent_and_skips_cached_keys(self, tmp_path):
        donor = ExperimentRunner(TEST, cache_dir=tmp_path / "donor", jobs=1)
        donor.run_pair(BASELINE_2MB, BASE_VICTIM_2MB, TRACES[:2])

        runner = ExperimentRunner(TEST, cache_dir=tmp_path / "r", jobs=1)
        keys = sorted(donor._memory)[:2]
        self._orphan_shards(runner, donor, keys)
        fresh = ExperimentRunner(TEST, cache_dir=tmp_path / "r", jobs=1)
        assert fresh.resume_orphan_shards() == keys
        assert fresh.resume_orphan_shards() == []  # nothing left to salvage

        # A shard whose keys are already cached contributes nothing.
        self._orphan_shards(fresh, donor, keys)
        assert fresh.resume_orphan_shards() == []

    def test_live_shard_directories_are_left_alone(self, tmp_path):
        import os

        runner = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=1)
        live_dir = runner._cache_path.parent / (
            runner._cache_path.stem + f".shards-{os.getpid()}"
        )
        live_dir.mkdir()
        try:
            assert runner.resume_orphan_shards() == []
            assert live_dir.exists()
        finally:
            live_dir.rmdir()


class TestRetryPolicyUnit:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=3, backoff_base=0.05, backoff_cap=0.4)
        delays = [policy.delay("some|key", attempt) for attempt in (1, 2, 3, 9)]
        assert delays == [policy.delay("some|key", a) for a in (1, 2, 3, 9)]
        assert all(d > 0 for d in delays)
        assert max(delays) <= 0.4 * (1 + policy.jitter)
        assert policy.delay("other|key", 1) != delays[0]  # per-key jitter

    def test_env_resolution(self, monkeypatch):
        from repro.sim.retry import (
            JOB_TIMEOUT_ENV,
            RETRIES_ENV,
            resolve_job_timeout,
            resolve_retries,
        )

        monkeypatch.setenv(RETRIES_ENV, "3")
        monkeypatch.setenv(JOB_TIMEOUT_ENV, "2.5")
        assert resolve_retries() == 3
        assert resolve_retries(1) == 1  # explicit beats env
        assert resolve_job_timeout() == 2.5
        monkeypatch.setenv(JOB_TIMEOUT_ENV, "0")
        assert resolve_job_timeout() is None  # <= 0 disables
        monkeypatch.setenv(RETRIES_ENV, "lots")
        with pytest.raises(ValueError, match=RETRIES_ENV):
            resolve_retries()


class TestFaultSpecUnit:
    def test_parse_round_trip(self):
        assert parse_faults("fail:2:1, crash:0:1") == (
            Fault("fail", 2, 1),
            Fault("crash", 0, 1),
        )
        assert parse_faults("") == ()

    def test_malformed_specs_rejected(self):
        for bad in ("explode:1:1", "fail:1", "fail:x:1"):
            with pytest.raises(ValueError):
                parse_faults(bad)

    def test_fail_fault_fires_by_attempt(self, monkeypatch):
        from repro.sim import faultinject

        monkeypatch.setenv(FAULTS_ENV, "fail:7:2")
        with pytest.raises(InjectedFault):
            faultinject.before_attempt(7, 1)
        with pytest.raises(InjectedFault):
            faultinject.before_attempt(7, 2)
        faultinject.before_attempt(7, 3)  # past its budget: no fault
        faultinject.before_attempt(8, 1)  # other jobs untouched

    def test_crash_without_stamp_dir_is_disarmed(self, monkeypatch):
        from repro.sim import faultinject

        monkeypatch.setenv(FAULTS_ENV, "crash:0:1")
        monkeypatch.delenv(FAULTS_DIR_ENV, raising=False)
        faultinject.before_attempt(0, 1)  # must NOT os._exit

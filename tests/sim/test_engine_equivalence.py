"""Differential tests: the fast inner loop vs the traced reference loop.

``simulate_trace`` carries two equivalent inner loops (see
``repro.sim.single_core``): the traced reference loop — one
``hierarchy.access`` per demand access, per-access counter updates — and
the profile-guided fast loop with the L1 hit path inlined and counters
batched in locals.  A tracer forces the reference loop, so running the
same (trace, machine) pair with and without one is a direct differential
test of the optimization: every ``RunResult`` field and every serialised
observation must be byte-identical.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import TRACE_ENV, TRACE_FILE_ENV, TraceRecorder
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, TEST
from repro.sim.single_core import simulate_trace
from repro.workloads.suite import TraceSuite

MACHINES = (BASELINE_2MB, BASE_VICTIM_2MB)
TRACES = ("mcf.1", "sjeng.1")


def run_once(machine, trace_name, tracer=None):
    """One deterministic run; a fresh suite/data model every time."""
    suite = TraceSuite(TEST.reference_llc_lines, TEST.trace_length)
    trace = suite.trace(trace_name)
    data = suite.data_model(trace_name)
    return simulate_trace(trace, data, machine, TEST, tracer=tracer)


class TestTracedVsFastLoop:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.label)
    @pytest.mark.parametrize("trace_name", TRACES)
    def test_results_and_observations_byte_identical(self, machine, trace_name):
        fast = run_once(machine, trace_name)
        traced = run_once(machine, trace_name, tracer=TraceRecorder(limit=64))
        assert json.dumps(fast.to_dict(), sort_keys=True) == json.dumps(
            traced.to_dict(), sort_keys=True
        )

    def test_traced_loop_actually_records_events(self):
        tracer = TraceRecorder(limit=16)
        run_once(BASE_VICTIM_2MB, "mcf.1", tracer=tracer)
        # One run-header event plus per-access events up to the window.
        assert tracer.events[0]["event"] == "run"
        assert len(tracer.events) == 16
        assert tracer.dropped > 0
        access_event = tracer.events[1]
        assert set(access_event) == {"i", "addr", "write", "level"}

    def test_occupancy_samples_identical_across_loops(self):
        """The fast loop batches occupancy samples; the histogram must not
        notice (this is the counter-flush batching the tracer bypasses)."""
        fast = run_once(BASE_VICTIM_2MB, "mcf.1")
        traced = run_once(
            BASE_VICTIM_2MB, "mcf.1", tracer=TraceRecorder(limit=8)
        )
        key = "llc/victim_occupancy"
        assert fast.obs[key] == traced.obs[key]
        assert sum(fast.obs[key]["buckets"].values()) > 0


class TestReproTraceEnvEquivalence:
    def test_env_tracing_changes_no_simulation_state(self, tmp_path, monkeypatch):
        baseline = run_once(BASE_VICTIM_2MB, "sjeng.1")

        out = tmp_path / "events.jsonl"
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(TRACE_FILE_ENV, str(out))
        traced = run_once(BASE_VICTIM_2MB, "sjeng.1")

        assert json.dumps(traced.to_dict(), sort_keys=True) == json.dumps(
            baseline.to_dict(), sort_keys=True
        )
        events = [json.loads(line) for line in out.read_text().splitlines()]
        assert events[0] == {
            "event": "run",
            "trace": "sjeng.1",
            "machine": BASE_VICTIM_2MB.label,
        }
        assert any("addr" in event for event in events)


class TestVictimOccupancyCounter:
    def test_counter_matches_recount_after_a_run(self):
        """The O(1) resident counter must track the per-set dicts exactly
        through a full run's fills, promotions, demotions and evictions."""
        suite = TraceSuite(TEST.reference_llc_lines, TEST.trace_length)
        llc = BASE_VICTIM_2MB.build_llc(TEST)
        data = suite.data_model("mcf.1")
        trace = suite.trace("mcf.1")
        kind_of = {0: 0, 1: 2}  # loads -> READ, stores -> WRITE
        for addr, kind in zip(trace.addrs, trace.kinds):
            if kind == 1:
                data.on_write(addr)
            llc.access(addr, kind_of[kind], data.size_of(addr))
        recount = sum(len(cset.vict_lookup) for cset in llc._sets)
        assert llc.victim_occupancy() == recount
        assert recount > 0  # the run actually exercised the victim cache
        llc.check_invariants()

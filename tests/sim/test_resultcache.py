"""Unit tests for the v5 checksummed result-cache format.

The persistence contract under test: every line carries a CRC32 the
loader verifies (bit rot becomes a *detected*, counted skip), merges
fold into existing files under a lock via atomic replace (an interrupted
merge leaves the original intact), and v4 caches keep working — read
transparently, upgraded losslessly by migration.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.sim.resultcache import (
    CACHE_VERSION,
    CorruptCacheLineWarning,
    LEGACY_CACHE_VERSION,
    cache_file_name,
    crc_failure_count,
    encode_entry,
    iter_cache_entries,
    load_cache_entries,
    merge_cache_entries,
    migrate_cache_dir,
    migrate_cache_file,
    scan_cache_file,
    verify_cache_dir,
    write_cache_entries,
)


def _write_v5(path, entries):
    with path.open("w") as handle:
        for key, result in entries:
            handle.write(encode_entry(key, result) + "\n")


class TestLineFormat:
    def test_encode_round_trips_through_iter(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        entries = [("a", {"ipc": 1.5}), ("b", {"ipc": 0.5, "obs": {"x": 1}})]
        _write_v5(path, entries)
        assert list(iter_cache_entries(path)) == entries

    def test_v4_plain_lines_read_transparently(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        path.write_text(json.dumps({"key": "old", "result": {"ipc": 2.0}}) + "\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error", CorruptCacheLineWarning)
            assert load_cache_entries(path) == {"old": {"ipc": 2.0}}

    def test_flipped_bit_is_detected_counted_and_skipped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _write_v5(path, [("a", {"ipc": 1.5}), ("b", {"ipc": 0.5})])
        raw = bytearray(path.read_bytes())
        raw[14] ^= 0x08  # flip one payload bit in the first line
        path.write_bytes(bytes(raw))
        before = crc_failure_count(path)
        with pytest.warns(CorruptCacheLineWarning, match="CRC"):
            entries = load_cache_entries(path)
        assert entries == {"b": {"ipc": 0.5}}  # survivor intact
        assert crc_failure_count(path) - before == 1

    def test_flipped_bit_in_crc_suffix_is_detected(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        line = encode_entry("a", {"ipc": 1.5})
        digit = "0" if line[-1] != "0" else "1"
        path.write_text(line[:-1] + digit + "\n")
        with pytest.warns(CorruptCacheLineWarning):
            assert load_cache_entries(path) == {}


class TestMerge:
    def test_merge_into_missing_file_equals_plain_write(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        entries = [("k1", {"v": 1}), ("k2", {"v": 2})]
        stats = merge_cache_entries(a, entries)
        write_cache_entries(b, entries)
        assert a.read_bytes() == b.read_bytes()
        assert stats.new_entries == 2 and stats.existing_entries == 0

    def test_existing_keys_win_and_bytes_are_stable(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        merge_cache_entries(path, [("k1", {"v": 1}), ("k2", {"v": 2})])
        first = path.read_bytes()
        stats = merge_cache_entries(
            path, [("k1", {"v": 999}), ("k2", {"v": 2})]
        )
        assert path.read_bytes() == first  # never clobbered, never rewritten
        assert stats.new_entries == 0 and stats.existing_entries == 2

    def test_new_keys_append_in_items_order(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        merge_cache_entries(path, [("k1", {"v": 1})])
        merge_cache_entries(path, [("k3", {"v": 3}), ("k2", {"v": 2})])
        assert [key for key, _ in iter_cache_entries(path)] == ["k1", "k3", "k2"]

    def test_merge_scrubs_corrupt_lines_and_counts_them(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _write_v5(path, [("k1", {"v": 1})])
        with path.open("a") as handle:
            handle.write('{"torn": \n')
        with pytest.warns(CorruptCacheLineWarning):
            stats = merge_cache_entries(path, [("k2", {"v": 2})])
        assert stats.corrupt_lines == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error", CorruptCacheLineWarning)
            assert load_cache_entries(path) == {"k1": {"v": 1}, "k2": {"v": 2}}

    def test_merge_upgrades_legacy_lines_in_place(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        path.write_text(json.dumps({"key": "old", "result": {"v": 0}}) + "\n")
        merge_cache_entries(path, [("new", {"v": 1})])
        for line in path.read_text().splitlines():
            assert line.rpartition("#")[2].isalnum() and len(line.rpartition("#")[2]) == 8

    def test_interrupted_rewrite_leaves_original_intact(self, tmp_path, monkeypatch):
        import repro.sim.resultcache as rc

        path = tmp_path / "cache.jsonl"
        _write_v5(path, [("k1", {"v": 1})])
        original = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("injected crash before replace")

        monkeypatch.setattr(rc.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="injected"):
            merge_cache_entries(path, [("k2", {"v": 2})])
        monkeypatch.undo()
        assert path.read_bytes() == original  # target untouched
        assert not list(tmp_path.glob("*.tmp-*"))  # temp file cleaned up


class TestVerifyAndMigrate:
    def test_scan_reports_every_category(self, tmp_path):
        path = tmp_path / cache_file_name("test")
        _write_v5(path, [("k1", {"v": 1}), ("k1", {"v": 1})])  # duplicate
        bad_crc = encode_entry("k2", {"v": 2})
        digit = "0" if bad_crc[-1] != "0" else "1"
        with path.open("a") as handle:
            handle.write(json.dumps({"key": "legacy", "result": {}}) + "\n")
            handle.write('{"torn": \n')
            handle.write(bad_crc[:-1] + digit + "\n")  # checksum mismatch
        report = scan_cache_file(path)
        assert report.lines == 5
        assert report.entries == 3
        assert report.plain_lines == 1
        assert report.corrupt_lines == 1
        assert report.crc_failures == 1
        assert report.duplicate_keys == 1
        assert not report.clean

    def test_migrate_v4_file_to_v5_sibling(self, tmp_path):
        legacy = tmp_path / cache_file_name("test", LEGACY_CACHE_VERSION)
        entries = {"k1": {"v": 1}, "k2": {"v": 2}}
        legacy.write_text(
            "".join(
                json.dumps({"key": key, "result": result}) + "\n"
                for key, result in entries.items()
            )
        )
        [result] = migrate_cache_dir(tmp_path)
        assert result.action == "migrated"
        assert result.migrated_lines == 2
        assert not legacy.exists()
        target = tmp_path / cache_file_name("test")
        assert load_cache_entries(target) == entries
        assert scan_cache_file(target).clean

    def test_migrate_keeps_existing_v5_entries_over_v4(self, tmp_path):
        legacy = tmp_path / cache_file_name("test", LEGACY_CACHE_VERSION)
        legacy.write_text(json.dumps({"key": "k", "result": {"v": "old"}}) + "\n")
        current = tmp_path / cache_file_name("test")
        _write_v5(current, [("k", {"v": "new"})])
        migrate_cache_dir(tmp_path)
        assert load_cache_entries(current) == {"k": {"v": "new"}}

    def test_migrate_is_idempotent_on_clean_files(self, tmp_path):
        path = tmp_path / cache_file_name("test")
        _write_v5(path, [("k1", {"v": 1})])
        before = path.read_bytes()
        [result] = migrate_cache_dir(tmp_path)
        assert result.action == "clean"
        assert path.read_bytes() == before

    def test_interrupted_migration_leaves_v4_intact(self, tmp_path, monkeypatch):
        import repro.sim.resultcache as rc

        legacy = tmp_path / cache_file_name("test", LEGACY_CACHE_VERSION)
        legacy.write_text(json.dumps({"key": "k", "result": {"v": 1}}) + "\n")
        original = legacy.read_bytes()
        monkeypatch.setattr(
            rc.os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError("boom"))
        )
        with pytest.raises(OSError):
            migrate_cache_file(legacy, LEGACY_CACHE_VERSION)
        monkeypatch.undo()
        assert legacy.read_bytes() == original

    def test_pre_v4_files_are_stale_and_untouched(self, tmp_path):
        ancient = tmp_path / cache_file_name("test", 2)
        ancient.write_text(json.dumps({"key": "k", "result": {}}) + "\n")
        [result] = migrate_cache_dir(tmp_path)
        assert result.action == "stale"
        assert ancient.exists()

    def test_verify_dir_covers_every_versioned_file(self, tmp_path):
        _write_v5(tmp_path / cache_file_name("test"), [("k", {"v": 1})])
        (tmp_path / cache_file_name("bench", LEGACY_CACHE_VERSION)).write_text(
            json.dumps({"key": "k", "result": {}}) + "\n"
        )
        reports = verify_cache_dir(tmp_path)
        assert len(reports) == 2
        assert all(report.clean for report in reports)

    def test_current_version_constants(self):
        assert CACHE_VERSION == 5
        assert LEGACY_CACHE_VERSION == 4


class TestCanonicalize:
    """`canonicalize_cache_file`: the serve scheduler's byte-determinism pass."""

    def test_sorts_entries_by_key(self, tmp_path):
        from repro.sim.resultcache import canonicalize_cache_file

        path = tmp_path / cache_file_name("test")
        _write_v5(path, [("k3", {"v": 3}), ("k1", {"v": 1}), ("k2", {"v": 2})])
        assert canonicalize_cache_file(path) == 3
        assert [key for key, _ in iter_cache_entries(path)] == ["k1", "k2", "k3"]

    def test_arrival_order_never_changes_final_bytes(self, tmp_path):
        """The invariant serve relies on: bytes are a function of the set."""
        from itertools import permutations

        from repro.sim.resultcache import canonicalize_cache_file

        entries = [("k1", {"v": 1}), ("k2", {"v": 2}), ("k3", {"v": 3})]
        images = set()
        for index, order in enumerate(permutations(entries)):
            path = tmp_path / f"cache-{index}.jsonl"
            for entry in order:
                merge_cache_entries(path, [entry])  # one arrival at a time
            canonicalize_cache_file(path)
            images.add(path.read_bytes())
        assert len(images) == 1

    def test_sorted_clean_file_is_not_rewritten(self, tmp_path):
        from repro.sim.resultcache import canonicalize_cache_file

        path = tmp_path / cache_file_name("test")
        _write_v5(path, [("k1", {"v": 1}), ("k2", {"v": 2})])
        stamp = path.stat().st_mtime_ns
        assert canonicalize_cache_file(path) == 2
        assert path.stat().st_mtime_ns == stamp  # idempotent: no rewrite

    def test_scrubs_duplicates_and_legacy_lines(self, tmp_path):
        from repro.sim.resultcache import canonicalize_cache_file

        path = tmp_path / cache_file_name("test")
        _write_v5(path, [("k2", {"v": 2}), ("k2", {"v": "dupe"})])
        with path.open("a") as handle:
            handle.write(json.dumps({"key": "k1", "result": {"v": 1}}) + "\n")
        assert canonicalize_cache_file(path) == 2
        report = scan_cache_file(path)
        assert report.clean and report.duplicate_keys == 0
        # Duplicates resolve last-wins, matching the append-path
        # semantics a crashed-and-rerun writer produces.
        assert load_cache_entries(path) == {"k1": {"v": 1}, "k2": {"v": "dupe"}}

    def test_missing_file_is_a_noop(self, tmp_path):
        from repro.sim.resultcache import canonicalize_cache_file

        assert canonicalize_cache_file(tmp_path / "absent.jsonl") == 0

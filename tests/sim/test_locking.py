"""Unit tests for the advisory cache lock."""

from __future__ import annotations

import json
import os

import pytest

from repro.sim.locking import (
    DEFAULT_LOCK_TIMEOUT,
    LOCK_TIMEOUT_ENV,
    FileLock,
    LockTimeoutError,
    lock_timeout_total,
    lock_wait_total,
    resolve_lock_timeout,
    stale_lock_total,
)


class TestResolveTimeout:
    def test_explicit_beats_env_beats_default(self, monkeypatch):
        monkeypatch.delenv(LOCK_TIMEOUT_ENV, raising=False)
        assert resolve_lock_timeout() == DEFAULT_LOCK_TIMEOUT
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "7.5")
        assert resolve_lock_timeout() == 7.5
        assert resolve_lock_timeout(3.0) == 3.0  # explicit wins

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "forever")
        with pytest.raises(ValueError, match=LOCK_TIMEOUT_ENV):
            resolve_lock_timeout()


class TestFileLock:
    def test_acquire_release_context_manager(self, tmp_path):
        target = tmp_path / "cache.jsonl"
        lock = FileLock.for_target(target)
        assert lock.path.name == "cache.jsonl.lock"
        with lock:
            assert lock.held
        assert not lock.held

    def test_owner_metadata_written(self, tmp_path):
        lock = FileLock.for_target(tmp_path / "cache.jsonl")
        with lock:
            owner = json.loads(lock.path.read_text())
        assert owner["pid"] == os.getpid()
        assert "host" in owner and "acquired" in owner

    def test_contended_lock_times_out_naming_owner(self, tmp_path):
        target = tmp_path / "cache.jsonl"
        holder = FileLock.for_target(target).acquire()
        try:
            waits_before = lock_wait_total()
            timeouts_before = lock_timeout_total()
            contender = FileLock.for_target(target, timeout=0.15)
            with pytest.raises(LockTimeoutError, match=str(os.getpid())):
                contender.acquire()
            assert contender.timeouts == 1
            assert lock_timeout_total() == timeouts_before + 1
            assert lock_wait_total() > waits_before  # it did back off first
        finally:
            holder.release()

    def test_zero_timeout_fails_fast(self, tmp_path):
        target = tmp_path / "cache.jsonl"
        holder = FileLock.for_target(target).acquire()
        try:
            with pytest.raises(LockTimeoutError):
                FileLock.for_target(target, timeout=0).acquire()
        finally:
            holder.release()

    def test_lock_released_on_exception(self, tmp_path):
        target = tmp_path / "cache.jsonl"
        lock = FileLock.for_target(target)
        with pytest.raises(RuntimeError, match="inner"):
            with lock:
                raise RuntimeError("inner")
        # Released: a fast re-acquire by someone else succeeds.
        with FileLock.for_target(target, timeout=0.1):
            pass

    def test_dead_owner_metadata_counts_as_stale(self, tmp_path):
        target = tmp_path / "cache.jsonl"
        lock = FileLock.for_target(target)
        # Fabricate what a SIGKILLed holder leaves behind: owner metadata
        # from a dead pid.  The kernel already dropped its flock, so the
        # takeover must be immediate — and accounted as a stale detection.
        import socket

        lock.path.write_text(
            json.dumps(
                {"pid": 999999999, "host": socket.gethostname(), "acquired": 0}
            )
        )
        before = stale_lock_total()
        with lock:
            assert lock.stale_owners == 1
        assert stale_lock_total() == before + 1

    def test_live_owner_metadata_is_not_stale(self, tmp_path):
        target = tmp_path / "cache.jsonl"
        first = FileLock.for_target(target)
        with first:
            pass  # leaves our own (live-pid) metadata behind
        second = FileLock.for_target(target)
        with second:
            assert second.stale_owners == 0

    def test_reacquire_after_release(self, tmp_path):
        lock = FileLock.for_target(tmp_path / "cache.jsonl")
        for _ in range(3):
            with lock:
                assert lock.held

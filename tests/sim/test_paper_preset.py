"""Smoke tests for the full-size (paper geometry) preset."""

import pytest

from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, PAPER, Preset
from repro.sim.single_core import simulate_trace
from repro.workloads.suite import TraceSuite


class TestPaperGeometry:
    def test_llc_matches_section_v(self):
        geometry = PAPER.llc_geometry(16, 1.0)
        assert geometry.size_bytes == 2 * 2**20
        assert geometry.associativity == 16
        assert geometry.num_sets == 2048

    def test_hierarchy_matches_section_v(self):
        config = PAPER.hierarchy_config()
        assert config.l1_geometry.size_bytes == 32 * 1024
        assert config.l1_geometry.associativity == 8
        assert config.l2_geometry.size_bytes == 256 * 1024
        assert config.l2_geometry.associativity == 8

    def test_reference_lines(self):
        assert PAPER.reference_llc_lines == 32768

    def test_multiprogram_llc_4mb(self):
        geometry = PAPER.llc_geometry(16, 2.0)
        assert geometry.size_bytes == 4 * 2**20


class TestPaperScaleExecution:
    """A short run at full geometry: expensive paths must work unscaled."""

    @pytest.fixture(scope="class")
    def short_paper(self):
        return Preset("paper-smoke", 1.0, 4000)

    def test_runs_and_keeps_guarantee(self, short_paper):
        suite = TraceSuite(short_paper.reference_llc_lines, short_paper.trace_length)
        trace = suite.trace("mcf.1")
        base = simulate_trace(
            trace, suite.data_model("mcf.1"), BASELINE_2MB, short_paper
        )
        bv = simulate_trace(
            trace, suite.data_model("mcf.1"), BASE_VICTIM_2MB, short_paper
        )
        assert base.ipc > 0 and bv.ipc > 0
        assert bv.llc_misses <= base.llc_misses
        # Full-size footprint: in 4000 accesses over a 3x-of-2MB Zipf
        # working set, most touches are to distinct lines.
        assert trace.unique_lines() > 2000

"""Integration tests for the single-core / multi-core drivers and runner."""

import pytest

from repro.sim.config import (
    BASE_VICTIM_2MB,
    BASELINE_2MB,
    MachineConfig,
    PRESETS,
    TEST,
    TWO_TAG_2MB,
    UNCOMPRESSED_3MB,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.multi_core import simulate_mix
from repro.sim.single_core import RunResult, simulate_trace
from repro.workloads.mixes import MixSpec
from repro.workloads.suite import TraceSuite


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(TEST, cache_dir=tmp_path_factory.mktemp("cache"))


@pytest.fixture(scope="module")
def suite():
    return TraceSuite(TEST.reference_llc_lines, TEST.trace_length)


class TestPresets:
    def test_registry(self):
        assert set(PRESETS) == {"paper", "bench", "test"}

    def test_paper_llc_geometry(self):
        geometry = PRESETS["paper"].llc_geometry(16, 1.0)
        assert geometry.size_bytes == 2 * 2**20
        assert geometry.num_sets == 2048

    def test_3mb_geometry_via_ways(self):
        geometry = PRESETS["paper"].llc_geometry(24, 1.0)
        assert geometry.size_bytes == 3 * 2**20

    def test_4mb_geometry_via_sets(self):
        geometry = PRESETS["paper"].llc_geometry(16, 2.0)
        assert geometry.size_bytes == 4 * 2**20

    def test_invalid_sets_mult_rejected(self):
        with pytest.raises(ValueError):
            PRESETS["paper"].llc_geometry(16, 1.5)

    def test_machine_labels_distinguish_configs(self):
        labels = {
            BASELINE_2MB.label,
            BASE_VICTIM_2MB.label,
            TWO_TAG_2MB.label,
            UNCOMPRESSED_3MB.label,
            BASELINE_2MB.with_capacity(16, 2.0).label,
        }
        assert len(labels) == 5

    def test_build_llc_dispatch(self):
        for machine in (BASELINE_2MB, BASE_VICTIM_2MB, TWO_TAG_2MB):
            llc = machine.build_llc(TEST)
            assert llc.geometry.associativity == 16

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(arch="hopeful").build_llc(TEST)


class TestSingleCore:
    def test_run_produces_consistent_counts(self, suite):
        trace = suite.trace("mcf.1")
        data = suite.data_model("mcf.1")
        result = simulate_trace(trace, data, BASELINE_2MB, TEST)
        assert result.accesses == len(trace)
        assert result.instructions == trace.instructions
        assert result.cycles > 0
        assert result.ipc > 0
        assert result.l1_hits + result.l2_hits >= 0
        assert result.llc_hits + result.llc_misses <= result.accesses

    def test_runs_are_deterministic(self, suite):
        trace = suite.trace("omnetpp.1")
        a = simulate_trace(trace, suite.data_model("omnetpp.1"), BASELINE_2MB, TEST)
        b = simulate_trace(trace, suite.data_model("omnetpp.1"), BASELINE_2MB, TEST)
        assert a.to_dict() == b.to_dict()

    def test_base_victim_never_misses_more(self, suite):
        for name in ("mcf.1", "sysmark.1", "octane.1"):
            trace = suite.trace(name)
            base = simulate_trace(trace, suite.data_model(name), BASELINE_2MB, TEST)
            bv = simulate_trace(trace, suite.data_model(name), BASE_VICTIM_2MB, TEST)
            assert bv.llc_misses <= base.llc_misses, name

    def test_round_trip_serialisation(self, suite):
        trace = suite.trace("mcf.1")
        result = simulate_trace(trace, suite.data_model("mcf.1"), BASELINE_2MB, TEST)
        assert RunResult.from_dict(result.to_dict()) == result


class TestRunnerCaching:
    def test_cache_hit_returns_equal_result(self, runner):
        first = runner.run_single(BASELINE_2MB, "mcf.1")
        second = runner.run_single(BASELINE_2MB, "mcf.1")
        assert first.to_dict() == second.to_dict()

    def test_disk_cache_survives_new_runner(self, tmp_path):
        r1 = ExperimentRunner(TEST, cache_dir=tmp_path)
        first = r1.run_single(BASELINE_2MB, "sjeng.1")
        r2 = ExperimentRunner(TEST, cache_dir=tmp_path)
        # The new runner must not re-simulate: verify via identical result
        # and absence of the trace in its in-process suite cache.
        second = r2.run_single(BASELINE_2MB, "sjeng.1")
        assert first.to_dict() == second.to_dict()
        assert "sjeng.1" not in r2.suite._traces

    def test_distinct_machines_distinct_entries(self, runner):
        a = runner.run_single(BASELINE_2MB, "gcc.1")
        b = runner.run_single(BASE_VICTIM_2MB, "gcc.1")
        assert a.machine != b.machine


class TestMultiCore:
    def test_mix_runs_all_threads(self, suite):
        mix = MixSpec("m1", ("mcf.1", "omnetpp.1", "sysmark.1", "octane.1"))
        result = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        assert len(result.threads) == 4
        for thread in result.thread_results:
            assert thread.instructions > 0
            assert thread.ipc > 0

    def test_shared_cache_slower_than_alone(self, suite):
        mix = MixSpec("m2", ("mcf.1", "mcf.2", "omnetpp.1", "gcc.1"))
        shared = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        for thread in shared.thread_results:
            alone = simulate_trace(
                suite.trace(thread.trace),
                suite.data_model(thread.trace),
                BASELINE_2MB,
                TEST,
            )
            assert thread.ipc <= alone.ipc * 1.05  # contention can't speed it up

    def test_duplicate_traces_do_not_share_lines(self, suite):
        mix = MixSpec("m3", ("mcf.1", "mcf.1", "mcf.1", "mcf.1"))
        result = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        # Four copies contend: per-thread IPC must drop vs a single copy.
        alone = simulate_trace(
            suite.trace("mcf.1"), suite.data_model("mcf.1"), BASELINE_2MB, TEST
        )
        for thread in result.thread_results:
            assert thread.ipc < alone.ipc

    def test_mix_result_serialisation(self, suite):
        from repro.sim.multi_core import MixRunResult

        mix = MixSpec("m4", ("gcc.1", "gcc.2", "sjeng.1", "gobmk.1"))
        result = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        assert MixRunResult.from_dict(result.to_dict()).to_dict() == result.to_dict()

    def test_base_victim_hit_rate_guarantee_holds_for_mixes(self, suite):
        mix = MixSpec("m5", ("mcf.1", "omnetpp.1", "speech.1", "sysmark.1"))
        base = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        bv = simulate_mix(mix, BASE_VICTIM_2MB, TEST, suite)
        assert bv.llc_hit_rate >= base.llc_hit_rate - 1e-9

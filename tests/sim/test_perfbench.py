"""Tests for the perf-benchmark subsystem and the committed baseline."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.config import TEST
from repro.sim.perfbench import (
    SCHEMA_VERSION,
    aggregate_rate,
    check_regression,
    load_baseline,
    measure_matrix,
    payload_engine,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "BENCH_PERF.json"


def _payload(
    rate: float,
    cells: dict[tuple[str, str], float] | None = None,
    engine: str | None = None,
) -> dict:
    entries = [
        {"machine": machine, "trace": trace, "accesses_per_sec": cell_rate}
        for (machine, trace), cell_rate in (cells or {}).items()
    ]
    payload = {
        "schema": SCHEMA_VERSION,
        "entries": entries,
        "aggregate": {"accesses_per_sec": rate},
    }
    if engine is not None:
        payload["engine"] = engine
    return payload


class TestMeasureMatrix:
    def test_payload_shape_and_positive_rates(self):
        payload = measure_matrix(TEST, trace_names=("sjeng.1",), repeats=1)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["jobs"] == 1
        assert len(payload["entries"]) == 2  # two default machines
        for entry in payload["entries"]:
            assert entry["accesses"] > 0
            assert entry["accesses_per_sec"] > 0
            assert "simulate" in entry["phase_seconds"]
        assert aggregate_rate(payload) > 0

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError, match="repeats"):
            measure_matrix(TEST, trace_names=("sjeng.1",), repeats=0)

    def test_engine_recorded_in_payload(self):
        payload = measure_matrix(
            TEST, trace_names=("sjeng.1",), repeats=1, engine="fast"
        )
        assert payload["engine"] == "fast"
        assert payload_engine(payload) == "fast"

    def test_unknown_engine_rejected_before_measuring(self):
        with pytest.raises(ValueError, match="unknown engine"):
            measure_matrix(TEST, trace_names=("sjeng.1",), repeats=1, engine="warp")


class TestCheckRegression:
    def test_within_allowance_passes(self):
        assert check_regression(_payload(80.0), _payload(100.0), 0.30) == []

    def test_regression_past_allowance_fails_with_cells(self):
        current = _payload(60.0, {("m", "t"): 50.0})
        baseline = _payload(100.0, {("m", "t"): 100.0})
        problems = check_regression(current, baseline, 0.30)
        assert len(problems) == 2
        assert "aggregate throughput regressed" in problems[0]
        assert "cell m|t" in problems[1]

    def test_faster_is_never_a_problem(self):
        assert check_regression(_payload(250.0), _payload(100.0), 0.30) == []

    def test_cross_engine_comparison_refused(self):
        """A regression must never hide behind an engine switch: payloads
        measured with different engines are never rate-compared, even
        when the measurement is faster than the baseline."""
        problems = check_regression(
            _payload(250.0, engine="batch"), _payload(100.0, engine="fast"), 0.30
        )
        assert len(problems) == 1
        assert "engine mismatch" in problems[0]
        assert "'batch'" in problems[0] and "'fast'" in problems[0]

    def test_pre_engine_baseline_reads_as_fast(self):
        """Payloads written before the engine field existed were all
        measured with the scalar fast loop."""
        assert payload_engine(_payload(1.0)) == "fast"
        assert check_regression(_payload(100.0, engine="fast"), _payload(100.0)) == []
        problems = check_regression(_payload(100.0, engine="batch"), _payload(100.0))
        assert problems and "engine mismatch" in problems[0]


class TestCommittedBaseline:
    def test_baseline_sections_load(self):
        for section in ("bench", "test-ci"):
            payload = load_baseline(BASELINE_PATH, section)
            assert payload["schema"] == SCHEMA_VERSION
            assert aggregate_rate(payload) > 0

    def test_unknown_section_is_a_clear_error(self):
        with pytest.raises(KeyError, match="known sections"):
            load_baseline(BASELINE_PATH, "nope")

    def test_committed_baseline_engine_pairing(self):
        """The committed sections compare two code states of the *same*
        engine — before is the batch engine at the parent commit, after
        is the batch engine as shipped — and the after-engine must be
        the one CI's perf-smoke pins (batch), otherwise the cross-engine
        refusal would fail every CI run."""
        data = json.loads(BASELINE_PATH.read_text())
        for section in ("bench", "test-ci"):
            matrix = data["matrices"][section]
            assert payload_engine(matrix["before"]) == "batch"
            assert payload_engine(matrix["after"]) == "batch"
            assert not matrix["before"].get("profiled")
            assert not matrix["after"].get("profiled")

    def test_committed_speedup_is_consistent_and_not_a_regression(self):
        """The shipped code must be no slower than the code state it was
        measured against on the Figure 8 single-core (bench) matrix, and
        the recorded speedup must match the recorded payloads."""
        data = json.loads(BASELINE_PATH.read_text())
        bench = data["matrices"]["bench"]
        ratio = (
            bench["after"]["aggregate"]["accesses_per_sec"]
            / bench["before"]["aggregate"]["accesses_per_sec"]
        )
        assert ratio >= 1.0
        assert bench["speedup"] == pytest.approx(ratio, abs=5e-4)

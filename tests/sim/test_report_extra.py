"""Additional report-formatting tests."""

from repro.sim.report import category_table, traffic_summary
from repro.sim.single_core import RunResult


def run(trace, reads=100, writes=50, llc=1000):
    return RunResult(
        trace=trace,
        machine="m",
        memory_reads=reads,
        memory_writes=writes,
        llc_data_reads=llc,
    )


class TestCategoryTable:
    def test_contains_all_categories_and_average(self):
        table = category_table(
            {"bv": {"mcf.1": 1.1, "lbm.1": 1.05, "sysmark.1": 1.2, "octane.1": 1.0}},
            "Title",
        )
        for token in ("fspec", "ispec", "productivity", "client", "average", "bv"):
            assert token in table

    def test_multiple_rows(self):
        series = {
            "a": {"mcf.1": 1.0, "lbm.1": 1.0, "sysmark.1": 1.0, "octane.1": 1.0},
            "b": {"mcf.1": 2.0, "lbm.1": 2.0, "sysmark.1": 2.0, "octane.1": 2.0},
        }
        table = category_table(series, "T")
        assert "1.000" in table and "2.000" in table


class TestTrafficSummary:
    def test_ratios_computed(self):
        base = [run("a"), run("b")]
        bv = [run("a", reads=80, writes=50, llc=1310), run("b", reads=88, writes=50, llc=1310)]
        text = traffic_summary(bv, base)
        assert "0.840" in text  # reads ratio
        assert "1.000" in text  # writes ratio
        assert "1.310" in text  # LLC accesses ratio

    def test_zero_baselines_safe(self):
        base = [run("a", reads=0, writes=0, llc=0)]
        bv = [run("a", reads=0, writes=0, llc=0)]
        text = traffic_summary(bv, base)
        assert "DRAM reads ratio" in text

"""Tests for metrics and report formatting."""

import math

import pytest

from repro.sim.metrics import (
    bandwidth_ratio,
    count_losers,
    dram_read_ratio,
    dram_write_ratio,
    geomean,
    ipc_ratio,
    weighted_speedup,
)
from repro.sim.report import (
    category_of,
    format_table,
    per_category_geomeans,
    ratio_series_summary,
)
from repro.sim.single_core import RunResult


def run(trace="t", ipc=1.0, reads=100, writes=50, **kwargs):
    return RunResult(
        trace=trace,
        machine="m",
        ipc=ipc,
        memory_reads=reads,
        memory_writes=writes,
        **kwargs,
    )


class TestGeomean:
    def test_simple(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_matches_log_definition(self):
        values = [0.5, 1.2, 2.0, 0.9]
        expected = math.exp(sum(math.log(v) for v in values) / 4)
        assert geomean(values) == pytest.approx(expected)


class TestRatios:
    def test_ipc_ratio(self):
        assert ipc_ratio(run(ipc=1.2), run(ipc=1.0)) == pytest.approx(1.2)

    def test_ipc_ratio_requires_same_trace(self):
        with pytest.raises(ValueError):
            ipc_ratio(run(trace="a"), run(trace="b"))

    def test_ipc_ratio_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            ipc_ratio(run(), run(ipc=0.0))

    def test_dram_read_ratio(self):
        assert dram_read_ratio(run(reads=80), run(reads=100)) == pytest.approx(0.8)

    def test_dram_read_ratio_zero_baseline(self):
        assert dram_read_ratio(run(reads=0), run(reads=0)) == 1.0

    def test_dram_write_ratio(self):
        assert dram_write_ratio(run(writes=50), run(writes=50)) == 1.0

    def test_dram_read_ratio_inf_warns_naming_the_trace(self):
        with pytest.warns(RuntimeWarning, match="mcf.1"):
            ratio = dram_read_ratio(
                run(trace="mcf.1", reads=10), run(trace="mcf.1", reads=0)
            )
        assert ratio == float("inf")

    def test_dram_write_ratio_inf_warns_naming_the_trace(self):
        with pytest.warns(RuntimeWarning, match="lbm.4"):
            ratio = dram_write_ratio(
                run(trace="lbm.4", writes=3), run(trace="lbm.4", writes=0)
            )
        assert ratio == float("inf")

    def test_dram_ratios_do_not_warn_on_normal_input(self, recwarn):
        dram_read_ratio(run(reads=80), run(reads=100))
        dram_write_ratio(run(writes=0), run(writes=0))
        assert len(recwarn) == 0

    def test_bandwidth_ratio(self):
        assert bandwidth_ratio(run(reads=50, writes=50), run(reads=100, writes=100)) == 0.5

    def test_count_losers(self):
        assert count_losers([0.9, 1.0, 1.1, 0.99]) == 2


class TestWeightedSpeedup:
    def test_identity(self):
        shared = [run(trace=f"t{i}", ipc=1.0) for i in range(4)]
        assert weighted_speedup(shared, shared) == pytest.approx(4.0)

    def test_half_speed(self):
        shared = [run(trace=f"t{i}", ipc=0.5) for i in range(4)]
        alone = [run(trace=f"t{i}", ipc=1.0) for i in range(4)]
        assert weighted_speedup(shared, alone) == pytest.approx(2.0)

    def test_requires_matching_threads(self):
        with pytest.raises(ValueError):
            weighted_speedup([run()], [run(), run()])

    def test_requires_matching_order(self):
        shared = [run(trace="a"), run(trace="b")]
        alone = [run(trace="b"), run(trace="a")]
        with pytest.raises(ValueError):
            weighted_speedup(shared, alone)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_ratio_series_summary_contents(self):
        text = ratio_series_summary("Fig X", {"a": 1.1, "b": 0.9, "c": 1.0})
        assert "losers(<1.0)=1" in text
        assert "geomean" in text

    def test_category_of_known_trace(self):
        assert category_of("mcf.1") == "ispec"
        assert category_of("lbm.1") == "fspec"

    def test_category_of_unknown_trace(self):
        with pytest.raises(KeyError):
            category_of("nosuch.1")

    def test_per_category_geomeans(self):
        means = per_category_geomeans({"mcf.1": 2.0, "mcf.2": 0.5, "lbm.1": 1.0})
        assert means["ispec"] == pytest.approx(1.0)
        assert means["fspec"] == pytest.approx(1.0)
        assert means["average"] == pytest.approx(1.0)

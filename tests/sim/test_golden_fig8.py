"""Golden regression against a committed Figure 8 fixture.

``golden_figure8.csv`` holds four rows (one trace per workload category)
copied verbatim from the bench suite's ``.repro_cache/figure8.csv``
export.  Re-simulating them on the BENCH preset must reproduce the
committed ratios to near machine precision: the simulator is fully
deterministic, so *any* drift here means its behaviour changed and
``CACHE_VERSION``/EXPERIMENTS.md need a deliberate update.  This catches
simulator drift in seconds, without rerunning the full bench suite.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import pytest

from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, BENCH
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import dram_read_ratio, ipc_ratio

GOLDEN_PATH = Path(__file__).with_name("golden_figure8.csv")


def load_golden() -> dict[str, tuple[float, float]]:
    with GOLDEN_PATH.open(newline="") as handle:
        return {
            row["trace"]: (float(row["IPC ratio"]), float(row["DRAM read ratio"]))
            for row in csv.DictReader(handle)
        }


def test_fixture_covers_all_four_categories():
    golden = load_golden()
    assert sorted(golden) == ["3dmark.1", "lbm.1", "mcf.1", "sysmark.1"]


def test_figure8_slice_matches_golden():
    golden = load_golden()
    runner = ExperimentRunner(BENCH, use_disk_cache=False)
    for trace_name, (golden_ipc, golden_reads) in sorted(golden.items()):
        base = runner.run_single(BASELINE_2MB, trace_name)
        bv = runner.run_single(BASE_VICTIM_2MB, trace_name)
        assert ipc_ratio(bv, base) == pytest.approx(golden_ipc, rel=1e-9), (
            f"{trace_name}: IPC ratio drifted from the committed golden value; "
            "if the simulator changed intentionally, bump CACHE_VERSION and "
            "regenerate tests/sim/golden_figure8.csv"
        )
        assert dram_read_ratio(bv, base) == pytest.approx(golden_reads, rel=1e-9), (
            f"{trace_name}: DRAM read ratio drifted from the committed golden value"
        )


def test_figure8_slice_identical_at_jobs1_and_jobs4():
    """The optimized engine under the parallel sweep must reproduce the
    golden slice byte-for-byte at both --jobs 1 and --jobs 4: every
    RunResult field and every serialised obs counter, not just the
    ratios the fixture commits."""
    golden = load_golden()
    serial = ExperimentRunner(BENCH, use_disk_cache=False, jobs=1)
    parallel = ExperimentRunner(BENCH, use_disk_cache=False, jobs=4)
    for trace_name, (golden_ipc, _) in sorted(golden.items()):
        pairs = {}
        for label, runner in (("jobs1", serial), ("jobs4", parallel)):
            base = runner.run_single(BASELINE_2MB, trace_name)
            bv = runner.run_single(BASE_VICTIM_2MB, trace_name)
            assert ipc_ratio(bv, base) == pytest.approx(golden_ipc, rel=1e-9)
            pairs[label] = (base, bv)
        for serial_run, parallel_run in zip(pairs["jobs1"], pairs["jobs4"]):
            assert json.dumps(
                serial_run.to_dict(), sort_keys=True
            ) == json.dumps(parallel_run.to_dict(), sort_keys=True), (
                f"{trace_name}: jobs=4 run drifted from jobs=1"
            )

"""Differential tests: parallel sweeps must be bit-identical to serial.

The parallel engine (``repro.sim.parallel``) may only ever be a
*scheduling* change: the same sweep run with ``jobs=1`` and ``jobs=4``
must produce identical result dicts, identical cache-hit accounting and
byte-identical merged cache files, on the first pass and on a second
(fully cached) pass.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import merge_observations
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, TEST
from repro.sim.experiment import ExperimentRunner
from repro.sim.parallel import JOBS_ENV, resolve_jobs
from repro.workloads.mixes import build_mixes

#: A small but heterogeneous sweep: four traces x two machines.
TRACES = ["sjeng.1", "mcf.1", "lbm.1", "octane.1"]


def _sweep(runner: ExperimentRunner) -> list[tuple[dict, dict]]:
    return [
        (base.to_dict(), bv.to_dict())
        for base, bv in runner.run_pair(BASELINE_2MB, BASE_VICTIM_2MB, TRACES)
    ]


class TestDifferentialSingles:
    def test_jobs4_matches_jobs1_results_and_cache_bytes(self, tmp_path):
        serial = ExperimentRunner(TEST, cache_dir=tmp_path / "serial", jobs=1)
        parallel = ExperimentRunner(TEST, cache_dir=tmp_path / "parallel", jobs=4)
        assert serial.jobs == 1 and parallel.jobs == 4

        assert _sweep(serial) == _sweep(parallel)

        serial_bytes = serial._cache_path.read_bytes()
        parallel_bytes = parallel._cache_path.read_bytes()
        assert serial_bytes  # something was actually written
        assert serial_bytes == parallel_bytes

        # Identical accounting: nothing cached, 8 unique jobs simulated.
        assert (serial.cache_hits, serial.cache_misses) == (0, len(TRACES) * 2)
        assert (parallel.cache_hits, parallel.cache_misses) == (0, len(TRACES) * 2)

    def test_second_pass_is_all_cache_hits_and_leaves_file_untouched(self, tmp_path):
        first = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=4)
        results = _sweep(first)
        cache_bytes = first._cache_path.read_bytes()

        again = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=4)
        assert _sweep(again) == results
        assert (again.cache_hits, again.cache_misses) == (len(TRACES) * 2, 0)
        assert again._cache_path.read_bytes() == cache_bytes

    def test_no_shard_files_survive_a_sweep(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=4)
        _sweep(runner)
        leftovers = [p for p in tmp_path.rglob("*") if "shard" in p.name]
        assert leftovers == []

    def test_duplicate_requests_count_as_hits(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=4)
        runner.run_many(BASELINE_2MB, ["sjeng.1", "sjeng.1", "mcf.1"])
        assert runner.cache_misses == 2
        assert runner.cache_hits == 1


class TestObservationDeterminism:
    """Counters must merge across worker shards without drift."""

    def test_jobs4_counters_byte_identical_to_jobs1(self, tmp_path):
        serial = ExperimentRunner(TEST, cache_dir=tmp_path / "serial", jobs=1)
        parallel = ExperimentRunner(TEST, cache_dir=tmp_path / "parallel", jobs=4)

        serial_obs = [
            run.obs for run in serial.run_many(BASE_VICTIM_2MB, TRACES)
        ]
        parallel_obs = [
            run.obs for run in parallel.run_many(BASE_VICTIM_2MB, TRACES)
        ]
        for ser, par in zip(serial_obs, parallel_obs):
            assert json.dumps(ser, sort_keys=True) == json.dumps(par, sort_keys=True)
        # Merged suite-level counters are byte-identical too.
        assert json.dumps(merge_observations(serial_obs)) == json.dumps(
            merge_observations(parallel_obs)
        )

    def test_runs_publish_the_papers_observables(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=1)
        obs = runner.run_single(BASE_VICTIM_2MB, "mcf.1").obs
        assert obs["llc/partner_evictions"]["kind"] == "counter"
        assert obs["llc/victim_occupancy"]["kind"] == "histogram"
        assert sum(obs["llc/victim_occupancy"]["buckets"].values()) > 0
        assert obs["hits/llc_victim"]["value"] == obs["llc/victim_hits"]["value"]
        for codec in ("bdi", "fpc", "cpack", "sc2", "zero"):
            assert obs[f"codec/{codec}/size_bytes"]["kind"] == "histogram"

    def test_parent_trace_env_does_not_perturb_sweeps(self, tmp_path, monkeypatch):
        """$REPRO_TRACE in the parent forces the serial reference loop
        (per-access counter updates) while workers strip it and take the
        batched fast loop; both must produce identical results and
        counters, covering the counter-flush batching differentially."""
        plain = ExperimentRunner(TEST, cache_dir=tmp_path / "plain", jobs=4)
        plain_results = _sweep(plain)

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_FILE", str(tmp_path / "events.jsonl"))
        traced = ExperimentRunner(TEST, cache_dir=tmp_path / "traced", jobs=1)
        assert _sweep(traced) == plain_results
        assert plain._cache_path.read_bytes() == traced._cache_path.read_bytes()

    def test_no_timers_ever_serialise(self, tmp_path):
        runner = ExperimentRunner(TEST, cache_dir=tmp_path, jobs=1)
        obs = runner.run_single(BASE_VICTIM_2MB, "sjeng.1").obs
        assert obs  # the run did publish something
        assert all(metric["kind"] != "timer" for metric in obs.values())


class TestDifferentialMixes:
    def test_mix_sweep_parallel_matches_serial(self, tmp_path):
        mixes = build_mixes()[:2]
        serial = ExperimentRunner(TEST, cache_dir=tmp_path / "s", jobs=1)
        parallel = ExperimentRunner(TEST, cache_dir=tmp_path / "p", jobs=2)

        serial_results = serial.run_mixes(BASELINE_2MB, mixes)
        parallel_results = parallel.run_mixes(BASELINE_2MB, mixes)

        assert [r.to_dict() for r in serial_results] == [
            r.to_dict() for r in parallel_results
        ]
        assert serial._cache_path.read_bytes() == parallel._cache_path.read_bytes()
        assert (parallel.cache_hits, parallel.cache_misses) == (0, 2)


class TestMemoryOnlySweeps:
    def test_parallel_sweep_without_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        runner = ExperimentRunner(TEST, use_disk_cache=False, jobs=4)
        results = runner.run_many(BASELINE_2MB, TRACES)
        assert len(results) == len(TRACES)
        assert not (tmp_path / ".repro_cache").exists()


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(None, default=4) == 4

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(0) >= 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ValueError, match=JOBS_ENV):
            resolve_jobs(None)

"""Miniature end-to-end checks of the paper's headline shapes.

These run a subset of the suite on the tiny TEST preset, so they are
coarse — the full-resolution reproduction lives in ``benchmarks/`` — but
they pin the qualitative results that must never regress:

* Base-Victim never reads more from memory than the uncompressed
  baseline, on any trace (the structural guarantee),
* compression-friendly traces gain more than poorly compressing ones,
* Base-Victim tracks a 50% larger uncompressed cache,
* the naive two-tag strawman is the weakest compressed design.
"""

import pytest

from repro.sim.config import (
    BASE_VICTIM_2MB,
    BASELINE_2MB,
    TEST,
    TWO_TAG_2MB,
    UNCOMPRESSED_3MB,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import geomean, ipc_ratio
from repro.workloads.suite import friendly_specs, poor_specs

#: Small representative sample: friendly + poor traces across categories.
FRIENDLY_SAMPLE = ["lbm.1", "mcf.1", "sysmark.1", "octane.1", "speech.1", "gcc.1"]
POOR_SAMPLE = ["milc.3", "mcf.4", "winrar.2", "3dmark.4"]


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(TEST, cache_dir=tmp_path_factory.mktemp("cache"))


@pytest.fixture(scope="module")
def baseline_runs(runner):
    return {
        name: runner.run_single(BASELINE_2MB, name)
        for name in FRIENDLY_SAMPLE + POOR_SAMPLE
    }


class TestGuarantee:
    def test_reads_never_exceed_baseline(self, runner, baseline_runs):
        for name, base in baseline_runs.items():
            bv = runner.run_single(BASE_VICTIM_2MB, name)
            assert bv.memory_reads <= base.memory_reads, name

    def test_misses_never_exceed_baseline(self, runner, baseline_runs):
        for name, base in baseline_runs.items():
            bv = runner.run_single(BASE_VICTIM_2MB, name)
            assert bv.llc_misses <= base.llc_misses, name

    def test_sample_names_are_classified_correctly(self):
        friendly = {spec.name for spec in friendly_specs()}
        poor = {spec.name for spec in poor_specs()}
        assert set(FRIENDLY_SAMPLE) <= friendly
        assert set(POOR_SAMPLE) <= poor


class TestShapes:
    def test_friendly_gains_exceed_poor(self, runner, baseline_runs):
        friendly = geomean(
            ipc_ratio(runner.run_single(BASE_VICTIM_2MB, n), baseline_runs[n])
            for n in FRIENDLY_SAMPLE
        )
        poor = geomean(
            ipc_ratio(runner.run_single(BASE_VICTIM_2MB, n), baseline_runs[n])
            for n in POOR_SAMPLE
        )
        assert friendly > poor
        assert friendly > 1.0
        assert poor > 0.97  # no meaningful loss even without compressibility

    def test_base_victim_tracks_3mb_cache(self, runner, baseline_runs):
        names = FRIENDLY_SAMPLE
        bv = geomean(
            ipc_ratio(runner.run_single(BASE_VICTIM_2MB, n), baseline_runs[n])
            for n in names
        )
        big = geomean(
            ipc_ratio(runner.run_single(UNCOMPRESSED_3MB, n), baseline_runs[n])
            for n in names
        )
        assert abs(bv - big) < 0.12

    def test_victim_hits_materialise_on_friendly_traces(self, runner):
        hits = sum(
            runner.run_single(BASE_VICTIM_2MB, n).llc_victim_hits
            for n in FRIENDLY_SAMPLE
        )
        assert hits > 0

    def test_naive_twotag_weakest_compressed_design(self, runner, baseline_runs):
        names = FRIENDLY_SAMPLE + POOR_SAMPLE
        tt = geomean(
            ipc_ratio(runner.run_single(TWO_TAG_2MB, n), baseline_runs[n])
            for n in names
        )
        bv = geomean(
            ipc_ratio(runner.run_single(BASE_VICTIM_2MB, n), baseline_runs[n])
            for n in names
        )
        assert tt < bv

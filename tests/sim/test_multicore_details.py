"""Detailed tests of the multi-program driver's semantics."""

import pytest

from repro.sim.config import BASELINE_2MB, TEST
from repro.sim.multi_core import _THREAD_STRIDE, simulate_mix
from repro.workloads.mixes import MixSpec
from repro.workloads.suite import TraceSuite


@pytest.fixture(scope="module")
def suite():
    return TraceSuite(TEST.reference_llc_lines, TEST.trace_length)


class TestMeasurementWindow:
    def test_measured_instructions_equal_trace_instructions(self, suite):
        """Threads wrap after finishing, but measurement freezes at the
        first completion (Section V's methodology)."""
        mix = MixSpec("m", ("mcf.1", "omnetpp.1", "gcc.1", "sjeng.1"))
        result = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        for thread in result.thread_results:
            trace = suite.trace(thread.trace)
            assert thread.instructions == trace.instructions

    def test_all_threads_report_positive_cycles(self, suite):
        mix = MixSpec("m", ("mcf.1", "mcf.2", "speech.1", "octane.1"))
        result = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        for thread in result.thread_results:
            assert thread.cycles > 0
            assert 0 < thread.ipc < 4.0  # bounded by the 4-wide core


class TestIsolation:
    def test_thread_offsets_do_not_collide(self):
        # Four threads' address spaces must stay disjoint even for the
        # largest paper-scale footprints (millions of lines).
        assert _THREAD_STRIDE > (1 << 30)

    def test_identical_mix_runs_are_deterministic(self, suite):
        mix = MixSpec("m", ("gcc.1", "gcc.2", "astar.1", "gobmk.1"))
        a = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        b = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        assert a.to_dict() == b.to_dict()

    def test_mix_order_changes_results_but_not_validity(self, suite):
        forward = MixSpec("f", ("mcf.1", "gcc.1", "speech.1", "octane.1"))
        reverse = MixSpec("r", ("octane.1", "speech.1", "gcc.1", "mcf.1"))
        a = simulate_mix(forward, BASELINE_2MB, TEST, suite)
        b = simulate_mix(reverse, BASELINE_2MB, TEST, suite)
        # Same trace measured in both mixes: similar but not necessarily
        # identical IPC (different thread offsets, interleaving).
        ipc_a = {t.trace: t.ipc for t in a.thread_results}
        ipc_b = {t.trace: t.ipc for t in b.thread_results}
        for name in ipc_a:
            assert ipc_b[name] == pytest.approx(ipc_a[name], rel=0.5)


class TestSharedState:
    def test_shared_llc_sees_all_threads(self, suite):
        mix = MixSpec("m", ("mcf.1", "gcc.1", "speech.1", "octane.1"))
        result = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        total_thread_lookups = sum(
            t.llc_hits + t.llc_misses for t in result.thread_results
        )
        assert result.llc_hits + result.llc_misses == total_thread_lookups

    def test_aggregate_traffic_sums_threads(self, suite):
        mix = MixSpec("m", ("mcf.1", "gcc.1", "speech.1", "octane.1"))
        result = simulate_mix(mix, BASELINE_2MB, TEST, suite)
        assert result.memory_reads == sum(
            t.memory_reads for t in result.thread_results
        )

"""Multi-process concurrency tests for the shared result cache.

The tentpole invariant: any number of ``repro`` processes may share one
cache directory, and however their sweeps overlap, the surviving cache
file is byte-identical to what one clean serial run would have written.
These tests drive real subprocesses through the real CLI — the same
code path two terminals or two CI jobs would take.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.experiment import CACHE_DIR_ENV
from repro.sim.faultinject import FAULTS_DIR_ENV, FAULTS_ENV, LOCK_HOLDER_EXIT
from repro.sim.resultcache import scan_cache_file

#: Tiny sweep (2 traces x 2 machines on the test preset) — the CI box
#: may have a single CPU, so keep every subprocess cheap.
SWEEP = ("sweep", "--preset", "test", "--trace", "sjeng.1", "--trace", "mcf.1")


def _env(cache_dir: Path, **extra: str) -> dict[str, str]:
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env[CACHE_DIR_ENV] = str(cache_dir)
    env.pop(FAULTS_ENV, None)
    env.pop(FAULTS_DIR_ENV, None)
    env.update(extra)
    return env


def _repro(args: tuple[str, ...], env: dict[str, str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _cache_file(directory: Path) -> Path:
    [path] = directory.glob("results-v*.jsonl")
    return path


class TestConcurrentSweeps:
    def test_two_overlapping_sweeps_match_serial_byte_for_byte(self, tmp_path):
        serial_dir = tmp_path / "serial"
        shared_dir = tmp_path / "shared"

        reference = _repro(SWEEP + ("--jobs", "1"), _env(serial_dir))
        assert reference.wait(timeout=300) == 0, reference.stderr.read()

        first = _repro(SWEEP + ("--jobs", "2"), _env(shared_dir))
        second = _repro(SWEEP + ("--jobs", "2"), _env(shared_dir))
        out_first = first.communicate(timeout=300)
        out_second = second.communicate(timeout=300)
        assert first.returncode == 0, out_first[1]
        assert second.returncode == 0, out_second[1]

        serial_bytes = _cache_file(serial_dir).read_bytes()
        assert _cache_file(shared_dir).read_bytes() == serial_bytes
        assert scan_cache_file(_cache_file(shared_dir)).clean

    def test_serial_and_parallel_writers_interleave_safely(self, tmp_path):
        """A --jobs 1 appender and a --jobs 2 merger sharing one cache."""
        serial_dir = tmp_path / "serial"
        shared_dir = tmp_path / "shared"

        reference = _repro(SWEEP + ("--jobs", "1"), _env(serial_dir))
        assert reference.wait(timeout=300) == 0

        first = _repro(SWEEP + ("--jobs", "1"), _env(shared_dir))
        second = _repro(SWEEP + ("--jobs", "2"), _env(shared_dir))
        _, first_err = first.communicate(timeout=300)
        _, second_err = second.communicate(timeout=300)
        assert first.returncode == 0, first_err
        assert second.returncode == 0, second_err

        # No line may be torn or checksum-broken, and the entries must
        # match the serial reference.  A serial appender that started
        # before the merger landed may legitimately re-append keys it
        # computed before the other writer's results hit disk — those
        # duplicates are benign (simulations are deterministic, so the
        # values are identical and last-wins changes nothing) and the
        # next merge or `repro cache migrate` scrubs them.
        from repro.sim.resultcache import load_cache_entries, migrate_cache_dir

        report = scan_cache_file(_cache_file(shared_dir))
        assert report.clean
        assert load_cache_entries(_cache_file(shared_dir)) == load_cache_entries(
            _cache_file(serial_dir)
        )
        migrate_cache_dir(shared_dir)
        report = scan_cache_file(_cache_file(shared_dir))
        assert report.clean and report.duplicate_keys == 0


class TestLockHolderDeath:
    def test_killed_lock_holder_does_not_wedge_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run = ("run", "--trace", "sjeng.1", "--preset", "test")

        victim = _repro(
            run,
            _env(
                cache_dir,
                **{
                    FAULTS_ENV: "lock-holder-dies:0:1",
                    FAULTS_DIR_ENV: str(tmp_path / "stamps"),
                },
            ),
        )
        victim.communicate(timeout=300)
        assert victim.returncode == LOCK_HOLDER_EXIT  # died holding the lock

        # The kernel released the flock with the process; a clean rerun
        # must acquire it promptly (no stale-pidfile wedge) and succeed.
        rerun = _repro(run, _env(cache_dir, REPRO_LOCK_TIMEOUT="30"))
        out, err = rerun.communicate(timeout=300)
        assert rerun.returncode == 0, err
        assert "IPC" in out
        assert scan_cache_file(_cache_file(cache_dir)).clean


@pytest.mark.parametrize("command", [("cache", "verify"), ("cache", "migrate")])
def test_cache_tools_run_via_module_entrypoint(tmp_path, command):
    """`repro cache ...` works end to end against an empty directory."""
    proc = _repro(command + ("--cache-dir", str(tmp_path)), _env(tmp_path))
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err
    assert "no cache files" in out

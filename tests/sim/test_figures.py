"""Tests for figure export helpers."""

import csv

import pytest

from repro.sim.figures import ascii_series_plot, write_rows_csv, write_series_csv


class TestAsciiPlot:
    def test_contains_title_and_legend(self):
        plot = ascii_series_plot(
            {"bv": {"a": 1.1, "b": 0.9, "c": 1.3}}, "Figure X"
        )
        assert plot.startswith("Figure X")
        assert "*=bv" in plot

    def test_baseline_reference_line_present(self):
        plot = ascii_series_plot({"s": {"a": 1.5, "b": 2.0}}, "t")
        assert "-" in plot

    def test_multiple_series_use_distinct_glyphs(self):
        plot = ascii_series_plot(
            {"one": {"a": 1.0, "b": 1.2}, "two": {"a": 0.8, "b": 1.6}}, "t"
        )
        assert "*=one" in plot and "o=two" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series_plot({}, "t")

    def test_axis_labels_span_data(self):
        plot = ascii_series_plot({"s": {"a": 0.5, "b": 2.0}}, "t")
        assert "2.000" in plot
        assert "0.500" in plot


class TestCSV:
    def test_series_csv_roundtrip(self, tmp_path):
        path = tmp_path / "series.csv"
        write_series_csv(
            path, {"bv": {"t1": 1.1, "t2": 0.9}, "big": {"t1": 1.2}}
        )
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["trace", "bv", "big"]
        assert rows[1][0] == "t1"
        assert rows[2] == ["t2", "0.9", ""]

    def test_rows_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_rows_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "x.csv", {})

"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_traces_flags(self):
        args = build_parser().parse_args(["list-traces", "--sensitive"])
        assert args.sensitive

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--trace", "mcf.1"])
        assert args.preset == "bench"
        assert args.machine == "base-victim"
        assert args.jobs is None  # defer to $REPRO_JOBS / serial default

    def test_jobs_flag_everywhere(self):
        for command in (
            ["run", "--trace", "mcf.1"],
            ["compare", "--trace", "mcf.1"],
            ["stats", "--trace", "mcf.1"],
            ["export"],
        ):
            args = build_parser().parse_args(command + ["--jobs", "4"])
            assert args.jobs == 4

    def test_stats_traces_accumulate(self):
        args = build_parser().parse_args(
            ["stats", "--trace", "mcf.1", "--trace", "lbm.1", "--json"]
        )
        assert args.traces == ["mcf.1", "lbm.1"]
        assert args.json
        assert not args.trace_events

    def test_retry_flags_everywhere(self):
        for command in (
            ["run", "--trace", "mcf.1"],
            ["compare", "--trace", "mcf.1"],
            ["stats", "--trace", "mcf.1"],
            ["export"],
            ["sweep"],
        ):
            args = build_parser().parse_args(
                command + ["--retries", "3", "--job-timeout", "2.5"]
            )
            assert args.retries == 3
            assert args.job_timeout == 2.5

    def test_retry_flags_default_to_env_deferral(self):
        args = build_parser().parse_args(["sweep"])
        assert args.retries is None  # defer to $REPRO_RETRIES
        assert args.job_timeout is None  # defer to $REPRO_JOB_TIMEOUT

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--preset", "test", "--trace", "mcf.1", "--trace",
             "sjeng.1", "--resume", "--strict", "--jobs", "2"]
        )
        assert args.preset == "test"
        assert args.traces == ["mcf.1", "sjeng.1"]
        assert args.resume
        assert args.strict
        assert args.jobs == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.preset == "bench"
        assert not args.resume
        assert not args.strict
        assert not args.all_traces
        assert args.traces is None


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.preset == "bench"
        assert args.socket is None and args.tcp is None
        assert args.max_queue == 1024
        assert args.client_quota == 256
        assert args.jobs is None  # defer to $REPRO_JOBS / serial default

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--preset",
                "test",
                "--tcp",
                "127.0.0.1:9000",
                "--max-queue",
                "8",
                "--client-quota",
                "2",
                "--jobs",
                "4",
            ]
        )
        assert args.tcp == "127.0.0.1:9000"
        assert args.max_queue == 8
        assert args.client_quota == 2

    def test_submit_traces_accumulate(self):
        args = build_parser().parse_args(
            ["submit", "--trace", "mcf.1", "--trace", "lbm.1", "--sweep", "--wait"]
        )
        assert args.traces == ["mcf.1", "lbm.1"]
        assert args.sweep and args.wait and not args.json

    def test_submit_requires_a_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_submit_machine_flags_mirror_run(self):
        args = build_parser().parse_args(
            ["submit", "--trace", "mcf.1", "--machine", "uncompressed", "--ways", "8"]
        )
        assert args.machine == "uncompressed"
        assert args.ways == 8

    def test_serve_worker_flag(self):
        args = build_parser().parse_args(["serve", "--worker"])
        assert args.worker
        assert not build_parser().parse_args(["serve"]).worker

    def test_serve_status_flags(self):
        args = build_parser().parse_args(
            ["serve-status", "--json", "--socket", "/tmp/x.sock", "--timeout", "5"]
        )
        assert args.json and args.socket == "/tmp/x.sock"
        assert args.timeout == 5.0

    def test_submit_sweep_expands_machine_pair(self):
        from repro.cli import _submit_jobs_from_args

        args = build_parser().parse_args(
            ["submit", "--trace", "mcf.1", "--trace", "lbm.1", "--sweep"]
        )
        jobs = _submit_jobs_from_args(args)
        assert len(jobs) == 4  # 2 machines x 2 traces
        assert {job["machine"]["arch"] for job in jobs} == {
            "uncompressed",
            "base-victim",
        }

    def test_submit_single_machine_jobs(self):
        from repro.cli import _submit_jobs_from_args

        args = build_parser().parse_args(
            ["submit", "--trace", "mcf.1", "--machine", "uncompressed"]
        )
        jobs = _submit_jobs_from_args(args)
        assert [job["machine"]["arch"] for job in jobs] == ["uncompressed"]


class TestDispatchParser:
    def test_dispatch_defaults(self):
        from repro.dist.coordinator import (
            DEFAULT_LEASE_SIZE,
            DEFAULT_WORKER_RETRIES,
        )

        args = build_parser().parse_args(["dispatch"])
        assert args.preset == "bench"
        assert args.workers is None and args.worker_specs == []
        assert args.lease_size == DEFAULT_LEASE_SIZE
        assert args.worker_retries == DEFAULT_WORKER_RETRIES
        assert not args.strict and not args.json
        assert args.timeout is None

    def test_dispatch_crash_safety_defaults(self):
        from repro.dist.coordinator import (
            DEFAULT_FOLD_EVERY,
            DEFAULT_HEARTBEAT_INTERVAL,
        )

        args = build_parser().parse_args(["dispatch"])
        assert args.fold_every == DEFAULT_FOLD_EVERY
        assert args.heartbeat == DEFAULT_HEARTBEAT_INTERVAL
        assert args.heartbeat_deadline is None
        assert not args.resume
        assert args.redispatch == 0

    def test_dispatch_crash_safety_flags(self):
        args = build_parser().parse_args(
            ["dispatch", "--fold-every", "4", "--heartbeat", "0.3",
             "--heartbeat-deadline", "1", "--resume", "--redispatch", "2"]
        )
        assert args.fold_every == 4
        assert args.heartbeat == 0.3
        assert args.heartbeat_deadline == 1.0
        assert args.resume
        assert args.redispatch == 2

    def test_dispatch_spawned_fleet_flags(self):
        args = build_parser().parse_args(
            ["dispatch", "--preset", "test", "--trace", "mcf.1",
             "--workers", "3", "--lease-size", "2", "--worker-retries", "1",
             "--strict", "--json", "--timeout", "30"]
        )
        assert args.workers == 3
        assert args.traces == ["mcf.1"]
        assert args.lease_size == 2 and args.worker_retries == 1
        assert args.strict and args.json and args.timeout == 30.0

    def test_dispatch_worker_specs_accumulate(self):
        args = build_parser().parse_args(
            ["dispatch", "--worker", "tcp:10.0.0.2:7700",
             "--worker", "/tmp/fwd/serve.sock"]
        )
        assert args.worker_specs == ["tcp:10.0.0.2:7700", "/tmp/fwd/serve.sock"]

    def test_dispatch_shares_the_sweep_worker_flags(self):
        args = build_parser().parse_args(
            ["dispatch", "--jobs", "4", "--retries", "2",
             "--job-timeout", "9", "--lock-timeout", "5"]
        )
        assert args.jobs == 4 and args.retries == 2
        assert args.job_timeout == 9.0 and args.lock_timeout == 5.0


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "bench_fig08_basevictim.py" in out

    def test_list_traces(self, capsys):
        assert main(["list-traces"]) == 0
        out = capsys.readouterr().out
        assert "100 traces" in out
        assert "mcf.1" in out

    def test_list_traces_sensitive(self, capsys):
        assert main(["list-traces", "--sensitive"]) == 0
        assert "60 traces" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "7.3%" in out
        assert "8.5%" in out

    def test_run_single_trace(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "--trace", "sjeng.1", "--preset", "test"]) == 0
        out = capsys.readouterr().out
        assert "IPC:" in out
        assert "victim hits:" in out

    def test_compare(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["compare", "--trace", "sjeng.1", "--preset", "test"]) == 0
        out = capsys.readouterr().out
        assert "base-victim" in out
        assert "uncompressed" in out

    def test_stats_text_mode(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["stats", "--trace", "sjeng.1", "--preset", "test"]) == 0
        out = capsys.readouterr().out
        assert "hit/miss breakdown" in out
        assert "victim-cache occupancy" in out
        assert "partner victimizations" in out
        assert "wall time by phase" in out

    def test_stats_json_mode(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(
            ["stats", "--trace", "sjeng.1", "--trace", "mcf.1", "--preset", "test", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload["traces"]) == ["mcf.1", "sjeng.1"]
        merged = payload["merged"]
        for key in (
            "llc/victim_occupancy",
            "llc/partner_evictions",
            "codec/bdi/size_bytes",
            "hits/llc_victim",
        ):
            assert key in merged
        assert all(metric["kind"] != "timer" for metric in merged.values())
        assert payload["timers"]  # live wall-time is reported separately

    def test_malformed_repro_jobs_is_a_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main(["run", "--trace", "sjeng.1", "--preset", "test"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "REPRO_JOBS" in err

    def test_sweep_healthy(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(
            ["sweep", "--preset", "test", "--trace", "sjeng.1", "--jobs", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "recomputed: 2 cells" in out
        assert "failed: 0 cells" in out
        assert "retries: 0" in out
        # A second run recovers everything from cache.
        assert main(
            ["sweep", "--preset", "test", "--trace", "sjeng.1", "--jobs", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovered from cache: 2 cells" in out
        assert "recomputed: 0 cells" in out

    def test_sweep_health_line_records_engine(self, capsys, tmp_path, monkeypatch):
        """--engine exports $REPRO_ENGINE (inherited by sweep workers) and
        the health line records the resolved engine, so sweep logs can
        never be silently compared across engines."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert main(
            [
                "sweep", "--preset", "test", "--trace", "sjeng.1",
                "--jobs", "1", "--engine", "traced",
            ]
        ) == 0
        assert "engine: traced" in capsys.readouterr().out
        assert os.environ["REPRO_ENGINE"] == "traced"

    def test_sweep_resume_reports_salvage(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(
            ["sweep", "--preset", "test", "--trace", "sjeng.1", "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "salvaged from orphan shards: 0 cells" in out
        assert "recomputed " in out

    def test_stats_reports_corrupt_line_count(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["stats", "--trace", "sjeng.1", "--preset", "test"]) == 0
        capsys.readouterr()
        cache_file = next(tmp_path.glob("results-v*.jsonl"))
        with cache_file.open("a") as handle:
            handle.write('{"torn line\n')
        with pytest.warns(Warning):
            assert main(["stats", "--trace", "sjeng.1", "--preset", "test"]) == 0
        assert "corrupt cache lines skipped: 1" in capsys.readouterr().out

    def test_compare_parallel_matches_serial(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        assert main(["compare", "--trace", "sjeng.1", "--preset", "test", "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        assert main(["compare", "--trace", "sjeng.1", "--preset", "test", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out


class TestLockAndValidationFlags:
    def test_lock_timeout_flag_everywhere(self):
        for command in (
            ["run", "--trace", "mcf.1"],
            ["compare", "--trace", "mcf.1"],
            ["stats", "--trace", "mcf.1"],
            ["export"],
            ["sweep"],
            ["cache", "migrate"],
        ):
            args = build_parser().parse_args(command + ["--lock-timeout", "5"])
            assert args.lock_timeout == 5.0

    def test_lock_timeout_defaults_to_env_deferral(self):
        args = build_parser().parse_args(["sweep"])
        assert args.lock_timeout is None  # defer to $REPRO_LOCK_TIMEOUT

    def test_cache_subcommand_parses(self):
        args = build_parser().parse_args(["cache", "verify", "--strict"])
        assert args.command == "cache"
        assert args.cache_command == "verify"
        assert args.strict
        args = build_parser().parse_args(
            ["cache", "migrate", "--cache-dir", "/tmp/x"]
        )
        assert args.cache_command == "migrate"
        assert args.cache_dir == "/tmp/x"
        args = build_parser().parse_args(
            ["cache", "canonicalize", "--lock-timeout", "5"]
        )
        assert args.cache_command == "canonicalize"
        assert args.lock_timeout == 5.0

    def test_cache_requires_an_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_unknown_policy_is_a_structured_cli_error(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(
            ["run", "--trace", "sjeng.1", "--preset", "test", "--policy", "mru"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "policy" in err and "'mru'" in err
        assert "valid choices" in err and "nru" in err

    def test_unknown_victim_policy_is_rejected_eagerly(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(
            ["run", "--trace", "sjeng.1", "--preset", "test",
             "--victim-policy", "bogus"]
        )
        assert code == 2
        assert "victim_policy" in capsys.readouterr().err


class TestCacheCommands:
    @staticmethod
    def _seed_cache(tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "--trace", "sjeng.1", "--preset", "test"]) == 0
        return next(tmp_path.glob("results-v*.jsonl"))

    def test_verify_clean_cache(self, capsys, tmp_path, monkeypatch):
        self._seed_cache(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "results-v5-test.jsonl" in out
        assert "0 with rejected lines" in out

    def test_verify_strict_fails_on_flipped_bit(self, capsys, tmp_path, monkeypatch):
        cache_file = self._seed_cache(tmp_path, monkeypatch)
        raw = bytearray(cache_file.read_bytes())
        raw[20] ^= 0x04
        cache_file.write_bytes(bytes(raw))
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert main(
            ["cache", "verify", "--cache-dir", str(tmp_path), "--strict"]
        ) == 1
        assert "verification failed" in capsys.readouterr().err

    def test_verify_empty_directory(self, capsys, tmp_path):
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "no cache files" in capsys.readouterr().out

    def test_migrate_upgrades_v4_and_is_idempotent(self, capsys, tmp_path, monkeypatch):
        import json as _json

        from repro.sim.resultcache import load_cache_entries

        cache_file = self._seed_cache(tmp_path, monkeypatch)
        entries = load_cache_entries(cache_file)
        legacy = tmp_path / "results-v4-test.jsonl"
        legacy.write_text(
            "".join(
                _json.dumps({"key": key, "result": result}) + "\n"
                for key, result in entries.items()
            )
        )
        cache_file.unlink()  # only the v4 file remains
        capsys.readouterr()
        assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "results-v4-test.jsonl -> results-v5-test.jsonl" in out
        assert not legacy.exists()
        assert load_cache_entries(tmp_path / "results-v5-test.jsonl") == entries
        # Second migrate: everything already clean.
        assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        assert "already clean" in capsys.readouterr().out

    def test_canonicalize_sorts_and_is_idempotent(self, capsys, tmp_path, monkeypatch):
        from repro.sim.resultcache import load_cache_entries

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # Two runs in reverse-key-friendly order: write order != key order.
        assert main(["run", "--trace", "sjeng.1", "--preset", "test"]) == 0
        assert main(["run", "--trace", "astar.1", "--preset", "test"]) == 0
        cache_file = next(tmp_path.glob("results-v*.jsonl"))
        entries = load_cache_entries(cache_file)
        capsys.readouterr()

        assert main(["cache", "canonicalize", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "canonical (2 entries)" in out
        canonical = cache_file.read_bytes()
        keys = list(load_cache_entries(cache_file))
        assert keys == sorted(keys)  # key-sorted on disk
        assert load_cache_entries(cache_file) == entries  # nothing lost
        # Idempotent: a second pass rewrites identical bytes.
        assert main(["cache", "canonicalize", "--cache-dir", str(tmp_path)]) == 0
        assert cache_file.read_bytes() == canonical

    def test_canonicalize_empty_directory(self, capsys, tmp_path):
        assert main(["cache", "canonicalize", "--cache-dir", str(tmp_path)]) == 0
        assert "no cache files" in capsys.readouterr().out

    def test_v4_cache_is_read_transparently_without_migration(
        self, capsys, tmp_path, monkeypatch
    ):
        """An un-migrated v4 cache still serves hits (counted as migrated
        lines in the health counters)."""
        import json as _json

        from repro.sim.resultcache import load_cache_entries

        cache_file = self._seed_cache(tmp_path, monkeypatch)
        entries = load_cache_entries(cache_file)
        legacy = tmp_path / "results-v4-test.jsonl"
        legacy.write_text(
            "".join(
                _json.dumps({"key": key, "result": result}) + "\n"
                for key, result in entries.items()
            )
        )
        cache_file.unlink()
        capsys.readouterr()
        assert main(
            ["stats", "--trace", "sjeng.1", "--preset", "test", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["cache/migrated_lines"] >= 1
        # Served from the legacy file: no new v5 file full of recomputes.
        assert legacy.exists()

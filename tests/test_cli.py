"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_traces_flags(self):
        args = build_parser().parse_args(["list-traces", "--sensitive"])
        assert args.sensitive

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--trace", "mcf.1"])
        assert args.preset == "bench"
        assert args.machine == "base-victim"


class TestCommands:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "bench_fig08_basevictim.py" in out

    def test_list_traces(self, capsys):
        assert main(["list-traces"]) == 0
        out = capsys.readouterr().out
        assert "100 traces" in out
        assert "mcf.1" in out

    def test_list_traces_sensitive(self, capsys):
        assert main(["list-traces", "--sensitive"]) == 0
        assert "60 traces" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "7.3%" in out
        assert "8.5%" in out

    def test_run_single_trace(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "--trace", "sjeng.1", "--preset", "test"]) == 0
        out = capsys.readouterr().out
        assert "IPC:" in out
        assert "victim hits:" in out

    def test_compare(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["compare", "--trace", "sjeng.1", "--preset", "test"]) == 0
        out = capsys.readouterr().out
        assert "base-victim" in out
        assert "uncompressed" in out

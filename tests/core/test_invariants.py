"""Property-based structural invariants of the Base-Victim LLC.

The paper's headline guarantee (Section IV) is *structural*: the
Baseline Cache is managed exactly like an uncompressed cache, so for any
access stream and any replacement policy the Base-Victim hit rate is at
least the uncompressed cache's.  These tests drive both caches with ~50
seeded random traces spanning mixed read/write ratios, footprints and
compressed-size distributions and assert, per access, that no hit of the
uncompressed cache is ever missed by Base-Victim — across LRU, NRU and
SRRIP — plus the companion invariant that Victim Cache lines are always
clean (which is what makes every victim eviction silent).
"""

from __future__ import annotations

import random

import pytest

from repro.cache.config import CacheGeometry
from repro.cache.replacement import make_policy, make_victim_policy
from repro.compression.segments import SegmentGeometry
from repro.core.basevictim import BaseVictimLLC
from repro.core.interfaces import AccessKind
from repro.core.uncompressed import UncompressedLLC

#: 8-byte segments, as in the paper's worked examples.
SEGMENTS = SegmentGeometry(64, 8)

#: Paper Figure 10 policies the guarantee must hold under.
POLICIES = ("lru", "nru", "srrip")

NUM_TRACES = 50
ACCESSES_PER_TRACE = 500


def random_trace(seed: int) -> list[tuple[int, int, int]]:
    """One seeded random trace: (addr, kind, size_segments) triples.

    Each seed draws its own write ratio (0..60%), footprint (spanning
    L2-fit through 10x-capacity behaviour for the 4x4 test geometry) and
    per-line compressed-size palette; writes occasionally change a
    line's compressed size, as real stores do.
    """
    rng = random.Random(0xB5EC + seed)
    write_fraction = rng.uniform(0.0, 0.6)
    footprint = rng.randrange(8, 160)
    sizes = [rng.randrange(SEGMENTS.segments_per_line + 1) for _ in range(footprint)]
    ops: list[tuple[int, int, int]] = []
    for _ in range(ACCESSES_PER_TRACE):
        addr = rng.randrange(footprint)
        if rng.random() < write_fraction:
            kind = AccessKind.WRITE
            if rng.random() < 0.3:  # the store changed the data
                sizes[addr] = rng.randrange(SEGMENTS.segments_per_line + 1)
        else:
            kind = AccessKind.READ
        ops.append((addr, kind, sizes[addr]))
    return ops


def make_pair(policy_name: str) -> tuple[BaseVictimLLC, UncompressedLLC]:
    geometry = CacheGeometry(4 * 4 * 64, 4)  # 4 sets x 4 ways
    bv = BaseVictimLLC(
        geometry,
        make_policy(policy_name),
        make_victim_policy("ecm"),
        SEGMENTS,
    )
    shadow = UncompressedLLC(geometry, make_policy(policy_name))
    return bv, shadow


@pytest.mark.parametrize("policy_name", POLICIES)
def test_hit_rate_never_below_uncompressed(policy_name):
    """Base-Victim hits >= uncompressed hits, per access and in total."""
    for seed in range(NUM_TRACES):
        bv, shadow = make_pair(policy_name)
        bv_hits = shadow_hits = 0
        for step, (addr, kind, size) in enumerate(random_trace(seed)):
            bv_result = bv.access(addr, kind, size)
            shadow_result = shadow.access(addr, kind, size)
            bv_hits += bv_result.hit
            shadow_hits += shadow_result.hit
            assert bv_result.hit or not shadow_result.hit, (
                f"policy={policy_name} seed={seed} step={step}: "
                f"uncompressed hit line {addr:#x} but Base-Victim missed it"
            )
        assert bv_hits >= shadow_hits
        bv.check_invariants()


@pytest.mark.parametrize("policy_name", POLICIES)
def test_baseline_image_mirrors_uncompressed(policy_name):
    """The tag-0 image equals the uncompressed cache's contents exactly."""
    for seed in range(0, NUM_TRACES, 5):
        bv, shadow = make_pair(policy_name)
        for addr, kind, size in random_trace(seed):
            bv.access(addr, kind, size)
            shadow.access(addr, kind, size)
        for index in range(bv.geometry.num_sets):
            assert sorted(bv.baseline_set_contents(index)) == sorted(
                shadow.cache.set_contents(index)
            ), f"policy={policy_name} seed={seed}: baseline image diverged"


@pytest.mark.parametrize("policy_name", POLICIES)
def test_victim_lines_are_always_clean(policy_name):
    """No dirty line may ever sit in the Victim Cache (inclusive mode)."""
    for seed in range(NUM_TRACES):
        bv, _ = make_pair(policy_name)
        for addr, kind, size in random_trace(seed):
            bv.access(addr, kind, size)
        for cset in bv._sets:
            for way, valid in enumerate(cset.vict_valid):
                if valid:
                    assert not cset.vict_dirty[way], (
                        f"policy={policy_name} seed={seed}: dirty victim line "
                        f"{cset.vict_tags[way]:#x}"
                    )
        bv.check_invariants()

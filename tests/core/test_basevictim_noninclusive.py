"""Tests for the Section IV.B.3 non-inclusive (dirty-victim) variant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheGeometry
from repro.cache.replacement import LRUPolicy, make_victim_policy
from repro.compression.segments import SegmentGeometry
from repro.core.basevictim import BaseVictimLLC
from repro.core.interfaces import AccessKind
from repro.core.uncompressed import UncompressedLLC

EXAMPLE_SEGMENTS = SegmentGeometry(64, 8)


def make_bv(ways=2, sets=1, clean=False):
    geometry = CacheGeometry(sets * ways * 64, ways)
    return BaseVictimLLC(
        geometry,
        LRUPolicy(),
        make_victim_policy("ecm"),
        EXAMPLE_SEGMENTS,
        clean_victims=clean,
    )


class TestDirtyDemotion:
    def test_demotion_keeps_dirty_without_writeback(self):
        bv = make_bv()
        bv.access(1, AccessKind.WRITE, 2)
        bv.access(2, AccessKind.READ, 2)
        r = bv.access(3, AccessKind.READ, 2)  # demotes dirty line 1
        assert bv.in_victim(1)
        assert r.memory_writes == 0, "dirty demotion defers the writeback"

    def test_dirty_victim_eviction_writes_back(self):
        bv = make_bv()
        bv.access(1, AccessKind.WRITE, 2)
        bv.access(2, AccessKind.READ, 2)
        bv.access(3, AccessKind.READ, 2)  # 1 demoted dirty
        # Force eviction of the dirty victim by filling full-size lines.
        writes = 0
        for addr in (4, 5, 6):
            writes += bv.access(addr, AccessKind.READ, 8).memory_writes
        assert not bv.contains(1)
        assert writes >= 1, "evicting a dirty victim must reach memory"

    def test_dropped_dirty_demotion_writes_back(self):
        bv = make_bv()
        bv.access(1, AccessKind.WRITE, 8)  # incompressible dirty line
        bv.access(2, AccessKind.READ, 8)
        r = bv.access(3, AccessKind.READ, 8)  # 1 cannot be demoted anywhere
        assert not bv.contains(1)
        assert r.memory_writes == 1

    def test_promotion_carries_dirtiness(self):
        bv = make_bv()
        bv.access(1, AccessKind.WRITE, 2)
        bv.access(2, AccessKind.READ, 2)
        bv.access(3, AccessKind.READ, 2)  # 1 demoted dirty
        bv.access(1, AccessKind.READ, 2)  # promoted back
        cset = bv._sets[0]
        assert cset.base_dirty[cset.base_lookup[1]]

    def test_victim_write_hit_promotes_dirty(self):
        bv = make_bv()
        bv.access(1, AccessKind.READ, 2)
        bv.access(2, AccessKind.READ, 2)
        bv.access(3, AccessKind.READ, 2)  # 1 demoted clean
        r = bv.access(1, AccessKind.WRITE, 3)
        assert r.hit and r.victim_hit
        cset = bv._sets[0]
        way = cset.base_lookup[1]
        assert cset.base_dirty[way]
        assert cset.base_size[way] == 3


class TestCleanModeUnchanged:
    def test_clean_mode_never_holds_dirty_victims(self):
        bv = make_bv(clean=True)
        for addr in range(12):
            bv.access(addr, AccessKind.WRITE, 2)
        bv.check_invariants()

    def test_clean_mode_writes_back_at_demotion(self):
        bv = make_bv(clean=True)
        bv.access(1, AccessKind.WRITE, 2)
        bv.access(2, AccessKind.READ, 2)
        r = bv.access(3, AccessKind.READ, 2)
        assert r.memory_writes == 1


class TestTrafficTradeoff:
    def test_dirty_victims_reduce_memory_writes(self):
        """The variant's whole point: writebacks deferred and often avoided
        entirely when the line is promoted back before eviction."""
        geometry = CacheGeometry(4 * 4 * 64, 4)
        import random

        rng = random.Random(11)
        ops = [
            (rng.randrange(40), rng.random() < 0.5, rng.choice([2, 3, 4]))
            for _ in range(4000)
        ]
        totals = {}
        for clean in (True, False):
            llc = BaseVictimLLC(
                geometry,
                LRUPolicy(),
                make_victim_policy("ecm"),
                EXAMPLE_SEGMENTS,
                clean_victims=clean,
            )
            writes = 0
            for addr, is_write, size in ops:
                kind = AccessKind.WRITE if is_write else AccessKind.READ
                writes += llc.access(addr, kind, size).memory_writes
            llc.check_invariants()
            totals[clean] = writes
        assert totals[False] < totals[True]


@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 50),
            st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
            st.integers(0, 8),
        ),
        min_size=1,
        max_size=400,
    )
)
@settings(max_examples=100, deadline=None)
def test_noninclusive_keeps_hit_guarantee_and_invariants(ops):
    geometry = CacheGeometry(2 * 4 * 64, 4)
    bv = BaseVictimLLC(
        geometry,
        LRUPolicy(),
        make_victim_policy("ecm"),
        EXAMPLE_SEGMENTS,
        clean_victims=False,
    )
    shadow = UncompressedLLC(geometry, LRUPolicy())
    for addr, kind, size in ops:
        r1 = bv.access(addr, kind, size)
        r2 = shadow.access(addr, kind, size)
        if r2.hit:
            assert r1.hit
    bv.check_invariants()
    for index in range(geometry.num_sets):
        assert sorted(bv.baseline_set_contents(index)) == sorted(
            shadow.cache.set_contents(index)
        )

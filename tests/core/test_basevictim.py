"""Tests for the Base-Victim architecture (paper Section IV)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheGeometry
from repro.cache.replacement import (
    LRUPolicy,
    NRUPolicy,
    make_victim_policy,
)
from repro.compression.segments import SegmentGeometry
from repro.core.basevictim import BaseVictimLLC
from repro.core.interfaces import AccessKind
from repro.core.uncompressed import UncompressedLLC

#: 8-byte segments, as in the paper's worked examples (8 segments/line).
EXAMPLE_SEGMENTS = SegmentGeometry(64, 8)


def make_bv(ways=4, sets=1, policy=None, victim_policy="ecm", segments=EXAMPLE_SEGMENTS):
    geometry = CacheGeometry(sets * ways * 64, ways)
    return BaseVictimLLC(
        geometry, policy or LRUPolicy(), make_victim_policy(victim_policy), segments
    )


def fill(bv, addr, size, kind=AccessKind.READ):
    return bv.access(addr, kind, size)


class TestBasicPaths:
    def test_miss_then_base_hit(self):
        bv = make_bv()
        r = fill(bv, 1, 4)
        assert not r.hit and r.memory_reads == 1
        r = fill(bv, 1, 4)
        assert r.hit and not r.victim_hit

    def test_compressed_hit_flag(self):
        bv = make_bv()
        fill(bv, 1, 4)
        assert fill(bv, 1, 4).compressed_hit
        fill(bv, 2, 8)
        assert not fill(bv, 2, 8).compressed_hit  # uncompressed line
        fill(bv, 3, 0)
        assert not fill(bv, 3, 0).compressed_hit  # zero line: no decompression

    def test_replaced_line_demoted_to_victim_cache(self):
        bv = make_bv(ways=2)
        fill(bv, 1, 2)
        fill(bv, 2, 2)
        fill(bv, 3, 2)  # evicts LRU line 1 -> victim cache
        assert bv.in_victim(1)
        assert bv.contains(1)

    def test_victim_hit_promotes(self):
        bv = make_bv(ways=2)
        fill(bv, 1, 2)
        fill(bv, 2, 2)
        fill(bv, 3, 2)
        r = fill(bv, 1, 2)  # hits the victim cache
        assert r.hit and r.victim_hit
        assert bv.in_baseline(1)
        assert not bv.in_victim(1)

    def test_oversized_victim_is_dropped(self):
        bv = make_bv(ways=2)
        fill(bv, 1, 8)  # uncompressed: can never share a way
        fill(bv, 2, 8)
        fill(bv, 3, 8)  # evicts 1; 1 cannot fit anywhere
        assert not bv.contains(1)
        assert bv.stat_demotion_drops == 1

    def test_invariants_after_simple_sequence(self):
        bv = make_bv()
        for addr, size in [(1, 2), (2, 6), (3, 8), (4, 3), (5, 2), (1, 2)]:
            fill(bv, addr, size)
        bv.check_invariants()


class TestWritebackSemantics:
    def test_dirty_base_replacement_writes_back_once(self):
        bv = make_bv(ways=1)
        fill(bv, 1, 2, AccessKind.WRITE)
        r = fill(bv, 2, 2)
        assert r.memory_writes == 1  # the demoted dirty line
        assert bv.in_victim(1)

    def test_at_most_one_writeback_per_fill(self):
        """Section IV: one writeback per fill, unlike VSC's multi-evict."""
        bv = make_bv(ways=4)
        for addr in range(20):
            r = bv.access(addr, AccessKind.WRITE, 6)
            assert r.memory_writes <= 1

    def test_victim_lines_are_clean(self):
        bv = make_bv(ways=2)
        fill(bv, 1, 2, AccessKind.WRITE)
        fill(bv, 2, 2)
        fill(bv, 3, 2)  # demotes dirty line 1: must write back first
        assert bv.in_victim(1)
        # Its subsequent silent eviction produces no memory write.
        r = fill(bv, 4, 8)  # base way full line, evicts any victim partner
        for _ in range(5):
            r = fill(bv, 100 + _, 8)
            assert r.memory_writes == 0  # all victims clean, all lines clean

    def test_writeback_miss_bypasses_to_memory(self):
        bv = make_bv()
        r = bv.access(42, AccessKind.WRITEBACK, 4)
        assert not r.hit
        assert r.memory_writes == 1
        assert not bv.contains(42)

    def test_writeback_hit_updates_size_and_dirty(self):
        bv = make_bv(ways=2)
        fill(bv, 1, 2)
        r = bv.access(1, AccessKind.WRITEBACK, 7)
        assert r.hit
        cset = bv._sets[0]
        way = cset.base_lookup[1]
        assert cset.base_dirty[way]
        assert cset.base_size[way] == 7


class TestPartnerEviction:
    def test_growing_write_evicts_partner(self):
        """Section IV.B.5: a base line growing past the way drops its victim."""
        bv = make_bv(ways=2)
        fill(bv, 1, 4)
        fill(bv, 2, 4)
        fill(bv, 3, 4)  # line 1 demoted next to line 3 (4 + 4 = 8 fits)
        assert bv.in_victim(1)
        partner_way = bv._sets[0].vict_lookup[1]
        assert bv._sets[0].base_lookup[3] == partner_way
        r = bv.access(3, AccessKind.WRITE, 6)  # 6 + 4 > 8: partner must go
        assert r.silent_evictions == 1
        assert not bv.contains(1)

    def test_fill_evicts_nonfitting_victim_partner(self):
        bv = make_bv(ways=2)
        fill(bv, 1, 4)
        fill(bv, 2, 4)
        fill(bv, 3, 4)  # 1 demoted
        vict_way = bv._sets[0].vict_lookup[1]
        # Force a fill into that way with an 8-segment line.
        # LRU in baseline is line 2 or 3; keep filling until way reused.
        fill(bv, 4, 8)
        bv.check_invariants()

    def test_shrinking_write_keeps_partner(self):
        bv = make_bv(ways=2)
        fill(bv, 1, 4)
        fill(bv, 2, 4)
        fill(bv, 3, 4)
        way = bv._sets[0].vict_lookup[1]
        base_addr = bv._sets[0].base_tags[way]
        r = bv.access(base_addr, AccessKind.WRITE, 2)
        assert r.silent_evictions == 0
        assert bv.in_victim(1)


class TestFigure4MissExample:
    """Reproduces the Compressed LLC Miss example (Figure 4).

    Before: way 0: base A,2 / victim F,5; way 1: base C,3 / victim E,4;
            way 2: base D,6 / victim X,2; way 3: base B,5 / victim Y,3.
    LRU order: A (MRU), C, D, B (LRU).  Request Z (6 segments) misses.
    After: Z in base way 3; Y silently evicted; B inserted into the
    victim cache in a way that fits (ways 0 or 1; ECM picks way 1 since
    C=3 > A=2... both fit; paper's random example picks way 1).
    """

    def _build(self):
        bv = make_bv(ways=4, policy=LRUPolicy(), victim_policy="ecm")
        # Fill bases in LRU order B, D, C, A (B becomes LRU).
        fill(bv, 0xB, 5)
        fill(bv, 0xD, 6)
        fill(bv, 0xC, 3)
        fill(bv, 0xA, 2)
        # Place victims via direct state injection (the public fill path
        # cannot dictate way assignment).
        cset = bv._sets[0]
        way_of = {cset.base_tags[w]: w for w in range(4) if cset.base_valid[w]}
        for vaddr, vsize, base in [(0xF, 5, 0xA), (0xE, 4, 0xC), (0x10, 2, 0xD), (0x11, 3, 0xB)]:
            way = way_of[base]
            cset.vict_tags[way] = vaddr
            cset.vict_valid[way] = True
            cset.vict_size[way] = vsize
            cset.vict_lookup[vaddr] = way
        bv.check_invariants()
        return bv, way_of

    def test_miss_replaces_lru_and_keeps_baseline_exact(self):
        bv, way_of = self._build()
        r = bv.access(0x2, AccessKind.READ, 6)  # Z, 6 segments
        assert not r.hit
        # Z took B's way.
        assert bv._sets[0].base_lookup[0x2] == way_of[0xB]
        # Y (victim of B's way, 3 segs) cannot share with Z (6): silent evict.
        assert not bv.contains(0x11)
        # B was demoted into some fitting way: candidates were A's way
        # (2+5<=8) and C's way (3+5<=8); both occupied, ECM picks the
        # largest base partner: C's way.
        assert bv.in_victim(0xB)
        assert bv._sets[0].vict_lookup[0xB] == way_of[0xC]
        # E, the previous victim there, was silently evicted.
        assert not bv.contains(0xE)
        bv.check_invariants()


class TestFigure5VictimHitExample:
    """Reproduces the Victim Cache read hit example (Figure 5)."""

    def test_promotion_reuses_freed_space(self):
        bv = make_bv(ways=2, policy=LRUPolicy())
        # base B (5 segs, LRU) with victim Y (3); base A (2, MRU) + E (4).
        fill(bv, 0xB, 5)
        fill(bv, 0xA, 2)
        cset = bv._sets[0]
        way_b = cset.base_lookup[0xB]
        way_a = cset.base_lookup[0xA]
        cset.vict_tags[way_b] = 0x11  # Y
        cset.vict_valid[way_b] = True
        cset.vict_size[way_b] = 3
        cset.vict_lookup[0x11] = way_b
        cset.vict_tags[way_a] = 0xE
        cset.vict_valid[way_a] = True
        cset.vict_size[way_a] = 4
        cset.vict_lookup[0xE] = way_a
        bv.check_invariants()

        r = bv.access(0xE, AccessKind.READ, 4)  # E hits the victim cache
        assert r.hit and r.victim_hit
        # E promoted into B's (LRU) way.
        assert cset.base_lookup[0xE] == way_b
        # B demoted; E (4) + B (5) > 8, so B cannot stay in way_b; but
        # way_a's victim slot is now free and A (2) + B (5) fits.
        assert bv.in_victim(0xB)
        assert cset.vict_lookup[0xB] == way_a
        # Y did not fit with E (4+3 <= 8 actually fits! so Y stays).
        assert bv.in_victim(0x11)
        bv.check_invariants()


class TestGuarantee:
    """The headline guarantee: hit rate >= uncompressed, structurally."""

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 60),
                st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
                st.sampled_from([0, 2, 3, 5, 8]),
            ),
            min_size=1,
            max_size=400,
        ),
        policy_cls=st.sampled_from([LRUPolicy, NRUPolicy]),
    )
    @settings(max_examples=120, deadline=None)
    def test_baseline_mirrors_uncompressed_cache(self, ops, policy_cls):
        geometry = CacheGeometry(2 * 4 * 64, 4)  # 2 sets, 4 ways
        bv = BaseVictimLLC(
            geometry, policy_cls(), make_victim_policy("ecm"), EXAMPLE_SEGMENTS
        )
        shadow = UncompressedLLC(geometry, policy_cls())
        bv_hits = shadow_hits = 0
        for addr, kind, size in ops:
            r1 = bv.access(addr, kind, size)
            r2 = shadow.access(addr, kind, size)
            bv_hits += r1.hit
            shadow_hits += r2.hit
            if r2.hit:
                assert r1.hit, "a hit in the uncompressed cache must hit Base-Victim"
        assert bv_hits >= shadow_hits
        for index in range(geometry.num_sets):
            assert sorted(bv.baseline_set_contents(index)) == sorted(
                shadow.cache.set_contents(index)
            )
        bv.check_invariants()

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 40),
                st.sampled_from(
                    [AccessKind.READ, AccessKind.WRITE, AccessKind.PREFETCH]
                ),
                st.integers(0, 8),
            ),
            min_size=1,
            max_size=300,
        ),
        victim_policy=st.sampled_from(["ecm", "ecm-strict", "random", "lru", "mix"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_structural_invariants_hold_for_all_victim_policies(
        self, ops, victim_policy
    ):
        bv = make_bv(ways=4, sets=2, victim_policy=victim_policy)
        for addr, kind, size in ops:
            bv.access(addr, kind, size)
        bv.check_invariants()


class TestInputValidation:
    def test_size_out_of_range_rejected(self):
        bv = make_bv()
        with pytest.raises(ValueError):
            bv.access(1, AccessKind.READ, 9)  # 8-segment geometry
        with pytest.raises(ValueError):
            bv.access(1, AccessKind.READ, -1)

    def test_stats_accumulate(self):
        bv = make_bv(ways=2)
        fill(bv, 1, 2)
        fill(bv, 2, 2)
        fill(bv, 3, 2)
        fill(bv, 1, 2)  # victim hit
        assert bv.stat_misses == 3
        assert bv.stat_victim_hits == 1
        assert bv.stat_promotions == 1
        assert bv.stat_demotions >= 1

"""Tests for the VSC functional model and the uncompressed baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheGeometry
from repro.cache.replacement import NRUPolicy
from repro.compression.segments import SegmentGeometry
from repro.core.interfaces import AccessKind
from repro.core.uncompressed import UncompressedLLC
from repro.core.vsc import VSCFunctionalLLC

EXAMPLE_SEGMENTS = SegmentGeometry(64, 8)


def make_vsc(ways=4, sets=1):
    return VSCFunctionalLLC(CacheGeometry(sets * ways * 64, ways), EXAMPLE_SEGMENTS)


class TestVSCCapacity:
    def test_double_tags_with_half_lines(self):
        vsc = make_vsc(ways=4)
        for addr in range(8):
            vsc.access(addr, AccessKind.READ, 4)
        assert vsc.resident_logical_lines() == 8

    def test_tag_limit_enforced(self):
        vsc = make_vsc(ways=2)  # 4 tags, 16 segments
        for addr in range(6):
            vsc.access(addr, AccessKind.READ, 1)
        assert vsc.resident_logical_lines() == 4

    def test_multi_line_eviction_on_fill(self):
        """Section II: VSC may evict several LRU lines for one fill."""
        vsc = make_vsc(ways=1)  # 8 segments, 2 tags
        vsc.access(1, AccessKind.READ, 4)
        vsc.access(2, AccessKind.READ, 4)
        r = vsc.access(3, AccessKind.READ, 8)
        assert len(r.invalidates) == 2
        assert vsc.stat_multi_evict_fills == 1

    def test_lru_order_of_evictions(self):
        vsc = make_vsc(ways=2)
        vsc.access(1, AccessKind.READ, 8)
        vsc.access(2, AccessKind.READ, 8)
        vsc.access(1, AccessKind.READ, 8)  # 2 is now LRU
        vsc.access(3, AccessKind.READ, 8)
        assert vsc.contains(1) and not vsc.contains(2)

    def test_write_growth_evicts_lru_not_self(self):
        vsc = make_vsc(ways=1)
        vsc.access(1, AccessKind.READ, 4)
        vsc.access(2, AccessKind.READ, 4)
        r = vsc.access(2, AccessKind.WRITE, 8)
        assert vsc.contains(2)
        assert not vsc.contains(1)

    def test_writeback_miss_bypasses(self):
        vsc = make_vsc()
        r = vsc.access(9, AccessKind.WRITEBACK, 4)
        assert r.memory_writes == 1

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 40),
                st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
                st.integers(0, 8),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_accounting_invariants(self, ops):
        vsc = make_vsc(ways=4, sets=2)
        for addr, kind, size in ops:
            vsc.access(addr, kind, size)
        vsc.check_invariants()


class TestUncompressed:
    def test_ignores_sizes(self):
        geometry = CacheGeometry(4 * 64, 4)
        llc = UncompressedLLC(geometry, NRUPolicy())
        llc.access(1, AccessKind.READ, 0)
        llc.access(2, AccessKind.READ, 16)
        assert llc.contains(1) and llc.contains(2)

    def test_miss_reads_memory_and_fill_reports_invalidate(self):
        geometry = CacheGeometry(1 * 64, 1)
        llc = UncompressedLLC(geometry, NRUPolicy())
        llc.access(1, AccessKind.WRITE, 8)
        r = llc.access(2, AccessKind.READ, 8)
        assert r.memory_reads == 1
        assert r.invalidates == [(1, True)]
        assert r.memory_writes == 1

    def test_writeback_hit_and_miss(self):
        geometry = CacheGeometry(4 * 64, 4)
        llc = UncompressedLLC(geometry, NRUPolicy())
        llc.access(1, AccessKind.READ, 8)
        assert llc.access(1, AccessKind.WRITEBACK, 8).hit
        r = llc.access(2, AccessKind.WRITEBACK, 8)
        assert not r.hit and r.memory_writes == 1
        assert llc.stat_writeback_misses == 1

    def test_prefetch_fill_and_hit(self):
        geometry = CacheGeometry(4 * 64, 4)
        llc = UncompressedLLC(geometry, NRUPolicy())
        r = llc.access(1, AccessKind.PREFETCH, 8)
        assert not r.hit and r.memory_reads == 1
        assert llc.access(1, AccessKind.PREFETCH, 8).hit

    def test_never_compressed_hits(self):
        geometry = CacheGeometry(4 * 64, 4)
        llc = UncompressedLLC(geometry, NRUPolicy())
        llc.access(1, AccessKind.READ, 4)
        assert not llc.access(1, AccessKind.READ, 4).compressed_hit

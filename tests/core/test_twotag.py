"""Tests for the two-tag strawman architectures (Sections III and VI.A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheGeometry
from repro.cache.replacement import LRUPolicy, NRUPolicy
from repro.compression.segments import SegmentGeometry
from repro.core.interfaces import AccessKind
from repro.core.twotag import TwoTagLLC

EXAMPLE_SEGMENTS = SegmentGeometry(64, 8)


def make_tt(ways=4, sets=1, modified=False, policy=None):
    geometry = CacheGeometry(sets * ways * 64, ways)
    return TwoTagLLC(
        geometry, policy or LRUPolicy(), EXAMPLE_SEGMENTS, modified=modified
    )


class TestCapacity:
    def test_two_compressed_lines_share_a_way(self):
        tt = make_tt(ways=1)
        tt.access(1, AccessKind.READ, 4)
        tt.access(2, AccessKind.READ, 4)
        assert tt.contains(1) and tt.contains(2)
        assert tt.resident_logical_lines() == 2

    def test_uncompressed_lines_cannot_share(self):
        tt = make_tt(ways=1)
        tt.access(1, AccessKind.READ, 8)
        tt.access(2, AccessKind.READ, 8)
        assert tt.contains(2)
        assert not tt.contains(1)

    def test_doubled_tags_double_capacity_for_half_lines(self):
        tt = make_tt(ways=4)
        for addr in range(8):
            tt.access(addr, AccessKind.READ, 4)
        assert tt.resident_logical_lines() == 8
        tt.check_invariants()


class TestPartnerVictimization:
    def test_naive_evicts_partner_when_fill_does_not_fit(self):
        """The Section III example: MRU partner of the LRU victim dies."""
        tt = make_tt(ways=1, policy=LRUPolicy())
        tt.access(1, AccessKind.READ, 6)  # base
        tt.access(2, AccessKind.READ, 2)  # partner (same way)
        assert tt.contains(1) and tt.contains(2)
        tt.access(2, AccessKind.READ, 2)  # make 2 the MRU; 1 is LRU
        r = tt.access(3, AccessKind.READ, 6)  # victim: 1; 6+2 <= 8 fits!
        assert tt.contains(2)
        # Now force the non-fitting case: 3(6) is MRU, 2(2) is LRU.
        r = tt.access(4, AccessKind.READ, 4)  # victim 2; partner 3 has 6: 4+6>8
        assert not tt.contains(3), "partner line victimization must evict the MRU"
        assert tt.stat_partner_victimizations >= 1
        assert len(r.invalidates) == 2

    def test_modified_avoids_partner_victimization_when_possible(self):
        tt = make_tt(ways=2, modified=True, policy=NRUPolicy())
        # Way 0: two 4-seg lines; way 1: two 4-seg lines.
        for addr in (1, 2, 3, 4):
            tt.access(addr, AccessKind.READ, 4)
        # Fill a 4-seg line: evicting any single line leaves a 4-seg
        # partner, 4+4 <= 8 fits: no partner victimization needed.
        before = tt.stat_partner_victimizations
        tt.access(5, AccessKind.READ, 4)
        assert tt.stat_partner_victimizations == before

    def test_modified_picks_largest_fitting_victim(self):
        tt = make_tt(ways=2, modified=True, policy=NRUPolicy())
        tt.access(1, AccessKind.READ, 2)
        tt.access(2, AccessKind.READ, 3)
        tt.access(3, AccessKind.READ, 2)
        tt.access(4, AccessKind.READ, 5)
        # All four referenced: eligible tier resets to everyone.  The
        # largest compressed victim whose eviction fits a 3-seg line is 5.
        tt.access(5, AccessKind.READ, 3)
        assert not tt.contains(4)

    def test_modified_falls_back_to_naive(self):
        tt = make_tt(ways=1, modified=True)
        tt.access(1, AccessKind.READ, 8)
        r = tt.access(2, AccessKind.READ, 8)
        assert not tt.contains(1)
        assert tt.contains(2)


class TestWriteGrowth:
    def test_write_growth_evicts_partner(self):
        tt = make_tt(ways=1)
        tt.access(1, AccessKind.READ, 4)
        tt.access(2, AccessKind.READ, 4)
        r = tt.access(1, AccessKind.WRITE, 6)  # grows: 6 + 4 > 8
        assert r.hit
        assert not tt.contains(2)
        assert tt.stat_partner_victimizations >= 1

    def test_write_shrink_keeps_partner(self):
        tt = make_tt(ways=1)
        tt.access(1, AccessKind.READ, 4)
        tt.access(2, AccessKind.READ, 4)
        r = tt.access(1, AccessKind.WRITE, 2)
        assert tt.contains(2)

    def test_dirty_partner_eviction_writes_back(self):
        tt = make_tt(ways=1)
        tt.access(1, AccessKind.WRITE, 4)
        tt.access(2, AccessKind.READ, 4)
        r = tt.access(2, AccessKind.WRITE, 6)  # 1 is dirty and must go
        assert r.memory_writes == 1
        assert (1, True) in r.invalidates


class TestProtocol:
    def test_writeback_miss_bypasses(self):
        tt = make_tt()
        r = tt.access(9, AccessKind.WRITEBACK, 4)
        assert r.memory_writes == 1 and not tt.contains(9)

    def test_prefetch_hit_is_noop(self):
        tt = make_tt()
        tt.access(1, AccessKind.READ, 4)
        r = tt.access(1, AccessKind.PREFETCH, 4)
        assert r.hit and r.data_reads == 0

    def test_size_out_of_range_rejected(self):
        tt = make_tt()
        with pytest.raises(ValueError):
            tt.access(1, AccessKind.READ, 9)


@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 48),
            st.sampled_from([AccessKind.READ, AccessKind.WRITE, AccessKind.PREFETCH]),
            st.integers(0, 8),
        ),
        min_size=1,
        max_size=400,
    ),
    modified=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_segment_budget_never_violated(ops, modified):
    tt = make_tt(ways=4, sets=2, modified=modified, policy=NRUPolicy())
    for addr, kind, size in ops:
        result = tt.access(addr, kind, size)
        if kind != AccessKind.PREFETCH or not result.hit:
            assert tt.contains(addr) or kind == AccessKind.PREFETCH or True
    tt.check_invariants()


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 8)),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=80, deadline=None)
def test_most_recent_read_line_resident(ops, ):
    tt = make_tt(ways=4, sets=2)
    for addr, size in ops:
        tt.access(addr, AccessKind.READ, size)
        assert tt.contains(addr)
    tt.check_invariants()

"""Tests for the DCC and SCC functional comparators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheGeometry
from repro.compression.segments import SegmentGeometry
from repro.core.dcc import DCCFunctionalLLC, LINES_PER_SUPERBLOCK
from repro.core.interfaces import AccessKind
from repro.core.scc import SCCFunctionalLLC, size_class

SEGMENTS = SegmentGeometry(64, 4)


def make_dcc(ways=8, sets=4):
    return DCCFunctionalLLC(CacheGeometry(sets * ways * 64, ways), SEGMENTS)


def make_scc(ways=8, sets=4):
    return SCCFunctionalLLC(CacheGeometry(sets * ways * 64, ways), SEGMENTS)


class TestDCC:
    def test_miss_then_hit(self):
        dcc = make_dcc()
        assert not dcc.access(5, AccessKind.READ, 8).hit
        assert dcc.access(5, AccessKind.READ, 8).hit

    def test_neighbours_share_a_superblock_tag(self):
        dcc = make_dcc()
        for offset in range(LINES_PER_SUPERBLOCK):
            dcc.access(offset, AccessKind.READ, 4)
        # All four lines resident but only one tag used in their set.
        assert all(dcc.contains(o) for o in range(LINES_PER_SUPERBLOCK))
        assert len(dcc._sets[0]) == 1

    def test_subblock_rounding(self):
        dcc = make_dcc(ways=1, sets=1)  # 16 segments of data space
        dcc.access(0, AccessKind.READ, 1)  # rounds to 4 segments
        dcc.access(1, AccessKind.READ, 5)  # rounds to 8
        dcc.check_invariants()
        assert dcc._used[0] == 12

    def test_compression_exceeds_physical_lines(self):
        dcc = make_dcc(ways=4, sets=1)
        for addr in range(12):
            dcc.access(addr, AccessKind.READ, 4)
        assert dcc.resident_logical_lines() > 4
        dcc.check_invariants()

    def test_superblock_eviction_invalidates_all_lines(self):
        dcc = make_dcc(ways=1, sets=1)
        dcc.access(0, AccessKind.READ, 8)
        dcc.access(1, AccessKind.READ, 8)  # superblock 0 full (16 segs)
        r = dcc.access(64, AccessKind.READ, 8)  # different superblock, set 0
        assert len(r.invalidates) == 2
        assert dcc.stat_superblock_evictions == 1

    def test_write_growth_shrinks_set(self):
        dcc = make_dcc(ways=1, sets=1)
        dcc.access(0, AccessKind.READ, 4)
        dcc.access(1, AccessKind.READ, 4)
        dcc.access(2, AccessKind.READ, 4)
        dcc.access(0, AccessKind.WRITE, 16)  # grows to a full line
        dcc.check_invariants()
        assert dcc.contains(0)

    def test_writeback_miss_bypasses(self):
        dcc = make_dcc()
        r = dcc.access(77, AccessKind.WRITEBACK, 4)
        assert r.memory_writes == 1 and not dcc.contains(77)

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 60),
                st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
                st.integers(0, 16),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_invariants_under_random_traffic(self, ops):
        dcc = make_dcc(ways=4, sets=2)
        for addr, kind, size in ops:
            dcc.access(addr, kind, size)
        dcc.check_invariants()


class TestSCC:
    def test_size_class_rounding(self):
        assert size_class(1) == 2
        assert size_class(2) == 2
        assert size_class(3) == 4
        assert size_class(8) == 8
        assert size_class(9) == 16
        with pytest.raises(ValueError):
            size_class(17)

    def test_neighbours_of_same_class_pack(self):
        scc = make_scc(ways=1, sets=1)
        scc.access(0, AccessKind.READ, 4)
        scc.access(1, AccessKind.READ, 4)
        scc.access(2, AccessKind.READ, 4)
        scc.access(3, AccessKind.READ, 4)
        assert scc.resident_logical_lines() == 4
        scc.check_invariants()

    def test_different_classes_do_not_pack(self):
        scc = make_scc(ways=1, sets=1)
        scc.access(0, AccessKind.READ, 4)
        scc.access(1, AccessKind.READ, 16)  # full line: new physical line
        assert not scc.contains(0)

    def test_non_neighbours_do_not_pack(self):
        scc = make_scc(ways=2, sets=1)
        scc.access(0, AccessKind.READ, 4)   # group 0
        scc.access(8 * 4, AccessKind.READ, 4)  # same set, different group
        assert len(scc._sets[0]) == 2

    def test_class_change_relocates(self):
        scc = make_scc()
        scc.access(0, AccessKind.READ, 4)
        scc.access(0, AccessKind.WRITE, 16)
        assert scc.contains(0)
        scc.check_invariants()

    def test_eviction_drops_all_packed_lines(self):
        scc = make_scc(ways=1, sets=1)
        for addr in range(4):
            scc.access(addr, AccessKind.READ, 4)
        r = scc.access(4 * 8, AccessKind.READ, 16)  # same set, new line
        assert len(r.invalidates) == 4
        assert scc.stat_multi_line_evictions == 1

    def test_writeback_miss_bypasses(self):
        scc = make_scc()
        r = scc.access(99, AccessKind.WRITEBACK, 4)
        assert r.memory_writes == 1

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 80),
                st.sampled_from(
                    [AccessKind.READ, AccessKind.WRITE, AccessKind.PREFETCH]
                ),
                st.integers(0, 16),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_invariants_under_random_traffic(self, ops):
        scc = make_scc(ways=4, sets=2)
        for addr, kind, size in ops:
            scc.access(addr, kind, size)
        scc.check_invariants()


class TestCapacityOrdering:
    def test_unconstrained_vsc_packs_at_least_as_well(self):
        """VSC (free packing) >= DCC (sub-blocks) on the same stream."""
        from repro.core.vsc import VSCFunctionalLLC

        geometry = CacheGeometry(4 * 8 * 64, 8)
        vsc = VSCFunctionalLLC(geometry, SEGMENTS)
        dcc = DCCFunctionalLLC(geometry, SEGMENTS)
        import random

        rng = random.Random(5)
        for _ in range(20000):
            addr = rng.randrange(300)
            size = rng.choice([1, 2, 4, 6, 8, 16])
            vsc.access(addr, AccessKind.READ, size)
            dcc.access(addr, AccessKind.READ, size)
        assert vsc.resident_logical_lines() >= dcc.resident_logical_lines() * 0.8

"""Tests for data-value synthesis and the line data model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.bdi import BDICompressor
from repro.cache.replacement.base import DeterministicRandom
from repro.workloads.datagen import (
    build_palette,
    LineDataModel,
    PATTERNS,
)


class TestPatternSynthesisers:
    def test_all_patterns_produce_64_bytes(self):
        rng = DeterministicRandom(1)
        for name, synth in PATTERNS.items():
            assert len(synth(rng)) == 64, name

    def test_zero_pattern_is_zero(self):
        rng = DeterministicRandom(1)
        assert PATTERNS["zero"](rng) == b"\x00" * 64

    def test_fp_delta_compresses_well_under_bdi(self):
        rng = DeterministicRandom(2)
        bdi = BDICompressor()
        sizes = [bdi.compressed_size(PATTERNS["fp_delta"](rng)) for _ in range(20)]
        assert sum(sizes) / len(sizes) < 32  # < 50% of the line

    def test_random_pattern_does_not_compress(self):
        rng = DeterministicRandom(3)
        bdi = BDICompressor()
        sizes = [bdi.compressed_size(PATTERNS["random"](rng)) for _ in range(20)]
        assert sum(sizes) / len(sizes) > 56


class TestPalettes:
    def test_friendly_palettes_hit_the_paper_band(self):
        """Section VI.A: friendly traces average ~50% compressed size."""
        for category in ("fspec", "ispec", "productivity", "client"):
            palette = build_palette(category, "friendly", seed=11)
            model = LineDataModel(palette, seed=5)
            assert 0.40 <= model.average_size_fraction() <= 0.60, category

    def test_poor_palettes_exceed_75_percent(self):
        for category in ("fspec", "ispec", "productivity", "client"):
            palette = build_palette(category, "poor", seed=11)
            model = LineDataModel(palette, seed=5)
            assert model.average_size_fraction() > 0.75, category

    def test_sizes_are_measured_with_real_bdi(self):
        bdi = BDICompressor()
        for entry in build_palette("ispec", "friendly", seed=3):
            assert entry.size_bytes == bdi.compressed_size(entry.data)

    def test_mixed_class_combines_both(self):
        palette = build_palette("client", "mixed", seed=9)
        patterns = {entry.pattern for entry in palette}
        assert "random" in patterns

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            build_palette("hpc", "friendly", seed=1)

    def test_palettes_are_deterministic(self):
        a = build_palette("fspec", "friendly", seed=42)
        b = build_palette("fspec", "friendly", seed=42)
        assert [e.data for e in a] == [e.data for e in b]


class TestLineDataModel:
    def _model(self, **kwargs):
        return LineDataModel(build_palette("ispec", "friendly", 7), seed=1, **kwargs)

    def test_size_is_deterministic_per_address(self):
        model = self._model()
        assert model.size_of(1234) == model.size_of(1234)

    def test_sizes_in_segment_range(self):
        model = self._model()
        for addr in range(500):
            assert 0 <= model.size_of(addr) <= 16

    def test_two_models_same_seed_agree(self):
        a, b = self._model(), self._model()
        for addr in range(100):
            assert a.size_of(addr) == b.size_of(addr)

    def test_writes_eventually_change_size_class(self):
        model = self._model(write_change_period=2)
        changed = 0
        for addr in range(64):
            before = model.size_of(addr)
            for _ in range(8):
                model.on_write(addr)
            if model.size_of(addr) != before:
                changed += 1
        assert changed > 0

    def test_write_evolution_is_deterministic(self):
        a, b = self._model(), self._model()
        for addr in (1, 1, 2, 1, 3, 3, 3):
            a.on_write(addr)
            b.on_write(addr)
        for addr in (1, 2, 3):
            assert a.size_of(addr) == b.size_of(addr)

    def test_empty_palette_rejected(self):
        with pytest.raises(ValueError):
            LineDataModel([])

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            LineDataModel(build_palette("ispec", "friendly", 7), write_change_period=0)

    @given(st.integers(min_value=0, max_value=2**48))
    @settings(max_examples=200)
    def test_any_address_has_a_valid_size(self, addr):
        model = self._model()
        assert 0 <= model.size_of(addr) <= 16

"""Finer-grained tests of the individual access patterns."""


from repro.workloads.generators import PatternGenerator, PatternParams
from repro.workloads.trace import TraceMeta


def gen(kind, footprint=2048, seed=7, **kwargs):
    params = PatternParams(kind=kind, footprint_lines=footprint, **kwargs)
    meta = TraceMeta("t", "ispec", seed, footprint, "friendly", True)
    return PatternGenerator(params, seed).generate(meta, 6000)


class TestZipf:
    def test_popularity_is_skewed(self):
        trace = gen("zipf", hot_fraction=0.0)
        from collections import Counter

        counts = Counter(trace.addrs)
        top = sum(c for _, c in counts.most_common(len(counts) // 10))
        assert top > len(trace) * 0.4  # top decile draws >40% of accesses

    def test_tail_is_long(self):
        trace = gen("zipf", hot_fraction=0.0)
        assert trace.unique_lines() > 500


class TestRegions:
    def test_regions_walk_sequentially_within_each_region(self):
        trace = gen("regions", hot_fraction=0.0)
        # Region choice interleaves accesses, so test the per-region
        # cursor: within one region most consecutive touches advance by
        # one line (occasional random jumps are part of the pattern).
        last_by_region: dict[int, int] = {}
        steps = increments = 0
        for addr in trace.addrs:
            region = addr // 64  # regions are >= 16 lines; 64 works here
            if region in last_by_region:
                steps += 1
                if addr - last_by_region[region] == 1:
                    increments += 1
            last_by_region[region] = addr
        assert increments > steps * 0.5

    def test_region_skew_favours_early_regions(self):
        trace = gen("regions", hot_fraction=0.0, footprint=4096)
        base = min(trace.addrs)
        in_first_half = sum(1 for a in trace.addrs if a - base < 2048)
        assert in_first_half > len(trace) * 0.55


class TestFrames:
    def test_mixes_sequential_and_random(self):
        trace = gen("frames", hot_fraction=0.0, num_streams=1)
        seq = sum(
            1
            for i in range(1, len(trace))
            if trace.addrs[i] - trace.addrs[i - 1] == 1
        )
        # One frame stream plus the random-touch component: mostly
        # sequential but clearly not purely so.
        assert 0.4 < seq / len(trace) < 0.95


class TestHotSet:
    def test_hot_lines_live_outside_main_footprint(self):
        trace = gen("zipf", hot_fraction=0.5, hot_lines=64)
        base = min(trace.addrs)
        # Hot lines map beyond footprint_lines.
        hot_accesses = sum(1 for a in trace.addrs if a - base >= 2048)
        assert hot_accesses > len(trace) * 0.3

    def test_hot_set_bounded(self):
        trace = gen("zipf", hot_fraction=1.0, hot_lines=32)
        assert trace.unique_lines() <= 32


class TestStreamMultiplicity:
    def test_multiple_concurrent_streams(self):
        trace = gen("stream", hot_fraction=0.0, num_streams=4)
        # Jumps between stream cursors break pure sequentiality.
        jumps = sum(
            1
            for i in range(1, len(trace))
            if abs(trace.addrs[i] - trace.addrs[i - 1]) > 1
        )
        assert jumps > len(trace) * 0.3

    def test_single_stream_is_nearly_pure(self):
        trace = gen("stream", hot_fraction=0.0, num_streams=1)
        seq = sum(
            1
            for i in range(1, len(trace))
            if trace.addrs[i] - trace.addrs[i - 1] == 1
        )
        assert seq > len(trace) * 0.95

"""Tests for the trace container."""

from array import array

import pytest

from repro.workloads.trace import LOAD, STORE, Trace, TraceMeta


def meta(**kwargs):
    defaults = dict(
        name="t",
        category="ispec",
        seed=1,
        footprint_lines=100,
        comp_class="friendly",
        cache_sensitive=True,
    )
    defaults.update(kwargs)
    return TraceMeta(**defaults)


class TestTrace:
    def test_append_and_len(self):
        trace = Trace(meta())
        trace.append(LOAD, 0x10, 3)
        trace.append(STORE, 0x20, 5)
        assert len(trace) == 2
        assert list(trace.kinds) == [LOAD, STORE]

    def test_instructions_sums_deltas(self):
        trace = Trace(meta())
        for delta in (3, 5, 7):
            trace.append(LOAD, 0, delta)
        assert trace.instructions == 15

    def test_write_fraction(self):
        trace = Trace(meta())
        trace.append(STORE, 0, 1)
        trace.append(LOAD, 0, 1)
        trace.append(LOAD, 0, 1)
        assert trace.write_fraction == pytest.approx(1 / 3)

    def test_write_fraction_empty(self):
        assert Trace(meta()).write_fraction == 0.0

    def test_unique_lines(self):
        trace = Trace(meta())
        for addr in (1, 2, 2, 3, 1):
            trace.append(LOAD, addr, 1)
        assert trace.unique_lines() == 3

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace(meta(), kinds=array("b", [0]), addrs=array("q"), deltas=array("i"))

    def test_meta_carries_mlp(self):
        m = meta(mlp_memory=3.0, mlp_llc=2.5, mlp_l2=2.0)
        assert m.mlp_memory == 3.0
        assert m.mlp_llc == 2.5

"""Tests for the bounded per-process trace cache (sweep-wide reuse)."""

import pytest

from repro.workloads import tracecache
from repro.workloads.datagen import build_palette, LineDataModel
from repro.workloads.suite import TraceSuite
from repro.workloads.trace import Trace, TraceMeta
from repro.workloads.tracecache import (
    TraceCache,
    load_trace,
    process_cache,
    reset_process_cache,
)
from repro.workloads.traceio import (
    TraceFormatError,
    trace_fingerprint,
    write_trace,
    write_trace_v2,
)


@pytest.fixture(autouse=True)
def _fresh_process_cache():
    """Isolate every test from cache state built by earlier ones."""
    reset_process_cache()
    yield
    reset_process_cache()


def _make_trace(name="t", length=32):
    meta = TraceMeta(
        name=name,
        category="ispec",
        seed=7,
        footprint_lines=64,
        comp_class="friendly",
        cache_sensitive=True,
        mlp_l2=2.0,
        mlp_llc=3.0,
        mlp_memory=1.5,
        instrs_per_access=10.0,
    )
    trace = Trace(meta)
    for i in range(length):
        trace.append(kind=0, addr=i * 3, delta=4)
    return trace


class TestTraceCache:
    def test_loader_runs_once_per_key(self):
        cache = TraceCache(max_entries=4)
        calls = []
        for _ in range(3):
            value = cache.get(("k", 1), lambda: calls.append(1) or "v")
            assert value == "v"
        assert calls == [1]
        assert cache.stat_misses == 1
        assert cache.stat_hits == 2

    def test_lru_bound_evicts_oldest(self):
        cache = TraceCache(max_entries=2)
        cache.get(("a",), lambda: 1)
        cache.get(("b",), lambda: 2)
        cache.get(("a",), lambda: 1)  # refresh a; b is now oldest
        cache.get(("c",), lambda: 3)  # evicts b
        assert cache.stat_evictions == 1
        assert len(cache) == 2
        cache.get(("a",), lambda: pytest.fail("a must still be resident"))
        cache.get(("b",), lambda: 4)  # miss: was evicted
        assert cache.stat_misses == 4

    def test_zero_entries_disables_retention_but_counts(self):
        cache = TraceCache(max_entries=0)
        calls = []
        cache.get(("k",), lambda: calls.append(1) or "v")
        cache.get(("k",), lambda: calls.append(1) or "v")
        assert calls == [1, 1]
        assert cache.stat_misses == 2
        assert cache.stat_hits == 0
        assert cache.stat_evictions == 0
        assert len(cache) == 0
        assert cache.stat_load_seconds >= 0.0

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            TraceCache(max_entries=-1)

    def test_clear_keeps_lifetime_counters(self):
        cache = TraceCache(max_entries=4)
        cache.get(("k",), lambda: 1)
        cache.get(("k",), lambda: 1)
        cache.clear()
        assert len(cache) == 0
        snap = cache.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["entries"] == 0

    def test_snapshot_shape(self):
        snap = TraceCache(max_entries=3).snapshot()
        assert set(snap) == {
            "hits",
            "misses",
            "evictions",
            "entries",
            "max_entries",
            "load_seconds",
        }


class TestProcessCache:
    def test_singleton_identity(self):
        assert process_cache() is process_cache()

    def test_env_bound_override(self, monkeypatch):
        monkeypatch.setenv(tracecache.MAX_ENTRIES_ENV, "5")
        reset_process_cache()
        assert process_cache().max_entries == 5

    def test_env_bound_garbage_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(tracecache.MAX_ENTRIES_ENV, "not-a-number")
        reset_process_cache()
        assert process_cache().max_entries == tracecache.DEFAULT_MAX_ENTRIES


class TestTraceFingerprint:
    def test_v3_uses_stored_header_crc(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(_make_trace(), path)
        version, crc = trace_fingerprint(path)
        assert version == 3
        # Stable across calls, and cheap: the payload is never read.
        assert trace_fingerprint(path) == (version, crc)

    def test_v3_changes_when_contents_change(self, tmp_path):
        a, b = tmp_path / "a.rptr", tmp_path / "b.rptr"
        write_trace(_make_trace(length=32), a)
        write_trace(_make_trace(length=33), b)
        assert trace_fingerprint(a) != trace_fingerprint(b)

    def test_v3_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(_make_trace(), path)
        data = bytearray(path.read_bytes())
        data[8] ^= 0xFF  # inside the metadata-length field
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            trace_fingerprint(path)

    def test_legacy_v2_full_file_crc(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace_v2(_make_trace(), path)
        version, crc = trace_fingerprint(path)
        assert version == 2
        data = bytearray(path.read_bytes())
        data[-10] ^= 0x01
        path.write_bytes(bytes(data))
        assert trace_fingerprint(path)[1] != crc

    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "t.rptr"
        path.write_bytes(b"NOPE")
        with pytest.raises(TraceFormatError):
            trace_fingerprint(path)


class TestLoadTrace:
    def test_second_load_is_a_hit(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(_make_trace(), path)
        first = load_trace(path)
        second = load_trace(path)
        assert second is first
        snap = process_cache().snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1

    def test_rewritten_file_misses(self, tmp_path):
        path = tmp_path / "t.rptr"
        write_trace(_make_trace(length=16), path)
        first = load_trace(path)
        write_trace(_make_trace(length=24), path)
        second = load_trace(path)
        assert second is not first
        assert len(second) == 24
        assert process_cache().stat_misses == 2


class TestSuiteIntegration:
    def test_trace_shared_across_suite_instances(self):
        one = TraceSuite(reference_llc_lines=512, length=400)
        two = TraceSuite(reference_llc_lines=512, length=400)
        trace = one.trace("mcf.1")
        assert two.trace("mcf.1") is trace
        snap = process_cache().snapshot()
        assert snap["misses"] == 1
        assert snap["hits"] == 1

    def test_presets_do_not_collide(self):
        short = TraceSuite(reference_llc_lines=512, length=400)
        long = TraceSuite(reference_llc_lines=512, length=800)
        assert len(short.trace("mcf.1")) == 400
        assert len(long.trace("mcf.1")) == 800
        assert process_cache().snapshot()["misses"] == 2

    def test_instance_cache_still_serves_repeat_calls(self):
        suite = TraceSuite(reference_llc_lines=512, length=400)
        trace = suite.trace("mcf.1")
        assert suite.trace("mcf.1") is trace
        # The second call never reached the process cache (L1 hit).
        assert process_cache().snapshot()["hits"] == 0

    def test_adopted_size_tables_match_uncached_model(self):
        suite = TraceSuite(reference_llc_lines=512, length=400)
        trace = suite.trace("mcf.1")

        cached = suite.data_model("mcf.1")
        cached.prime_size_memo(trace.addrs)

        spec = suite.spec("mcf.1")
        fresh = LineDataModel(
            build_palette(spec.category, spec.comp_class, spec.seed),
            seed=spec.seed,
        )
        for addr in set(trace.addrs):
            assert cached.size_of(addr) == fresh.size_of(addr)

    def test_size_tables_computed_once_across_models(self):
        suite = TraceSuite(reference_llc_lines=512, length=400)
        trace = suite.trace("mcf.1")
        first = suite.data_model("mcf.1")
        first.prime_size_memo(trace.addrs)
        misses_after_first = process_cache().stat_misses
        second = suite.data_model("mcf.1")
        second.prime_size_memo(trace.addrs)
        assert process_cache().stat_misses == misses_after_first
        assert second.size_memo == first.size_memo
        # Rotations on one model never leak into the other's memo (the
        # cached size table is copied in, not shared).
        addr = trace.addrs[0]
        version0 = second.size_memo[addr]
        for _ in range(64):
            first.on_write(addr)
        assert second.size_of(addr) == version0

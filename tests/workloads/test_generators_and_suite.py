"""Tests for pattern generators, the Table I suite and the mixes."""

import pytest

from repro.workloads.generators import PatternGenerator, PatternParams
from repro.workloads.mixes import build_mixes, NUM_MIXES, THREADS_PER_MIX
from repro.workloads.suite import (
    all_specs,
    CATEGORIES,
    friendly_specs,
    poor_specs,
    sensitive_specs,
    TraceSuite,
)
from repro.workloads.trace import TraceMeta


def make_trace(kind="zipf", footprint=512, length=2000, seed=3, **kwargs):
    params = PatternParams(kind=kind, footprint_lines=footprint, **kwargs)
    meta = TraceMeta(
        name="t",
        category="ispec",
        seed=seed,
        footprint_lines=footprint,
        comp_class="friendly",
        cache_sensitive=True,
    )
    return PatternGenerator(params, seed).generate(meta, length)


class TestGenerators:
    def test_length_and_parallel_arrays(self):
        trace = make_trace(length=1000)
        assert len(trace) == 1000
        assert len(trace.kinds) == len(trace.addrs) == len(trace.deltas) == 1000

    def test_deterministic(self):
        a = make_trace(seed=9)
        b = make_trace(seed=9)
        assert list(a.addrs) == list(b.addrs)
        assert list(a.kinds) == list(b.kinds)

    def test_different_seeds_differ(self):
        assert list(make_trace(seed=1).addrs) != list(make_trace(seed=2).addrs)

    def test_write_fraction_respected(self):
        trace = make_trace(write_fraction=0.3, length=5000)
        assert 0.25 < trace.write_fraction < 0.35

    def test_zero_write_fraction(self):
        trace = make_trace(write_fraction=0.0, length=500)
        assert trace.write_fraction == 0.0

    def test_deltas_positive_with_requested_mean(self):
        trace = make_trace(instrs_per_access=8.0, length=5000)
        deltas = list(trace.deltas)
        assert all(d >= 1 for d in deltas)
        assert 6.5 < sum(deltas) / len(deltas) < 9.5

    def test_scan_touches_lines_once(self):
        trace = make_trace(kind="scan", footprint=10_000, length=3000)
        assert trace.unique_lines() == 3000

    def test_stream_is_sequential_within_pages(self):
        trace = make_trace(kind="stream", footprint=4096, length=3000,
                           hot_fraction=0.0, num_streams=1)
        increments = sum(
            1
            for i in range(1, len(trace))
            if trace.addrs[i] - trace.addrs[i - 1] == 1
        )
        assert increments > len(trace) * 0.8

    def test_footprint_respected(self):
        trace = make_trace(kind="zipf", footprint=256, length=5000,
                           hot_fraction=0.0)
        base = min(trace.addrs)
        assert max(trace.addrs) - base < 256

    def test_hot_fraction_creates_reuse(self):
        cold = make_trace(kind="zipf", footprint=65536, length=4000, hot_fraction=0.0)
        hot = make_trace(kind="zipf", footprint=65536, length=4000,
                         hot_fraction=0.5, hot_lines=32)
        assert hot.unique_lines() < cold.unique_lines()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PatternGenerator(PatternParams(kind="markov", footprint_lines=10), 1)

    def test_invalid_footprint_rejected(self):
        with pytest.raises(ValueError):
            PatternGenerator(PatternParams(kind="zipf", footprint_lines=0), 1)

    def test_invalid_length_rejected(self):
        params = PatternParams(kind="zipf", footprint_lines=16)
        generator = PatternGenerator(params, 1)
        meta = TraceMeta("t", "ispec", 1, 16, "friendly", True)
        with pytest.raises(ValueError):
            generator.generate(meta, 0)


class TestSuitePopulation:
    """The suite must match Table I and Section VI.A's population."""

    def test_100_traces(self):
        assert len(all_specs()) == 100

    def test_category_counts_match_table1(self):
        counts = {cat: 0 for cat in CATEGORIES}
        for spec in all_specs():
            counts[spec.category] += 1
        assert counts == {
            "fspec": 30,
            "ispec": 29,
            "productivity": 14,
            "client": 27,
        }

    def test_60_cache_sensitive(self):
        assert len(sensitive_specs()) == 60

    def test_50_friendly_10_poor(self):
        assert len(friendly_specs()) == 50
        assert len(poor_specs()) == 10

    def test_names_are_unique(self):
        names = [spec.name for spec in all_specs()]
        assert len(names) == len(set(names))

    def test_seeds_are_unique(self):
        seeds = [spec.seed for spec in all_specs()]
        assert len(seeds) == len(set(seeds))


class TestTraceSuite:
    def test_trace_generation_and_caching(self):
        suite = TraceSuite(reference_llc_lines=1024, length=2000)
        first = suite.trace("mcf.1")
        second = suite.trace("mcf.1")
        assert first is second
        assert len(first) == 2000

    def test_unknown_trace_rejected(self):
        suite = TraceSuite(1024, 100)
        with pytest.raises(KeyError):
            suite.trace("doom.1")

    def test_working_sets_scale_with_reference(self):
        small = TraceSuite(512, 4000)
        large = TraceSuite(2048, 4000)
        assert (
            large.trace("mcf.1").unique_lines() > small.trace("mcf.1").unique_lines()
        )

    def test_data_models_are_fresh_per_call(self):
        suite = TraceSuite(512, 100)
        a = suite.data_model("mcf.1")
        b = suite.data_model("mcf.1")
        assert a is not b
        assert a.size_of(7) == b.size_of(7)

    def test_friendly_traces_have_compressible_data(self):
        suite = TraceSuite(512, 100)
        model = suite.data_model("mcf.1")
        assert model.average_size_fraction() < 0.6

    def test_poor_traces_have_incompressible_data(self):
        suite = TraceSuite(512, 100)
        for spec in poor_specs()[:3]:
            model = suite.data_model(spec.name)
            assert model.average_size_fraction() > 0.75

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TraceSuite(0, 100)
        with pytest.raises(ValueError):
            TraceSuite(100, 0)


class TestMixes:
    def test_20_mixes_of_4(self):
        mixes = build_mixes()
        assert len(mixes) == NUM_MIXES
        for mix in mixes:
            assert len(mix.trace_names) == THREADS_PER_MIX

    def test_mixes_draw_from_sensitive_traces(self):
        sensitive = {spec.name for spec in sensitive_specs()}
        for mix in build_mixes():
            assert set(mix.trace_names) <= sensitive

    def test_mixes_are_deterministic(self):
        assert build_mixes() == build_mixes()

    def test_mix_names_unique(self):
        names = [mix.name for mix in build_mixes()]
        assert len(names) == len(set(names))

    def test_custom_count(self):
        assert len(build_mixes(count=5)) == 5

"""Tests for the binary trace file format."""

import pytest

from repro.workloads.suite import TraceSuite
from repro.workloads.trace import LOAD, STORE, Trace, TraceMeta
from repro.workloads.traceio import read_trace, TraceFormatError, write_trace


def small_trace():
    meta = TraceMeta(
        name="t",
        category="ispec",
        seed=9,
        footprint_lines=64,
        comp_class="friendly",
        cache_sensitive=True,
        mlp_memory=2.5,
    )
    trace = Trace(meta)
    for i in range(100):
        trace.append(STORE if i % 3 == 0 else LOAD, i * 7 % 64, 1 + i % 5)
    return trace


class TestRoundTrip:
    def test_roundtrip_preserves_records(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert list(loaded.kinds) == list(trace.kinds)
        assert list(loaded.addrs) == list(trace.addrs)
        assert list(loaded.deltas) == list(trace.deltas)

    def test_roundtrip_preserves_metadata(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.meta == trace.meta

    def test_roundtrip_of_generated_suite_trace(self, tmp_path):
        suite = TraceSuite(512, 2000)
        trace = suite.trace("mcf.1")
        path = tmp_path / "mcf1.rptr"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert len(loaded) == len(trace)
        assert list(loaded.addrs) == list(trace.addrs)

    def test_large_addresses_survive(self, tmp_path):
        trace = small_trace()
        trace.append(LOAD, 1 << 45, 3)
        path = tmp_path / "big.rptr"
        write_trace(trace, path)
        assert read_trace(path).addrs[-1] == 1 << 45


class TestErrorHandling:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rptr"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.rptr"
        path.write_bytes(b"RPTR\x01")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated_records(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-50])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_wrong_version(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = bytearray(path.read_bytes())
        data[4] = 99  # version field
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        """Bytes past the end of the format are an error, not ignored."""
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(TraceFormatError, match="trailing"):
            read_trace(path)

    def test_concatenated_file_rejected(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data + data)  # e.g. a botched `cat a b > a`
        with pytest.raises(TraceFormatError, match="trailing"):
            read_trace(path)


class TestCorruptionFuzz:
    def test_truncation_at_every_offset_is_detected(self, tmp_path):
        """No prefix of a trace file may load as a valid trace.

        Exhaustive over every byte offset: the file is small, and a
        single undetected truncation point would mean silently
        simulating a shorter workload than the metadata claims.
        """
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = path.read_bytes()
        victim = tmp_path / "cut.rptr"
        for cut in range(len(data)):
            victim.write_bytes(data[:cut])
            with pytest.raises(TraceFormatError):
                read_trace(victim)

    def test_flipped_bit_anywhere_never_passes_silently(self, tmp_path):
        """The v2 CRC footer catches single-bit rot at any offset.

        Flipping one bit must either raise (checksum/structure) or —
        never — yield a trace that reads back successfully while
        differing from the original.
        """
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = bytearray(path.read_bytes())
        victim = tmp_path / "flip.rptr"
        step = 7  # every 7th byte keeps the sweep fast but offset-diverse
        for offset in range(0, len(data), step):
            flipped = bytearray(data)
            flipped[offset] ^= 0x10
            victim.write_bytes(bytes(flipped))
            with pytest.raises(TraceFormatError):
                read_trace(victim)


class TestLegacyV1:
    @staticmethod
    def _write_v1(trace, path):
        """A v1 writer: the current format minus the CRC footer."""
        import json
        import struct

        meta_json = json.dumps(trace.meta.__dict__).encode("utf-8")
        with open(path, "wb") as handle:
            handle.write(b"RPTR")
            handle.write(struct.pack("<HI", 1, len(meta_json)))
            handle.write(meta_json)
            handle.write(struct.pack("<Q", len(trace)))
            trace.kinds.tofile(handle)
            trace.addrs.tofile(handle)
            trace.deltas.tofile(handle)

    def test_v1_files_still_load(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "old.rptr"
        self._write_v1(trace, path)
        loaded = read_trace(path)
        assert loaded.meta == trace.meta
        assert list(loaded.addrs) == list(trace.addrs)

    def test_v1_trailing_garbage_still_rejected(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "old.rptr"
        self._write_v1(trace, path)
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(TraceFormatError, match="trailing"):
            read_trace(path)

    def test_current_files_are_v3(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        assert path.read_bytes()[4] == 3  # version field

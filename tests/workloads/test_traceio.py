"""Tests for the binary trace file format."""

import pytest

from repro.workloads.suite import TraceSuite
from repro.workloads.trace import LOAD, STORE, Trace, TraceMeta
from repro.workloads.traceio import read_trace, TraceFormatError, write_trace


def small_trace():
    meta = TraceMeta(
        name="t",
        category="ispec",
        seed=9,
        footprint_lines=64,
        comp_class="friendly",
        cache_sensitive=True,
        mlp_memory=2.5,
    )
    trace = Trace(meta)
    for i in range(100):
        trace.append(STORE if i % 3 == 0 else LOAD, i * 7 % 64, 1 + i % 5)
    return trace


class TestRoundTrip:
    def test_roundtrip_preserves_records(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert list(loaded.kinds) == list(trace.kinds)
        assert list(loaded.addrs) == list(trace.addrs)
        assert list(loaded.deltas) == list(trace.deltas)

    def test_roundtrip_preserves_metadata(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.meta == trace.meta

    def test_roundtrip_of_generated_suite_trace(self, tmp_path):
        suite = TraceSuite(512, 2000)
        trace = suite.trace("mcf.1")
        path = tmp_path / "mcf1.rptr"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert len(loaded) == len(trace)
        assert list(loaded.addrs) == list(trace.addrs)

    def test_large_addresses_survive(self, tmp_path):
        trace = small_trace()
        trace.append(LOAD, 1 << 45, 3)
        path = tmp_path / "big.rptr"
        write_trace(trace, path)
        assert read_trace(path).addrs[-1] == 1 << 45


class TestErrorHandling:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rptr"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.rptr"
        path.write_bytes(b"RPTR\x01")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated_records(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-50])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_wrong_version(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = bytearray(path.read_bytes())
        data[4] = 99  # version field
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            read_trace(path)

"""Tests for the columnar v3 trace format and the migration path.

Three properties are load-bearing:

* **round-trip** — a v3 file reads back exactly what was written, both
  through the scalar :func:`read_trace` loader and the memory-mapped
  :func:`open_trace_columns` column views;
* **migration losslessness** — ``repro trace migrate`` of a v2 (or v1)
  file yields a v3 file whose records and metadata are identical to what
  the scalar loader read from the original, and the rewrite is atomic
  and idempotent;
* **corruption detection** — truncation, bit flips in header or body,
  and trailing garbage all raise a structured :class:`TraceFormatError`
  instead of silently simulating a different workload.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.workloads.suite import TraceSuite
from repro.workloads.trace import LOAD, STORE, Trace, TraceMeta
from repro.workloads.traceio import (
    migrate_trace,
    open_trace_columns,
    read_trace,
    trace_file_version,
    TraceFormatError,
    write_trace,
    write_trace_v2,
)

np = pytest.importorskip("numpy", reason="column views need numpy")


def small_trace(records: int = 100) -> Trace:
    meta = TraceMeta(
        name="t3",
        category="ispec",
        seed=11,
        footprint_lines=64,
        comp_class="friendly",
        cache_sensitive=True,
        mlp_memory=2.5,
    )
    trace = Trace(meta)
    for i in range(records):
        trace.append(STORE if i % 3 == 0 else LOAD, (i * 7919) % (1 << 44), 1 + i % 5)
    return trace


def assert_same_trace(a: Trace, b: Trace) -> None:
    assert a.meta == b.meta
    assert list(a.kinds) == list(b.kinds)
    assert list(a.addrs) == list(b.addrs)
    assert list(a.deltas) == list(b.deltas)


class TestRoundTrip:
    def test_scalar_loader_roundtrip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        assert trace_file_version(path) == 3
        assert_same_trace(read_trace(path), trace)

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = Trace(small_trace().meta)
        path = tmp_path / "empty.rptr"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert len(loaded) == 0
        assert loaded.meta == trace.meta

    def test_generated_suite_trace_roundtrip(self, tmp_path):
        suite = TraceSuite(512, 2000)
        trace = suite.trace("mcf.1")
        path = tmp_path / "mcf1.rptr"
        write_trace(trace, path)
        assert_same_trace(read_trace(path), trace)

    def test_column_sections_are_aligned(self, tmp_path):
        """Every column section starts on a 64-byte boundary, so the
        mmap views hand out naturally aligned buffers."""
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        _, columns = open_trace_columns(path)
        for view in columns.values():
            offset = view.offset  # np.memmap records its file offset
            assert offset % 64 == 0

    def test_mmap_columns_match_scalar_loader(self, tmp_path):
        trace = small_trace(257)  # not a multiple of anything relevant
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        meta, columns = open_trace_columns(path)
        assert meta == trace.meta
        assert columns["kinds"].dtype == np.int8
        assert columns["addrs"].dtype == np.int64
        assert columns["deltas"].dtype == np.int32
        assert columns["addrs"].tolist() == list(trace.addrs)
        assert columns["kinds"].tolist() == list(trace.kinds)
        assert columns["deltas"].tolist() == list(trace.deltas)

    def test_mmap_requires_v3(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "old.rptr"
        write_trace_v2(trace, path)
        with pytest.raises(TraceFormatError, match="migrate"):
            open_trace_columns(path)


class TestMigration:
    def test_v2_migration_is_lossless(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace_v2(trace, path)
        before = read_trace(path)  # the scalar loader's view of the v2 file
        report = migrate_trace(path)
        assert report.migrated
        assert report.from_version == 2
        assert report.records == len(trace)
        assert trace_file_version(path) == 3
        assert_same_trace(read_trace(path), before)

    def test_migration_is_idempotent(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace_v2(trace, path)
        assert migrate_trace(path).migrated
        first = path.read_bytes()
        report = migrate_trace(path)
        assert not report.migrated
        assert path.read_bytes() == first

    def test_corrupt_file_is_never_replaced(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace_v2(trace, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            migrate_trace(path)
        assert path.read_bytes() == bytes(data)  # original left untouched
        assert not list(tmp_path.glob("*.tmp"))  # no temp droppings

    def test_cli_migrates_and_reports(self, tmp_path, capsys):
        a = tmp_path / "a.rptr"
        b = tmp_path / "b.rptr"
        write_trace_v2(small_trace(), a)
        write_trace(small_trace(), b)
        assert main(["trace", "migrate", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert f"{a}: v2 -> v3 (100 records)" in out
        assert f"{b}: already v3 (100 records)" in out
        assert trace_file_version(a) == 3

    def test_cli_structured_error_on_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.rptr"
        path.write_bytes(b"RPTR" + b"\x00" * 40)
        assert main(["trace", "migrate", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_structured_error_on_missing_file(self, tmp_path, capsys):
        path = tmp_path / "nope.rptr"
        assert main(["trace", "migrate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and str(path) in err


class TestCorruptionFuzz:
    def test_truncation_at_every_offset_is_detected(self, tmp_path):
        trace = small_trace(40)
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = path.read_bytes()
        victim = tmp_path / "cut.rptr"
        for cut in range(len(data)):
            victim.write_bytes(data[:cut])
            with pytest.raises(TraceFormatError):
                read_trace(victim)

    def test_flipped_bit_anywhere_is_detected(self, tmp_path):
        """Single-bit rot at any offset — header, TOC, checksum fields,
        inter-section padding or column data — must raise."""
        trace = small_trace(40)
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = bytearray(path.read_bytes())
        victim = tmp_path / "flip.rptr"
        for offset in range(len(data)):
            flipped = bytearray(data)
            flipped[offset] ^= 0x10
            victim.write_bytes(bytes(flipped))
            with pytest.raises(TraceFormatError):
                read_trace(victim)

    def test_flipped_body_bit_detected_by_mmap_reader_too(self, tmp_path):
        trace = small_trace(40)
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0x01  # inside the deltas section
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="checksum"):
            open_trace_columns(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        path.write_bytes(path.read_bytes() + b"\x00" * 3)
        with pytest.raises(TraceFormatError, match="trailing"):
            read_trace(path)

    def test_concatenated_file_rejected(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data + data)
        with pytest.raises(TraceFormatError, match="trailing"):
            read_trace(path)

    def test_inconsistent_record_count_rejected(self, tmp_path):
        """A header whose record count disagrees with the TOC section
        sizes is rejected even when its CRC is made self-consistent
        again (i.e. the structural check is not just the checksum)."""
        import struct
        import zlib

        trace = small_trace(40)
        path = tmp_path / "t.rptr"
        write_trace(trace, path)
        data = bytearray(path.read_bytes())
        (meta_len,) = struct.unpack("<I", data[6:10])
        count_offset = 10 + meta_len
        struct.pack_into("<Q", data, count_offset, 41)
        header_len = count_offset + 8 + 3 * 20 + 4
        crc = zlib.crc32(bytes(data[: header_len - 4])) & 0xFFFFFFFF
        struct.pack_into("<I", data, header_len - 4, crc)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="expected"):
            read_trace(path)

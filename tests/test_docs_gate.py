"""Tier-1 enforcement of the ARCHITECTURE.md module-map docs gate."""

import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_architecture_docs.py"


def _run(repo_root: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), "--repo-root", str(repo_root)],
        capture_output=True,
        text=True,
    )


def test_architecture_module_map_matches_tree():
    proc = _run(REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "docs gate OK" in proc.stdout


def test_gate_fails_on_undocumented_module(tmp_path):
    shutil.copy(REPO_ROOT / "ARCHITECTURE.md", tmp_path / "ARCHITECTURE.md")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "brand_new_module.py").write_text("")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "repro.brand_new_module" in proc.stdout
    assert "missing from ARCHITECTURE.md" in proc.stdout


def test_gate_fails_on_stale_doc_entry(tmp_path):
    text = (REPO_ROOT / "ARCHITECTURE.md").read_text()
    text = text.replace(
        "repro.sim.retry",
        "repro.sim.retired_module",
    )
    (tmp_path / "ARCHITECTURE.md").write_text(text)
    (tmp_path / "src").symlink_to(REPO_ROOT / "src")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "repro.sim.retired_module" in proc.stdout
    assert "no longer exist" in proc.stdout


def test_readme_links_architecture():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "ARCHITECTURE.md" in readme

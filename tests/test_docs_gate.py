"""Tier-1 enforcement of the ARCHITECTURE.md and PROTOCOL.md docs gates."""

import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_architecture_docs.py"


def _run(repo_root: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), "--repo-root", str(repo_root)],
        capture_output=True,
        text=True,
    )


def test_architecture_module_map_matches_tree():
    proc = _run(REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "docs gate OK" in proc.stdout


def test_gate_fails_on_undocumented_module(tmp_path):
    shutil.copy(REPO_ROOT / "ARCHITECTURE.md", tmp_path / "ARCHITECTURE.md")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "brand_new_module.py").write_text("")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "repro.brand_new_module" in proc.stdout
    assert "missing from ARCHITECTURE.md" in proc.stdout


def test_gate_fails_on_stale_doc_entry(tmp_path):
    text = (REPO_ROOT / "ARCHITECTURE.md").read_text()
    text = text.replace(
        "repro.sim.retry",
        "repro.sim.retired_module",
    )
    (tmp_path / "ARCHITECTURE.md").write_text(text)
    (tmp_path / "src").symlink_to(REPO_ROOT / "src")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "repro.sim.retired_module" in proc.stdout
    assert "no longer exist" in proc.stdout


def _protocol_fixture(tmp_path: Path, protocol_text: str) -> Path:
    """A repo-shaped tree with real code and a (possibly doctored) spec."""
    shutil.copy(REPO_ROOT / "ARCHITECTURE.md", tmp_path / "ARCHITECTURE.md")
    (tmp_path / "PROTOCOL.md").write_text(protocol_text)
    (tmp_path / "src").symlink_to(REPO_ROOT / "src")
    return tmp_path


def test_gate_fails_on_missing_protocol_spec(tmp_path):
    shutil.copy(REPO_ROOT / "ARCHITECTURE.md", tmp_path / "ARCHITECTURE.md")
    (tmp_path / "src").symlink_to(REPO_ROOT / "src")
    proc = _run(tmp_path)
    assert proc.returncode == 1
    assert "PROTOCOL.md is missing" in proc.stdout


def test_gate_fails_on_invalid_protocol_example(tmp_path):
    # Corrupt one documented example: a field no parser accepts.
    text = (REPO_ROOT / "PROTOCOL.md").read_text()
    doctored = text.replace('"op": "lease"', '"op": "lease", "wait": true', 1)
    assert doctored != text
    proc = _run(_protocol_fixture(tmp_path, doctored))
    assert proc.returncode == 1
    assert "unknown lease field" in proc.stdout


def test_gate_fails_on_stale_protocol_constant(tmp_path):
    text = (REPO_ROOT / "PROTOCOL.md").read_text()
    doctored = text.replace("| `PROTOCOL_VERSION` | 3 |", "| `PROTOCOL_VERSION` | 7 |")
    assert doctored != text
    proc = _run(_protocol_fixture(tmp_path, doctored))
    assert proc.returncode == 1
    assert "PROTOCOL.md states PROTOCOL_VERSION = 7" in proc.stdout


def test_gate_fails_when_spec_omits_an_event(tmp_path):
    # Dropping every ``lease-done`` example must trip the coverage check.
    text = (REPO_ROOT / "PROTOCOL.md").read_text()
    doctored = text.replace('"event": "lease-done"', '"event": "done"')
    assert doctored != text
    proc = _run(_protocol_fixture(tmp_path, doctored))
    assert proc.returncode == 1
    assert "no example for event 'lease-done'" in proc.stdout


def test_readme_links_architecture():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "ARCHITECTURE.md" in readme
    assert "PROTOCOL.md" in readme

"""End-to-end dispatch tests through real worker subprocesses.

The tentpole invariant with workers dying under it: a dispatch sharded
across a fleet of ``repro serve --worker`` processes — including one
the ``worker-lost`` fault kills mid-dispatch — leaves a cache
byte-identical to a canonicalized serial ``repro sweep`` of the same
matrix, and the loss is visible in ``repro stats``.  This is the same
code path CI's dist-smoke job drives.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.sim.experiment import CACHE_DIR_ENV
from repro.sim.faultinject import FAULTS_DIR_ENV, FAULTS_ENV
from repro.sim.resultcache import scan_cache_file

TIMEOUT = 300
TRACES = ("mcf.1", "sjeng.1", "astar.1")


def _env(cache_dir: Path, **extra: str) -> dict[str, str]:
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env[CACHE_DIR_ENV] = str(cache_dir)
    env.pop(FAULTS_ENV, None)
    env.pop(FAULTS_DIR_ENV, None)
    env.update(extra)
    return env


def _repro(args: tuple[str, ...], env: dict[str, str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
    )


def _trace_flags(traces: tuple[str, ...]) -> list[str]:
    flags: list[str] = []
    for trace in traces:
        flags += ["--trace", trace]
    return flags


def _serial_reference(cache_dir: Path) -> Path:
    """A canonicalized serial sweep of the matrix: the golden bytes."""
    env = _env(cache_dir)
    sweep = _repro(
        ("sweep", "--preset", "test", *_trace_flags(TRACES), "--jobs", "1"), env
    )
    assert sweep.returncode == 0, sweep.stderr
    canon = _repro(("cache", "canonicalize", "--cache-dir", str(cache_dir)), env)
    assert canon.returncode == 0, canon.stderr
    [path] = cache_dir.glob("results-v*.jsonl")
    return path


def test_dispatch_with_worker_death_is_byte_identical_to_serial(tmp_path):
    serial = _serial_reference(tmp_path / "serial")

    # Three workers, worker-1 killed by the injected fault on its first
    # lease; its jobs must reassign to the survivors.
    dist_dir = tmp_path / "dist"
    env = _env(
        dist_dir,
        **{
            FAULTS_ENV: "worker-lost:1:1",
            FAULTS_DIR_ENV: str(tmp_path / "fault-stamps"),
        },
    )
    dispatch = _repro(
        (
            "dispatch",
            "--preset",
            "test",
            *_trace_flags(TRACES),
            "--workers",
            "3",
            "--lease-size",
            "2",
            "--json",
        ),
        env,
    )
    assert dispatch.returncode == 0, dispatch.stderr
    report = json.loads(dispatch.stdout)
    assert report["total"] == 2 * len(TRACES)
    assert report["completed"] == 2 * len(TRACES)
    assert report["failures"] == []
    assert report["workers_lost"] >= 1
    assert report["reassigned"] >= 1
    assert "worker-1 lost" in dispatch.stderr
    lost = next(w for w in report["workers"] if w["name"] == "worker-1")
    assert lost["losses"] >= 1

    # The point of the whole exercise: byte identity despite the death.
    [dist_cache] = dist_dir.glob("results-v*.jsonl")
    assert dist_cache.read_bytes() == serial.read_bytes()
    assert scan_cache_file(dist_cache).clean
    # Clean fold: the staging directory was removed.
    assert list(dist_dir.glob("*.dist-*")) == []

    # The loss is observable after the fact through repro stats.
    stats = _repro(
        (
            "stats",
            "--preset",
            "test",
            "--trace",
            TRACES[0],
            "--json",
        ),
        _env(dist_dir),
    )
    assert stats.returncode == 0, stats.stderr
    counters = json.loads(stats.stdout)["dist"]["counters"]
    assert counters["dist/workers_lost"]["value"] >= 1
    assert counters["dist/jobs_reassigned"]["value"] >= 1


def test_redispatch_is_fully_cached_and_touches_nothing(tmp_path):
    """A second dispatch of the same matrix resolves entirely from cache."""
    cache_dir = tmp_path / "cache"
    env = _env(cache_dir)
    first = _repro(
        (
            "dispatch",
            "--preset",
            "test",
            "--trace",
            "sjeng.1",
            "--workers",
            "2",
            "--json",
        ),
        env,
    )
    assert first.returncode == 0, first.stderr
    [cache_file] = cache_dir.glob("results-v*.jsonl")
    before = cache_file.read_bytes()

    second = _repro(
        ("dispatch", "--preset", "test", "--trace", "sjeng.1", "--json"), env
    )
    assert second.returncode == 0, second.stderr
    report = json.loads(second.stdout)
    assert report["cached"] == 2 and report["dispatched"] == 0
    assert cache_file.read_bytes() == before


def test_coordinator_crash_then_resume_is_byte_identical(tmp_path):
    """kill -9 mid-dispatch: --resume salvages staged cells, finishes, matches serial.

    The injected ``coordinator-crash`` fault hard-exits the coordinator
    (``os._exit(88)``) right after its first partial fold, leaving the
    journal, the staged-shard dir and the orphaned workers behind —
    exactly the wreckage a real SIGKILL leaves.  The resumed dispatch
    must salvage, adopt or reclaim all of it and still produce the
    golden bytes.
    """
    serial = _serial_reference(tmp_path / "serial")

    dist_dir = tmp_path / "dist"
    crash_env = _env(
        dist_dir,
        **{
            FAULTS_ENV: "coordinator-crash:1:1",
            FAULTS_DIR_ENV: str(tmp_path / "fault-stamps"),
        },
    )
    crashed = _repro(
        (
            "dispatch",
            "--preset",
            "test",
            *_trace_flags(TRACES),
            "--workers",
            "2",
            "--lease-size",
            "2",
        ),
        crash_env,
    )
    assert crashed.returncode == 88, crashed.stderr
    [journal] = dist_dir.glob("dispatch-journal-*.ndjson")
    assert journal.exists()

    # Resume with the fault disarmed (its one-shot stamp also remains).
    resume_env = _env(dist_dir)
    resumed = _repro(
        (
            "dispatch",
            "--preset",
            "test",
            *_trace_flags(TRACES),
            "--workers",
            "2",
            "--lease-size",
            "2",
            "--resume",
            "--json",
        ),
        resume_env,
    )
    assert resumed.returncode == 0, resumed.stderr
    report = json.loads(resumed.stdout)
    assert report["total"] == 2 * len(TRACES)
    assert report["completed"] + report["cached"] == 2 * len(TRACES)
    assert report["cached"] >= 1  # salvaged cells resolve as cached
    assert report["resumes"] == 1
    assert report["failures"] == []
    assert "resuming after coordinator crash" in resumed.stderr

    [dist_cache] = dist_dir.glob("results-v*.jsonl")
    assert dist_cache.read_bytes() == serial.read_bytes()
    assert scan_cache_file(dist_cache).clean
    assert list(dist_dir.glob("dispatch-journal-*")) == []
    assert list(dist_dir.glob("*.dist-*")) == []

    stats = _repro(
        ("stats", "--preset", "test", "--trace", TRACES[0], "--json"),
        _env(dist_dir),
    )
    assert stats.returncode == 0, stats.stderr
    counters = json.loads(stats.stdout)["dist"]["counters"]
    assert counters["dist/resumes"]["value"] >= 1
    assert counters["dist/folds_partial"]["value"] >= 1


def test_net_partition_dispatch_converges_byte_identical(tmp_path):
    """A partitioned worker is retired and its jobs reassigned; bytes match."""
    serial = _serial_reference(tmp_path / "serial")

    dist_dir = tmp_path / "dist"
    env = _env(
        dist_dir,
        **{
            FAULTS_ENV: "net-partition:1:1",
            FAULTS_DIR_ENV: str(tmp_path / "fault-stamps"),
        },
    )
    dispatch = _repro(
        (
            "dispatch",
            "--preset",
            "test",
            *_trace_flags(TRACES),
            "--workers",
            "3",
            "--lease-size",
            "2",
            "--json",
        ),
        env,
    )
    assert dispatch.returncode == 0, dispatch.stderr
    report = json.loads(dispatch.stdout)
    assert report["completed"] == 2 * len(TRACES)
    assert report["failures"] == []
    assert report["workers_lost"] >= 1
    assert "injected net-partition fault" in dispatch.stderr

    [dist_cache] = dist_dir.glob("results-v*.jsonl")
    assert dist_cache.read_bytes() == serial.read_bytes()
    assert scan_cache_file(dist_cache).clean


def test_slow_worker_is_caught_by_heartbeat_deadline(tmp_path):
    """A SIGSTOPped worker misses pings; the deadline retires it mid-lease."""
    serial = _serial_reference(tmp_path / "serial")

    dist_dir = tmp_path / "dist"
    env = _env(
        dist_dir,
        **{
            FAULTS_ENV: "slow-worker:0:1",
            FAULTS_DIR_ENV: str(tmp_path / "fault-stamps"),
        },
    )
    dispatch = _repro(
        (
            "dispatch",
            "--preset",
            "test",
            *_trace_flags(TRACES),
            "--workers",
            "2",
            "--lease-size",
            "2",
            "--heartbeat",
            "0.3",
            "--heartbeat-deadline",
            "1",
            "--json",
        ),
        env,
    )
    assert dispatch.returncode == 0, dispatch.stderr
    report = json.loads(dispatch.stdout)
    assert report["completed"] == 2 * len(TRACES)
    assert report["failures"] == []
    assert report["heartbeats_missed"] >= 1
    assert "missed the heartbeat deadline" in dispatch.stderr
    assert "injected slow-worker fault (stalled)" in dispatch.stderr

    [dist_cache] = dist_dir.glob("results-v*.jsonl")
    assert dist_cache.read_bytes() == serial.read_bytes()
    assert scan_cache_file(dist_cache).clean


def test_dispatch_with_jobs_but_no_workers_exits_2(tmp_path):
    result = _repro(
        ("dispatch", "--preset", "test", "--trace", "sjeng.1"), _env(tmp_path)
    )
    assert result.returncode == 2
    assert "no workers" in result.stderr
    assert "Traceback" not in result.stderr


def test_dispatch_rejects_mixing_worker_flag_styles(tmp_path):
    result = _repro(
        (
            "dispatch",
            "--preset",
            "test",
            "--trace",
            "sjeng.1",
            "--workers",
            "2",
            "--worker",
            "/tmp/x.sock",
        ),
        _env(tmp_path),
    )
    assert result.returncode == 2
    assert "not both" in result.stderr

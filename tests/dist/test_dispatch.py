"""Unit tests for the dispatch coordinator's edge cases.

The races a distributed sweep must get right without a server in
sight: a worker dying mid-batch (requeue, reassign, retire), a
partitioned worker completing a job the coordinator already reassigned
(first result wins, duplicate is a counted no-op), the degenerate
empty matrix (never touch a worker or the cache file), and the
crash-safety machinery — streaming partial folds, journal lifecycle,
stale-shard reclaim and crashed-coordinator salvage.  The
wire-in-the-middle versions of the same invariants live in
``test_dispatch_integration.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.dist.coordinator import (
    DispatchCoordinator,
    DispatchError,
    WorkerHealth,
    sweep_cells,
)
from repro.dist.journal import DispatchJournal, journal_path, replay_journal
from repro.dist.worker import WorkerEndpoint, parse_worker_spec
from repro.serve.client import Address, ServeClientError
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB
from repro.sim.resultcache import encode_entry, iter_cache_entries


def _coordinator(tmp_path, traces=("sjeng.1",), **kwargs) -> DispatchCoordinator:
    return DispatchCoordinator(
        "test",
        sweep_cells(traces, [BASELINE_2MB, BASE_VICTIM_2MB]),
        cache_dir=tmp_path,
        **kwargs,
    )


def _health(index: int, tmp_path) -> WorkerHealth:
    endpoint = WorkerEndpoint(
        index=index,
        name=f"worker-{index}",
        address=Address(path=tmp_path / f"w{index}.sock"),
    )
    return WorkerHealth(endpoint=endpoint)


def _counter(coordinator: DispatchCoordinator, name: str) -> int:
    metric = coordinator.registry.as_dict().get(name)
    return int(metric["value"]) if metric else 0


class TestWorkerSpecs:
    def test_tcp_spec(self):
        endpoint = parse_worker_spec("tcp:127.0.0.1:9000", 3)
        assert endpoint.index == 3
        assert endpoint.name == "worker-3"
        assert endpoint.address.host == "127.0.0.1"
        assert endpoint.address.port == 9000

    def test_unix_path_spec(self):
        endpoint = parse_worker_spec("/tmp/remote/serve.sock", 0)
        assert endpoint.address.path is not None
        assert endpoint.address.path.name == "serve.sock"

    @pytest.mark.parametrize("spec", ["", "   ", "tcp:no-port", "tcp:"])
    def test_malformed_specs_raise_value_error(self, spec):
        # ValueError, not ServeError/traceback: the CLI turns it into a
        # clean exit-2 message.
        with pytest.raises(ValueError):
            parse_worker_spec(spec, 0)


class TestDuplicateCompletion:
    def test_first_result_wins_second_is_counted_noop(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        assert coordinator.pending_jobs == 2
        coordinator._shard_dir.mkdir(parents=True)
        first, second = _health(0, tmp_path), _health(1, tmp_path)
        job = coordinator.jobs[0]
        event = {"event": "result", "key": job.key, "result": {"ipc": 1.0}}
        rival = {"event": "result", "key": job.key, "result": {"ipc": 9.9}}

        assert coordinator._record_result(first, event) == "stored"
        assert coordinator._record_result(second, rival) == "duplicate"

        # First writer's payload is the one held; the rival never lands.
        assert coordinator._results[job.key] == {"ipc": 1.0}
        assert first.completed == 1
        assert second.completed == 0
        assert _counter(coordinator, "dist/jobs_completed") == 1
        assert _counter(coordinator, "dist/duplicate_results") == 1
        # Only the winning result was staged to a shard.
        staged = list(coordinator._shard_dir.glob("worker-*.jsonl"))
        assert [path.name for path in staged] == ["worker-0.jsonl"]
        assert len(staged[0].read_text().splitlines()) == 1

    def test_garbled_result_event_raises(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        health = _health(0, tmp_path)
        with pytest.raises(ServeClientError, match="garbled"):
            coordinator._record_result(health, {"event": "result", "key": 7})


class TestWorkerLoss:
    def test_lost_batch_requeues_and_counts_reassignment(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        health = _health(0, tmp_path)
        batch = coordinator._take_batch(health)
        assert batch is not None and len(batch) == 2
        assert not coordinator._pending  # both jobs claimed

        coordinator._on_worker_lost(health, batch, RuntimeError("socket died"))

        assert len(coordinator._pending) == 2  # back on the queue
        assert health.losses == 1 and not health.retired
        assert _counter(coordinator, "dist/workers_lost") == 1
        assert _counter(coordinator, "dist/jobs_reassigned") == 2
        for job in batch:
            assert coordinator._attempts[job.key] == 1
            assert job.key not in coordinator._inflight

    def test_completed_jobs_are_not_requeued_on_loss(self, tmp_path):
        # The duplicate-race setup: one job finished before the worker
        # died, so only the unfinished one reassigns.
        coordinator = _coordinator(tmp_path)
        coordinator._shard_dir.mkdir(parents=True)
        health = _health(0, tmp_path)
        batch = coordinator._take_batch(health)
        done = batch[0]
        coordinator._record_result(
            health, {"event": "result", "key": done.key, "result": {}}
        )
        coordinator._on_worker_lost(health, batch, RuntimeError("boom"))
        assert [job.key for job in coordinator._pending] == [batch[1].key]
        assert _counter(coordinator, "dist/jobs_reassigned") == 1

    def test_worker_retires_after_exhausting_retries(self, tmp_path):
        coordinator = _coordinator(tmp_path, worker_retries=0)
        health = _health(0, tmp_path)
        batch = coordinator._take_batch(health)
        coordinator._on_worker_lost(health, batch, RuntimeError("boom"))
        assert health.retired
        assert _counter(coordinator, "dist/workers_retired") == 1

    def test_run_with_jobs_but_no_workers_is_an_error(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        with pytest.raises(DispatchError, match="at least one worker"):
            coordinator.run(())


class TestEmptyMatrix:
    def test_no_cells_never_touches_workers_or_cache(self, tmp_path):
        coordinator = DispatchCoordinator("test", [], cache_dir=tmp_path)
        assert coordinator.pending_jobs == 0
        report = coordinator.run(())  # zero endpoints: must not raise
        assert report.total == 0
        assert report.dispatched == 0 and report.completed == 0
        assert report.failures == []
        # No cache file, no shard directory, nothing created but stats.
        assert list(tmp_path.glob("results-v*.jsonl")) == []
        assert list(tmp_path.glob("*.dist-*")) == []
        assert (tmp_path / "dist-stats.json").exists()

    def test_fully_cached_matrix_leaves_cache_bytes_untouched(
        self, tmp_path, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "--trace", "sjeng.1", "--preset", "test"]) == 0
        [cache_file] = tmp_path.glob("results-v*.jsonl")
        before = cache_file.read_bytes()

        coordinator = DispatchCoordinator(
            "test", [(BASE_VICTIM_2MB, "sjeng.1")], cache_dir=tmp_path
        )
        assert coordinator.pending_jobs == 0
        assert coordinator.cached_cells == 1
        report = coordinator.run(())
        assert report.cached == 1 and report.dispatched == 0
        assert cache_file.read_bytes() == before

    def test_duplicate_cells_collapse(self, tmp_path):
        cells = sweep_cells(["sjeng.1", "sjeng.1"], [BASE_VICTIM_2MB])
        coordinator = DispatchCoordinator("test", cells, cache_dir=tmp_path)
        assert coordinator.total_cells == 1
        assert coordinator.pending_jobs == 1


def _dead_pid() -> int:
    """A pid guaranteed dead: a reaped child's."""
    import subprocess

    proc = subprocess.Popen(["true"])
    proc.wait()
    return proc.pid


class TestPartialFold:
    def test_fold_window_makes_results_durable_midflight(self, tmp_path):
        coordinator = _coordinator(tmp_path, fold_every=1)
        coordinator._shard_dir.mkdir(parents=True)
        health = _health(0, tmp_path)
        job = coordinator.jobs[0]
        coordinator._record_result(
            health, {"event": "result", "key": job.key, "result": {"ipc": 1.0}}
        )

        coordinator._maybe_fold()

        # The result is in the cache *now*, mid-dispatch: a kill -9
        # from here on cannot lose it.
        cache = coordinator.runner.cache_path
        assert dict(iter_cache_entries(cache)) == {job.key: {"ipc": 1.0}}
        assert _counter(coordinator, "dist/folds_partial") == 1
        replay = replay_journal(coordinator._journal.path)
        assert replay.completed == {job.key}
        assert replay.folded == {job.key}
        assert replay.staged == set()

    def test_empty_window_is_skipped(self, tmp_path):
        coordinator = _coordinator(tmp_path, fold_every=1)
        coordinator._maybe_fold()  # no results staged: nothing to fold
        assert _counter(coordinator, "dist/folds_partial") == 0
        assert coordinator.runner.cache_path.exists() is False

    def test_fold_every_zero_disables_partial_folds(self, tmp_path):
        coordinator = _coordinator(tmp_path, fold_every=0)
        coordinator._shard_dir.mkdir(parents=True)
        job = coordinator.jobs[0]
        coordinator._record_result(
            _health(0, tmp_path),
            {"event": "result", "key": job.key, "result": {"ipc": 1.0}},
        )
        coordinator._maybe_fold()
        assert _counter(coordinator, "dist/folds_partial") == 0
        assert coordinator.runner.cache_path.exists() is False

    def test_window_folds_only_new_results(self, tmp_path):
        coordinator = _coordinator(tmp_path, fold_every=1)
        coordinator._shard_dir.mkdir(parents=True)
        health = _health(0, tmp_path)
        first, second = coordinator.jobs
        coordinator._record_result(
            health, {"event": "result", "key": first.key, "result": {"a": 1}}
        )
        coordinator._maybe_fold()
        coordinator._record_result(
            health, {"event": "result", "key": second.key, "result": {"b": 2}}
        )
        coordinator._maybe_fold()
        replay = replay_journal(coordinator._journal.path)
        assert replay.folds == 2
        assert replay.folded == {first.key, second.key}
        cache = dict(iter_cache_entries(coordinator.runner.cache_path))
        assert cache == {first.key: {"a": 1}, second.key: {"b": 2}}
        assert _counter(coordinator, "dist/merged_new_entries") == 2


class TestJournalLifecycle:
    def test_live_foreign_journal_refuses_to_race(self, tmp_path):
        # pid 1 is always alive (and never us): the coordinator must
        # refuse to dispatch over another live dispatch's journal.
        probe = _coordinator(tmp_path)
        journal = DispatchJournal(journal_path(tmp_path, "test"))
        journal._append(
            {"t": "begin", "pid": 1, "preset": "test", "shard_dir": ""}
        )
        del probe
        with pytest.raises(DispatchError, match="another dispatch \\(pid 1\\)"):
            _coordinator(tmp_path)

    def test_ended_journal_is_silently_removed(self, tmp_path):
        journal = DispatchJournal(journal_path(tmp_path, "test"))
        journal._append({"t": "begin", "pid": 1, "shard_dir": ""})
        journal._append({"t": "end", "completed": 2, "failed": 0})
        coordinator = _coordinator(tmp_path)
        assert not journal.path.exists()
        assert _counter(coordinator, "dist/resumes") == 0

    def test_dead_journal_without_resume_is_discarded(self, tmp_path):
        journal = DispatchJournal(journal_path(tmp_path, "test"))
        journal._append({"t": "begin", "pid": _dead_pid(), "shard_dir": ""})
        coordinator = _coordinator(tmp_path)
        assert not journal.path.exists()
        assert _counter(coordinator, "dist/resumes") == 0
        assert _counter(coordinator, "dist/jobs_salvaged") == 0

    def test_resume_salvages_staged_results_before_resolution(self, tmp_path):
        # Learn the real cache key the matrix will resolve, then fake a
        # crashed coordinator that staged exactly that cell.
        probe = _coordinator(tmp_path)
        assert probe.pending_jobs == 2
        key = probe.jobs[0].key
        payload = {"ipc": 1.25}
        cache_path = probe.runner.cache_path
        shard_dir = cache_path.parent / f"{cache_path.name}.dist-{_dead_pid()}"
        shard_dir.mkdir(parents=True)
        (shard_dir / "worker-0.jsonl").write_text(
            encode_entry(key, payload) + "\n"
        )
        journal = DispatchJournal(journal_path(tmp_path, "test"))
        journal.begin(
            preset="test",
            total=2,
            cached=0,
            keys=[job.key for job in probe.jobs],
            shard_dir=shard_dir,
            resumed=False,
        )
        journal.result(key, "worker-0")
        # Overwrite the pid with a dead one (begin() records ours).
        text = journal.path.read_text()
        journal.remove()
        from repro.dist.journal import decode_record, encode_record

        lines = []
        for line in text.splitlines():
            record = decode_record(line)
            if record and record["t"] == "begin":
                record["pid"] = _dead_pid()
            lines.append(encode_record(record))
        journal.path.write_text("\n".join(lines) + "\n")

        coordinator = _coordinator(tmp_path, resume=True)

        # Salvage folded the staged cell in *before* resolution: it now
        # counts as cached and will never re-lease.
        assert coordinator.pending_jobs == 1
        assert coordinator.cached_cells == 1
        assert _counter(coordinator, "dist/resumes") == 1
        assert _counter(coordinator, "dist/jobs_salvaged") == 1
        assert dict(iter_cache_entries(cache_path))[key] == payload
        assert not journal.path.exists()
        # The dead coordinator's shard directory was reclaimed too.
        assert not shard_dir.exists()
        assert _counter(coordinator, "dist/stale_shards_reclaimed") == 1


class TestStaleShardReclaim:
    def test_dead_pid_shards_reclaimed_live_and_own_kept(self, tmp_path):
        probe = _coordinator(tmp_path)
        cache_path = probe.runner.cache_path
        dead = cache_path.parent / f"{cache_path.name}.dist-{_dead_pid()}"
        live = cache_path.parent / f"{cache_path.name}.dist-1"
        own = cache_path.parent / f"{cache_path.name}.dist-{os.getpid()}"
        for path in (dead, live, own):
            path.mkdir(parents=True)
        odd = cache_path.parent / f"{cache_path.name}.dist-notapid"
        odd.mkdir()

        coordinator = _coordinator(tmp_path)

        assert not dead.exists()
        assert live.exists()  # pid 1 is alive: never touched
        assert own.exists()
        assert odd.exists()  # unparseable suffix: left alone
        assert _counter(coordinator, "dist/stale_shards_reclaimed") == 1

"""Unit tests for the write-ahead dispatch journal.

The journal's whole job is surviving a coordinator killed at any byte:
replay must never raise, must recover every record before a tear, and
must count (not propagate) the tear itself.  The fuzz tests mirror the
trace-v3 discipline — truncate at every offset, flip a bit at every
offset — so the torn-tail guarantee is proven, not assumed.
"""

from __future__ import annotations

import os

import pytest

from repro.dist.journal import (
    DispatchJournal,
    decode_record,
    encode_record,
    journal_path,
    replay_journal,
)


def _populated(tmp_path, *, end: bool = False) -> DispatchJournal:
    """A journal with one of every record kind (optionally ended)."""
    journal = DispatchJournal(journal_path(tmp_path, "test"))
    journal.begin(
        preset="test",
        total=4,
        cached=1,
        keys=["k1", "k2", "k3"],
        shard_dir=tmp_path / "shards",
        resumed=False,
    )
    journal.lease("lease-1", "worker-0", ["k1", "k2"])
    journal.result("k1", "worker-0")
    journal.result("k2", "worker-0")
    journal.fold(1, ["k1"], partial=True)
    journal.failed("k3", "InjectedFault")
    if end:
        journal.end(completed=2, failed=1)
    return journal


class TestRecordCodec:
    def test_roundtrip(self):
        record = {"t": "lease", "id": "lease-1", "keys": ["a", "b"]}
        assert decode_record(encode_record(record)) == record

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "not a record",
            '{"t": "lease"}',  # no checksum
            '{"t": "lease"}#zzzzzzzz',  # malformed checksum
            '{"t": "lease"}#00000000',  # wrong checksum
            '[1, 2]#' + "0" * 8,  # not an object (checksum also wrong)
            encode_record({"no_kind": 1}),  # missing t
        ],
    )
    def test_torn_or_foreign_lines_decode_to_none(self, line):
        assert decode_record(line) is None

    def test_kind_must_be_string(self):
        assert decode_record(encode_record({"t": 42})) is None


class TestReplay:
    def test_full_replay(self, tmp_path):
        journal = _populated(tmp_path, end=True)
        replay = replay_journal(journal.path)
        assert replay.pid == os.getpid()
        assert replay.shard_dir == tmp_path / "shards"
        assert replay.completed == {"k1", "k2"}
        assert replay.folded == {"k1"}
        assert replay.staged == {"k2"}
        assert replay.failed == {"k3": "InjectedFault"}
        assert replay.leases == 1
        assert replay.folds == 1
        assert replay.ended
        assert replay.torn_lines == 0

    def test_unended_journal_replays_open(self, tmp_path):
        journal = _populated(tmp_path, end=False)
        assert not replay_journal(journal.path).ended

    def test_missing_file_is_an_empty_replay(self, tmp_path):
        replay = replay_journal(tmp_path / "absent.ndjson")
        assert replay.begin is None
        assert replay.pid is None
        assert replay.shard_dir is None
        assert not replay.ended

    def test_unknown_kinds_are_skipped(self, tmp_path):
        path = journal_path(tmp_path, "test")
        path.write_text(
            encode_record({"t": "from-the-future", "x": 1})
            + "\n"
            + encode_record({"t": "result", "key": "k9", "worker": "w"})
            + "\n"
        )
        replay = replay_journal(path)
        assert replay.completed == {"k9"}
        assert replay.torn_lines == 0

    def test_remove_unlinks_journal_and_lock(self, tmp_path):
        journal = _populated(tmp_path, end=True)
        lock = journal.path.with_name(journal.path.name + ".lock")
        assert journal.path.exists()
        journal.remove()
        assert not journal.path.exists()
        assert not lock.exists()
        journal.remove()  # idempotent


class TestTornTailFuzz:
    """kill -9 at any byte: replay never raises, prefix always recovers."""

    def test_truncation_at_every_offset_recovers_the_prefix(self, tmp_path):
        journal = _populated(tmp_path, end=True)
        data = journal.path.read_bytes()
        whole = replay_journal(journal.path)
        victim = tmp_path / "torn.ndjson"
        for offset in range(len(data)):
            victim.write_bytes(data[:offset])
            replay = replay_journal(victim)  # must never raise
            # Recovered state is a prefix of the full state, and the
            # cut line (if any) is counted, never half-parsed.
            assert replay.completed <= whole.completed
            assert replay.folded <= whole.folded
            assert replay.leases <= whole.leases
            assert replay.torn_lines <= 1
            intact_lines = data[:offset].count(b"\n")
            # A cut mid-line usually tears exactly one record — unless
            # it lands at a line's last byte, where the record is still
            # whole and only its newline is gone.
            cut_mid_line = offset > 0 and data[offset - 1 : offset] != b"\n"
            assert replay.torn_lines <= (1 if cut_mid_line else 0)
            assert (
                len(replay.completed) + len(replay.failed) + replay.leases
                <= intact_lines + 1
            )

    def test_flipped_bit_anywhere_is_detected_or_equivalent(self, tmp_path):
        journal = _populated(tmp_path, end=True)
        data = bytearray(journal.path.read_bytes())
        whole = replay_journal(journal.path)
        victim = tmp_path / "flipped.ndjson"
        for offset in range(len(data)):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0x10
            victim.write_bytes(bytes(corrupted))
            replay = replay_journal(victim)  # must never raise
            # Either the CRC catches the flip (one torn line) or the
            # flip landed in a newline and resplit the stream — never
            # a silently different accounting with zero tears.
            if replay.torn_lines == 0:
                assert replay.completed == whole.completed
                assert replay.failed == whole.failed
                assert replay.folded == whole.folded
            else:
                assert replay.torn_lines >= 1

"""Tests for the DDR3 timing model."""

import pytest

from repro.memory.dram import DRAMConfig, DRAMModel, DRAMTimings


class TestTimings:
    def test_paper_parameters(self):
        t = DRAMTimings()
        assert (t.tCL, t.tRCD, t.tRP, t.tRAS) == (15, 15, 15, 34)

    def test_latency_classes_ordered(self):
        t = DRAMTimings()
        assert t.row_hit_cycles < t.row_empty_cycles < t.row_conflict_cycles


class TestRowBuffer:
    def test_first_access_activates(self):
        dram = DRAMModel()
        dram.read(0, 0.0)
        assert dram.stat_activates == 1
        assert dram.stat_row_hits == 0

    def test_sequential_lines_hit_open_rows(self):
        dram = DRAMModel()
        # Lines interleave channel (bit 0) then bank; re-reading the same
        # line is a guaranteed row hit.
        dram.read(0, 0.0)
        latency_hit = dram.read(0, 10_000.0)
        assert dram.stat_row_hits == 1
        dram_far = DRAMModel()
        dram_far.read(0, 0.0)
        latency_conflict = dram_far.read(
            0 + DRAMConfig().channels * DRAMConfig().banks_per_channel * DRAMConfig().lines_per_row,
            10_000.0,
        )
        assert dram_far.stat_row_conflicts == 1
        assert latency_conflict > latency_hit

    def test_row_hit_rate(self):
        dram = DRAMModel()
        for _ in range(10):
            dram.read(0, 100_000.0 * _)
        assert dram.row_hit_rate == pytest.approx(0.9)


class TestQueueing:
    def test_back_to_back_requests_queue(self):
        dram = DRAMModel()
        first = dram.read(0, 0.0)
        # Same bank, same instant: must wait for the first to finish.
        second = dram.read(0, 0.0)
        assert second > first

    def test_different_channels_do_not_queue(self):
        dram = DRAMModel()
        a = dram.read(0, 0.0)  # channel 0
        b = dram.read(1, 0.0)  # channel 1
        assert b == pytest.approx(a)

    def test_spaced_requests_do_not_queue(self):
        dram = DRAMModel()
        first = dram.read(0, 0.0)
        relaxed = dram.read(0, 1_000_000.0)
        assert relaxed <= first  # row hit, no queueing

    def test_heavier_traffic_raises_average_latency(self):
        tight = DRAMModel()
        for i in range(64):
            tight.read(i, 0.0)
        sparse = DRAMModel()
        for i in range(64):
            sparse.read(i, i * 10_000.0)
        assert tight.average_read_latency > sparse.average_read_latency


class TestWrites:
    def test_writes_counted_but_not_stalling(self):
        dram = DRAMModel()
        dram.write(0, 0.0)
        assert dram.stat_writes == 1
        assert dram.stat_reads == 0

    def test_writes_occupy_banks(self):
        dram = DRAMModel()
        dram.write(0, 0.0)
        delayed = dram.read(0, 0.0)
        fresh = DRAMModel().read(0, 0.0)
        assert delayed > fresh

    def test_average_latency_zero_without_reads(self):
        assert DRAMModel().average_read_latency == 0.0

"""Tests for DRAM address mapping and configuration."""


from repro.memory.dram import DRAMConfig, DRAMModel


class TestAddressMapping:
    def test_adjacent_lines_interleave_channels(self):
        dram = DRAMModel()
        c0, _, _ = dram._map(0)
        c1, _, _ = dram._map(1)
        assert c0 != c1

    def test_channel_count_respected(self):
        dram = DRAMModel(DRAMConfig(channels=2))
        channels = {dram._map(addr)[0] for addr in range(64)}
        assert channels == {0, 1}

    def test_bank_spread(self):
        dram = DRAMModel()
        banks = {dram._map(addr)[1] for addr in range(0, 64, 2)}
        assert len(banks) == DRAMConfig().banks_per_channel

    def test_row_changes_beyond_row_size(self):
        cfg = DRAMConfig()
        dram = DRAMModel(cfg)
        lines_per_row_system = cfg.channels * cfg.banks_per_channel * cfg.lines_per_row
        _, _, row0 = dram._map(0)
        _, _, row1 = dram._map(lines_per_row_system)
        assert row1 == row0 + 1

    def test_same_bank_same_row_for_consecutive_same_channel_lines(self):
        dram = DRAMModel()
        c0, b0, r0 = dram._map(0)
        c2, b2, r2 = dram._map(0 + DRAMConfig().channels * DRAMConfig().banks_per_channel)
        assert c0 == c2
        assert b0 == b2
        assert r0 == r2


class TestLatencyComposition:
    def test_row_hit_faster_than_conflict(self):
        cfg = DRAMConfig()
        dram = DRAMModel(cfg)
        dram.read(0, 0.0)
        hit = dram.read(0, 1e6)
        far = cfg.channels * cfg.banks_per_channel * cfg.lines_per_row
        conflict = dram.read(far, 2e6)
        assert hit < conflict

    def test_minimum_latency_includes_controller_overhead(self):
        cfg = DRAMConfig()
        dram = DRAMModel(cfg)
        latency = dram.read(0, 0.0)
        assert latency >= 2 * cfg.controller_cycles

    def test_cpu_dram_clock_ratio_scales_latency(self):
        slow = DRAMModel(DRAMConfig(cpu_per_dram_cycle=10))
        fast = DRAMModel(DRAMConfig(cpu_per_dram_cycle=5))
        assert slow.read(0, 0.0) > fast.read(0, 0.0)

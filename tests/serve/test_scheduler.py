"""Scheduler-level tests: dedupe, admission control, drain.

These drive a real JobScheduler over a real ExperimentRunner (test
preset, tmp cache dir, one worker) inside ``asyncio.run`` — no sockets,
so every admission decision is observed synchronously.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.protocol import JobSpec, SubmitRequest
from repro.serve.protocol import (
    REJECT_DRAINING,
    REJECT_QUEUE_FULL,
    REJECT_QUOTA,
)
from repro.serve.scheduler import JobScheduler, SubmitRejected
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, PRESETS
from repro.sim.experiment import ExperimentRunner


def _runner(tmp_path, **kwargs):
    return ExperimentRunner(
        PRESETS["test"], cache_dir=tmp_path, strict=False, jobs=1, **kwargs
    )


def _request(request_id, *jobs, wait=True):
    return SubmitRequest(request_id=request_id, jobs=tuple(jobs), wait=wait)


JOB_A = JobSpec(trace="sjeng.1", machine=BASE_VICTIM_2MB)
JOB_B = JobSpec(trace="mcf.1", machine=BASE_VICTIM_2MB)
JOB_C = JobSpec(trace="sjeng.1", machine=BASELINE_2MB)


def _events_of(events, kind):
    return [e for e in events if e["event"] == kind]


async def _run_to_drain(scheduler):
    """Serve everything queued, then drain and wait for the loop to exit."""
    task = asyncio.create_task(scheduler.run())
    scheduler.drain()
    await task


class TestDedupe:
    def test_strict_runner_refused(self, tmp_path):
        strict = ExperimentRunner(PRESETS["test"], cache_dir=tmp_path, jobs=1)
        with pytest.raises(AssertionError):
            JobScheduler(strict)

    def test_identical_queued_job_dedupes(self, tmp_path):
        """Two submissions of one job queue exactly one simulation."""
        scheduler = JobScheduler(_runner(tmp_path))
        first: list[dict] = []
        second: list[dict] = []

        async def scenario():
            scheduler.submit("c1", _request("r1", JOB_A), first.append)
            scheduler.submit("c2", _request("r2", JOB_A), second.append)
            assert scheduler.inflight_jobs == 1  # one unique job, two waiters
            await _run_to_drain(scheduler)

        asyncio.run(scenario())
        assert _events_of(first, "accepted")[0]["enqueued"] == 1
        assert _events_of(second, "accepted")[0]["deduped"] == 1
        for events in (first, second):
            [result] = _events_of(events, "result")
            assert result["trace"] == "sjeng.1"
            [done] = _events_of(events, "done")
            assert done == {
                "event": "done",
                "id": done["id"],
                "jobs": 1,
                "completed": 1,
                "failed": 0,
            }
        registry = scheduler.registry.as_dict()
        assert registry["serve/jobs_deduped"]["value"] == 1
        assert registry["serve/jobs_enqueued"]["value"] == 1

    def test_cache_hit_fast_path(self, tmp_path):
        """A cached job resolves at submit time, without touching the queue."""
        runner = _runner(tmp_path)
        scheduler = JobScheduler(runner)
        warm: list[dict] = []
        hot: list[dict] = []

        async def scenario():
            scheduler.submit("c1", _request("warm", JOB_A), warm.append)
            await _run_to_drain(scheduler)
            # The second submission happens after drain: were it queued,
            # it could never resolve — proving the fast path is a pure
            # cache lookup is exactly that it resolves anyway.
            scheduler._draining = False
            scheduler.submit("c2", _request("hot", JOB_A), hot.append)

        asyncio.run(scenario())
        accepted = _events_of(hot, "accepted")[0]
        assert accepted["cache_hits"] == 1
        assert accepted["enqueued"] == 0
        assert _events_of(hot, "result") and _events_of(hot, "done")
        assert scheduler.registry.as_dict()["serve/jobs_cache_hit"]["value"] == 1

    def test_no_wait_submission_gets_no_result_stream(self, tmp_path):
        scheduler = JobScheduler(_runner(tmp_path))
        events: list[dict] = []

        async def scenario():
            scheduler.submit(
                "c1", _request("r1", JOB_A, wait=False), events.append
            )
            await _run_to_drain(scheduler)

        asyncio.run(scenario())
        assert _events_of(events, "accepted")
        assert not _events_of(events, "result")
        # The terminal done still arrives (cheap, lets --wait-less
        # clients that keep the socket open learn completion).
        assert _events_of(events, "done")


class TestAdmissionControl:
    def test_quota_rejection(self, tmp_path):
        scheduler = JobScheduler(_runner(tmp_path), client_quota=2)
        events: list[dict] = []

        async def scenario():
            scheduler.submit("c1", _request("r1", JOB_A, JOB_B), events.append)
            with pytest.raises(SubmitRejected) as excinfo:
                scheduler.submit("c1", _request("r2", JOB_C), events.append)
            assert excinfo.value.reason == REJECT_QUOTA
            # Another client still has headroom: quotas are per client.
            scheduler.submit("c2", _request("r3", JOB_C), events.append)
            await _run_to_drain(scheduler)

        asyncio.run(scenario())
        registry = scheduler.registry.as_dict()
        assert registry["serve/submissions_rejected"]["value"] == 1
        assert registry["serve/jobs_rejected"]["value"] == 1

    def test_queue_full_rejection(self, tmp_path):
        scheduler = JobScheduler(_runner(tmp_path), max_queue=1)
        events: list[dict] = []

        async def scenario():
            scheduler.submit("c1", _request("r1", JOB_A), events.append)
            with pytest.raises(SubmitRejected) as excinfo:
                scheduler.submit("c2", _request("r2", JOB_B), events.append)
            assert excinfo.value.reason == REJECT_QUEUE_FULL
            # A duplicate of the queued job adds no new work, so it is
            # admitted even at the queue bound.
            scheduler.submit("c3", _request("r3", JOB_A), events.append)
            await _run_to_drain(scheduler)

        asyncio.run(scenario())
        assert len(_events_of(events, "done")) == 2

    def test_draining_rejection(self, tmp_path):
        scheduler = JobScheduler(_runner(tmp_path))
        scheduler.drain()
        with pytest.raises(SubmitRejected) as excinfo:
            scheduler.submit("c1", _request("r1", JOB_A), lambda e: None)
        assert excinfo.value.reason == REJECT_DRAINING

    def test_detach_releases_quota_and_silences_events(self, tmp_path):
        scheduler = JobScheduler(_runner(tmp_path), client_quota=1)
        ghost: list[dict] = []
        fresh: list[dict] = []

        async def scenario():
            scheduler.submit("c1", _request("r1", JOB_A), ghost.append)
            scheduler.detach("c1")
            before = len(ghost)
            # Quota released: the "reconnected" client is not locked out
            # by its own ghost...
            scheduler.submit("c1", _request("r2", JOB_B), fresh.append)
            await _run_to_drain(scheduler)
            # ...and the detached submission never emits again.
            assert len(ghost) == before

        asyncio.run(scenario())
        assert _events_of(fresh, "done")


class TestStatus:
    def test_status_reports_queue_and_counters(self, tmp_path):
        scheduler = JobScheduler(_runner(tmp_path))

        async def scenario():
            scheduler.submit("c1", _request("r1", JOB_A), lambda e: None)
            status = scheduler.status()
            assert status["queue_depth"] == 1
            assert status["inflight_jobs"] == 1
            assert status["draining"] is False
            assert status["counters"]["serve/jobs_enqueued"] == 1
            await _run_to_drain(scheduler)
            assert scheduler.status()["inflight_jobs"] == 0

        asyncio.run(scenario())

"""End-to-end service tests through real ``repro serve`` subprocesses.

The tentpole invariant, now with a server in the middle: any mix of
concurrent clients leaves the shared cache byte-identical to a clean
serial run of the union of their jobs.  These tests drive the same code
path CI's serve-smoke job and two real terminals would take.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.scheduler import BATCH_DELAY_ENV
from repro.serve.server import READY_PREFIX, SOCKET_ENV
from repro.sim.experiment import CACHE_DIR_ENV
from repro.sim.resultcache import scan_cache_file

TIMEOUT = 300


def _env(cache_dir: Path, **extra: str) -> dict[str, str]:
    env = os.environ.copy()
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env[CACHE_DIR_ENV] = str(cache_dir)
    env.pop(SOCKET_ENV, None)
    env.pop(BATCH_DELAY_ENV, None)
    env.update(extra)
    return env


def _repro(args: tuple[str, ...], env: dict[str, str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _cache_file(directory: Path) -> Path:
    [path] = directory.glob("results-v*.jsonl")
    return path


class _Server:
    """A real ``repro serve`` subprocess, ready once entered."""

    def __init__(self, cache_dir: Path, *args: str, **env: str):
        self.cache_dir = cache_dir
        self.args = args
        self.env = _env(cache_dir, **env)
        self.proc: subprocess.Popen | None = None

    def __enter__(self) -> "_Server":
        self.proc = _repro(
            ("serve", "--preset", "test", "--jobs", "2") + self.args, self.env
        )
        assert self.proc.stdout is not None
        ready = self.proc.stdout.readline()
        assert ready.startswith(READY_PREFIX), self.proc.stderr.read()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            self.proc.wait(timeout=TIMEOUT)

    def stop(self) -> int:
        """SIGTERM drain; returns the exit code."""
        assert self.proc is not None
        self.proc.send_signal(signal.SIGTERM)
        self.proc.communicate(timeout=TIMEOUT)
        return self.proc.returncode


def _submit(cache_dir: Path, traces: list[str], *extra: str, **env: str):
    args = ["submit"]
    for trace in traces:
        args += ["--trace", trace]
    return _repro(tuple(args) + ("--sweep", "--wait", *extra), _env(cache_dir, **env))


class TestByteIdentity:
    def test_concurrent_clients_match_serial_byte_for_byte(self, tmp_path):
        shared = tmp_path / "shared"
        serial = tmp_path / "serial"

        # Three concurrent clients, overlapping job sets, one duplicate
        # sweep, with the dedupe window widened so overlap lands while
        # jobs are still in flight.
        with _Server(shared, **{BATCH_DELAY_ENV: "0.5"}) as server:
            clients = [
                _submit(shared, ["sjeng.1", "mcf.1"], "--json"),
                _submit(shared, ["sjeng.1", "astar.1"], "--json"),
                _submit(shared, ["sjeng.1", "mcf.1"], "--json"),
            ]
            for client in clients:
                out, err = client.communicate(timeout=TIMEOUT)
                assert client.returncode == 0, err
                summary = json.loads(out)
                assert summary["done"]["failed"] == 0
            assert server.stop() == 0

        # Serial reference: one client, the union of the jobs, served
        # sequentially through a fresh server.
        with _Server(serial) as server:
            client = _submit(serial, ["sjeng.1", "mcf.1", "astar.1"])
            _, err = client.communicate(timeout=TIMEOUT)
            assert client.returncode == 0, err
            assert server.stop() == 0

        assert (
            _cache_file(shared).read_bytes() == _cache_file(serial).read_bytes()
        )
        assert scan_cache_file(_cache_file(shared)).clean

        # The duplicate sweep must have been coalesced, not recomputed.
        stats = json.loads((shared / "serve-stats.json").read_text())
        counters = stats["counters"]
        deduped = counters.get("serve/jobs_deduped", {}).get("value", 0)
        cache_hits = counters.get("serve/jobs_cache_hit", {}).get("value", 0)
        assert deduped + cache_hits > 0

    def test_dedupe_against_in_flight_jobs(self, tmp_path):
        """With the batch delayed, a duplicate submit coalesces in flight."""
        cache_dir = tmp_path / "cache"
        with _Server(cache_dir, **{BATCH_DELAY_ENV: "2.0"}) as server:
            first = _submit(cache_dir, ["sjeng.1"])
            time.sleep(0.5)  # let the first submit land and start its delay
            second = _submit(cache_dir, ["sjeng.1"])
            for client in (first, second):
                _, err = client.communicate(timeout=TIMEOUT)
                assert client.returncode == 0, err
            assert server.stop() == 0
        stats = json.loads((cache_dir / "serve-stats.json").read_text())
        assert stats["counters"]["serve/jobs_deduped"]["value"] == 2
        assert stats["counters"]["serve/jobs_enqueued"]["value"] == 2


class TestAdmissionAndDrain:
    def test_quota_rejection_is_structured(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with _Server(cache_dir, "--client-quota", "1", **{BATCH_DELAY_ENV: "2.0"}):
            # 2 jobs (the sweep pair) against a quota of 1.
            client = _submit(cache_dir, ["sjeng.1"], "--json")
            out, err = client.communicate(timeout=TIMEOUT)
            assert client.returncode == 1
            assert "rejected" in err
            assert json.loads(out)["rejected"]["reason"] == "quota-exceeded"

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with _Server(cache_dir) as server:
            client = _submit(cache_dir, ["sjeng.1"])
            _, err = client.communicate(timeout=TIMEOUT)
            assert client.returncode == 0, err
            assert server.stop() == 0
        assert not (cache_dir / "serve.sock").exists()  # socket removed
        stats = json.loads((cache_dir / "serve-stats.json").read_text())
        assert stats["final"] is True
        assert stats["counters"]["serve/jobs_completed"]["value"] == 2

    def test_stale_socket_is_reclaimed_on_startup(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        import socket as socketlib

        stale = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        stale.bind(str(cache_dir / "serve.sock"))
        stale.close()  # simulates a killed server's leftover
        with _Server(cache_dir) as server:
            client = _submit(cache_dir, ["sjeng.1"])
            _, err = client.communicate(timeout=TIMEOUT)
            assert client.returncode == 0, err
            assert server.stop() == 0


class TestClientErrors:
    def test_submit_without_server_exits_2_clean(self, tmp_path):
        client = _submit(tmp_path, ["sjeng.1"])
        out, err = client.communicate(timeout=60)
        assert client.returncode == 2
        assert "no server socket" in err
        assert "Traceback" not in err

    def test_submit_against_stale_socket_exits_2_clean(self, tmp_path):
        import socket as socketlib

        stale = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        stale.bind(str(tmp_path / "serve.sock"))
        stale.close()
        client = _submit(tmp_path, ["sjeng.1"])
        out, err = client.communicate(timeout=60)
        assert client.returncode == 2
        assert "stale socket" in err
        assert "Traceback" not in err

    def test_serve_refuses_live_socket_exits_2(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with _Server(cache_dir):
            rival = _repro(("serve", "--preset", "test"), _env(cache_dir))
            _, err = rival.communicate(timeout=60)
            assert rival.returncode == 2
            assert "already listening" in err
            assert "Traceback" not in err

    def test_serve_status_without_server_exits_2(self, tmp_path):
        proc = _repro(("serve-status",), _env(tmp_path))
        _, err = proc.communicate(timeout=60)
        assert proc.returncode == 2
        assert "no server socket" in err

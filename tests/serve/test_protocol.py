"""Unit tests for the serve wire protocol.

Every way a confused or hostile peer can hand us a line we must not act
on — oversized, non-UTF-8, non-JSON, wrong shape, unknown fields, bad
machine configs — must raise ProtocolError at the boundary, before any
simulation state is touched.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    MAX_JOBS_PER_SUBMIT,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    machine_to_wire,
    parse_hello,
    parse_lease,
    parse_machine,
    parse_ping,
    parse_submit,
)
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB

TRACES = frozenset({"sjeng.1", "mcf.1"})


class TestFrames:
    def test_roundtrip_is_canonical(self):
        frame = encode_frame({"b": 1, "a": [2, 3]})
        assert frame.endswith(b"\n")
        assert frame == b'{"a": [2, 3], "b": 1}\n'
        assert decode_frame(frame) == {"a": [2, 3], "b": 1}

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"pad": "x" * MAX_FRAME_BYTES})

    def test_oversized_decode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    @pytest.mark.parametrize(
        "raw",
        [
            b"",
            b"\n",
            b"   \n",
            b"\xff\xfe garbage",
            b"{not json}\n",
            b"[1, 2, 3]\n",
            b'"just a string"\n',
            b"42\n",
        ],
    )
    def test_malformed_frames_rejected(self, raw):
        with pytest.raises(ProtocolError):
            decode_frame(raw)

    def test_str_input_accepted(self):
        assert decode_frame('{"op": "status"}') == {"op": "status"}


class TestMachineSpec:
    def test_default_is_validated_base_victim(self):
        machine = parse_machine(None)
        assert machine.arch == "base-victim"

    def test_roundtrip_through_wire_form(self):
        for machine in (BASELINE_2MB, BASE_VICTIM_2MB):
            assert parse_machine(machine_to_wire(machine)) == machine

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown machine field"):
            parse_machine({"waze": 16})

    @pytest.mark.parametrize(
        "spec",
        [
            {"ways": "sixteen"},
            {"ways": True},
            {"sets_mult": "1.0"},
            {"arch": 7},
            "base-victim",
        ],
    )
    def test_wrong_types_rejected(self, spec):
        with pytest.raises(ProtocolError):
            parse_machine(spec)

    def test_invalid_config_rejected_eagerly(self):
        # A structurally fine spec with a semantically bad value must
        # fail here, not inside a worker process.
        with pytest.raises(ProtocolError):
            parse_machine({"policy": "definitely-not-a-policy"})


class TestHello:
    def test_valid_hello_parses(self):
        request = parse_hello({"op": "hello", "version": PROTOCOL_VERSION})
        assert request.version == PROTOCOL_VERSION

    def test_out_of_range_version_still_parses(self):
        # Version policy is an admission decision (a structured
        # ``version-unsupported`` reject), not a protocol violation —
        # the frame itself must parse so the connection survives.
        assert parse_hello({"op": "hello", "version": 99}).version == 99
        old = MIN_PROTOCOL_VERSION - 1
        assert parse_hello({"op": "hello", "version": old}).version == old

    @pytest.mark.parametrize("version", ["2", 2.0, True, None])
    def test_non_integer_version_rejected(self, version):
        with pytest.raises(ProtocolError, match="integer 'version'"):
            parse_hello({"op": "hello", "version": version})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown hello field"):
            parse_hello({"op": "hello", "version": 2, "client": "me"})


class TestPing:
    def test_valid_ping_parses(self):
        assert parse_ping({"op": "ping", "id": "hb-1"}).ping_id == "hb-1"

    def test_id_is_optional(self):
        assert parse_ping({"op": "ping"}).ping_id == ""

    @pytest.mark.parametrize("ping_id", [7, None, True, ["hb"]])
    def test_non_string_id_rejected(self, ping_id):
        with pytest.raises(ProtocolError, match="'id' must be a string"):
            parse_ping({"op": "ping", "id": ping_id})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown ping field"):
            parse_ping({"op": "ping", "id": "hb-1", "payload": "x"})

    def test_ping_is_a_known_op_and_pong_a_known_event(self):
        assert "ping" in protocol.REQUEST_OPS
        assert "pong" in protocol.EVENT_KINDS
        assert protocol.PING_MIN_VERSION == 3
        assert PROTOCOL_VERSION >= protocol.PING_MIN_VERSION


class TestLease:
    def _frame(self, **overrides):
        frame = {
            "op": "lease",
            "id": "lease-1",
            "jobs": [{"trace": "sjeng.1"}, {"trace": "mcf.1"}],
        }
        frame.update(overrides)
        return frame

    def test_valid_lease_parses(self):
        request = parse_lease(self._frame(), TRACES)
        assert request.lease_id == "lease-1"
        assert [job.trace for job in request.jobs] == ["sjeng.1", "mcf.1"]

    def test_missing_id_rejected(self):
        with pytest.raises(ProtocolError, match="'id'"):
            parse_lease(self._frame(id=""), TRACES)

    def test_empty_jobs_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_lease(self._frame(jobs=[]), TRACES)

    def test_too_many_jobs_rejected(self):
        jobs = [{"trace": "sjeng.1"}] * (MAX_JOBS_PER_SUBMIT + 1)
        with pytest.raises(ProtocolError, match="per-request limit"):
            parse_lease(self._frame(jobs=jobs), TRACES)

    def test_unknown_field_rejected(self):
        # ``wait`` is a submit field; a lease always streams.
        with pytest.raises(ProtocolError, match="unknown lease field"):
            parse_lease(self._frame(wait=True), TRACES)

    def test_unknown_trace_rejected(self):
        with pytest.raises(ProtocolError, match="unknown trace"):
            parse_lease(self._frame(jobs=[{"trace": "nope.1"}]), TRACES)


class TestSubmit:
    def _frame(self, **overrides):
        frame = {
            "op": "submit",
            "id": "req-1",
            "jobs": [{"trace": "sjeng.1"}],
            "wait": True,
        }
        frame.update(overrides)
        return frame

    def test_valid_submit_parses(self):
        request = parse_submit(self._frame(), TRACES)
        assert request.request_id == "req-1"
        assert request.wait is True
        assert [job.trace for job in request.jobs] == ["sjeng.1"]

    def test_missing_id_rejected(self):
        with pytest.raises(ProtocolError, match="'id'"):
            parse_submit(self._frame(id=""), TRACES)

    def test_unknown_trace_rejected(self):
        with pytest.raises(ProtocolError, match="unknown trace"):
            parse_submit(
                self._frame(jobs=[{"trace": "no-such-trace"}]), TRACES
            )

    def test_empty_jobs_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_submit(self._frame(jobs=[]), TRACES)

    def test_non_bool_wait_rejected(self):
        with pytest.raises(ProtocolError, match="wait"):
            parse_submit(self._frame(wait="yes"), TRACES)

    def test_unknown_job_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job field"):
            parse_submit(
                self._frame(jobs=[{"trace": "sjeng.1", "preset": "test"}]),
                TRACES,
            )

    def test_too_many_jobs_rejected(self):
        jobs = [{"trace": "sjeng.1"}] * (MAX_JOBS_PER_SUBMIT + 1)
        with pytest.raises(ProtocolError, match="per-request limit"):
            parse_submit(self._frame(jobs=jobs), TRACES)

    def test_job_wire_roundtrip(self):
        request = parse_submit(
            self._frame(
                jobs=[{"trace": "mcf.1", "machine": {"arch": "uncompressed"}}]
            ),
            TRACES,
        )
        wire = request.jobs[0].to_wire()
        assert wire["trace"] == "mcf.1"
        assert json.loads(json.dumps(wire)) == wire  # JSON-serialisable
        reparsed = protocol.parse_job(wire, TRACES)
        assert reparsed == request.jobs[0]

"""In-process server tests: protocol errors, disconnects, stale sockets.

These run the real ExperimentServer inside the test's event loop and
talk to it over a real unix socket — but without subprocesses, so
failure modes (oversized frames, mid-stream disconnects) can be staged
byte by byte.
"""

from __future__ import annotations

import asyncio
import json
import socket as socketlib

import pytest

from repro.serve.protocol import MAX_FRAME_BYTES
from repro.sim.config import BASE_VICTIM_2MB
from repro.serve.server import (
    ExperimentServer,
    ServeError,
    parse_tcp,
    reclaim_stale_socket,
)

TIMEOUT = 120.0


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


class _Harness:
    """One live in-process server plus client plumbing."""

    def __init__(self, tmp_path):
        self.socket_path = tmp_path / "serve.sock"
        self.server = ExperimentServer(
            "test",
            socket_path=self.socket_path,
            cache_dir=tmp_path / "cache",
            jobs=1,
        )
        self._task: asyncio.Task | None = None

    async def __aenter__(self):
        self._task = asyncio.create_task(self.server.run())
        while not self.socket_path.exists():
            await asyncio.sleep(0.01)
        return self

    async def __aexit__(self, *exc_info):
        self.server.scheduler.drain()
        assert await self._task == 0

    async def connect(self):
        return await asyncio.open_unix_connection(
            str(self.socket_path), limit=MAX_FRAME_BYTES + 4096
        )

    async def send(self, writer, raw: bytes):
        writer.write(raw)
        await writer.drain()

    async def event(self, reader) -> dict:
        line = await reader.readline()
        assert line, "server closed the stream before replying"
        return json.loads(line)


class TestProtocolViolations:
    def test_malformed_frame_gets_error_event_and_close(self, tmp_path):
        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                await h.send(writer, b"{this is not json}\n")
                error = await h.event(reader)
                assert error["event"] == "error"
                assert "JSON" in error["message"]
                assert await reader.readline() == b""  # connection closed
                writer.close()
                # The server survives: a fresh connection still works.
                reader2, writer2 = await h.connect()
                await h.send(writer2, b'{"op": "status"}\n')
                status = await h.event(reader2)
                assert status["event"] == "status"
                writer2.close()
                counters = status["counters"]
                assert counters["serve/protocol_errors"] == 1

        _run(scenario())

    def test_oversized_frame_gets_error_event(self, tmp_path):
        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                await h.send(writer, b"x" * (MAX_FRAME_BYTES + 4096))
                error = await h.event(reader)
                assert error["event"] == "error"
                assert "limit" in error["message"]
                writer.close()

        _run(scenario())

    def test_unknown_op_gets_error_event(self, tmp_path):
        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                await h.send(writer, b'{"op": "dance"}\n')
                error = await h.event(reader)
                assert error["event"] == "error"
                assert "unknown op" in error["message"]
                writer.close()

        _run(scenario())

    def test_invalid_job_gets_error_event(self, tmp_path):
        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                frame = {
                    "op": "submit",
                    "id": "r1",
                    "jobs": [{"trace": "no-such-trace"}],
                }
                await h.send(writer, json.dumps(frame).encode() + b"\n")
                error = await h.event(reader)
                assert error["event"] == "error"
                assert "unknown trace" in error["message"]
                writer.close()

        _run(scenario())


class TestDisconnect:
    def test_mid_stream_disconnect_leaves_server_healthy(self, tmp_path):
        """A client that vanishes mid-submit detaches; its job still runs."""

        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                frame = {
                    "op": "submit",
                    "id": "r1",
                    "jobs": [{"trace": "sjeng.1"}],
                    "wait": True,
                }
                await h.send(writer, json.dumps(frame).encode() + b"\n")
                accepted = await h.event(reader)
                assert accepted["event"] == "accepted"
                writer.close()  # vanish before any result arrives

                # The server keeps serving other clients...
                reader2, writer2 = await h.connect()
                await h.send(writer2, b'{"op": "status"}\n')
                assert (await h.event(reader2))["event"] == "status"
                writer2.close()

                # ...and the orphaned job still completes into the cache.
                while not h.server.scheduler.idle:
                    await asyncio.sleep(0.05)
            key = h.server.runner.job_key(BASE_VICTIM_2MB, "sjeng.1")
            assert h.server.runner.cached_payload(key) is not None

        _run(scenario())


class TestHeartbeat:
    def test_ping_before_v3_handshake_is_rejected(self, tmp_path):
        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                await h.send(writer, b'{"op": "ping", "id": "hb-0"}\n')
                rejected = await h.event(reader)
                assert rejected["event"] == "rejected"
                assert rejected["reason"] == "version-unsupported"
                assert rejected["id"] == "hb-0"
                assert "version >= 3" in rejected["detail"]
                # The reject is an admission decision, not a protocol
                # error — the connection survives and can handshake up.
                await h.send(writer, b'{"op": "hello", "version": 3}\n')
                assert (await h.event(reader))["event"] == "hello"
                await h.send(writer, b'{"op": "status"}\n')
                counters = (await h.event(reader))["counters"]
                assert counters["serve/version_rejected"] == 1
                writer.close()

        _run(scenario())

    def test_ping_after_v3_hello_pongs_with_echoed_id(self, tmp_path):
        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                await h.send(writer, b'{"op": "hello", "version": 3}\n')
                hello = await h.event(reader)
                assert hello["event"] == "hello"
                assert hello["protocol"] == 3
                await h.send(writer, b'{"op": "ping", "id": "lease-1-hb-7"}\n')
                pong = await h.event(reader)
                assert pong["event"] == "pong"
                assert pong["id"] == "lease-1-hb-7"
                assert isinstance(pong["pid"], int)
                await h.send(writer, b'{"op": "status"}\n')
                counters = (await h.event(reader))["counters"]
                assert counters["serve/pings"] == 1
                writer.close()

        _run(scenario())

    def test_ping_on_v2_connection_is_rejected(self, tmp_path):
        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                await h.send(writer, b'{"op": "hello", "version": 2}\n')
                assert (await h.event(reader))["event"] == "hello"
                await h.send(writer, b'{"op": "ping"}\n')
                rejected = await h.event(reader)
                assert rejected["event"] == "rejected"
                assert rejected["reason"] == "version-unsupported"
                assert rejected["id"] == ""  # id defaults to empty
                writer.close()

        _run(scenario())

    def test_unsupported_hello_falls_back_on_the_same_socket(self, tmp_path):
        """The v3→v2 negotiation path: reject leaves the stream usable."""

        async def scenario():
            async with _Harness(tmp_path) as h:
                reader, writer = await h.connect()
                await h.send(writer, b'{"op": "hello", "version": 99}\n')
                rejected = await h.event(reader)
                assert rejected["event"] == "rejected"
                assert rejected["reason"] == "version-unsupported"
                await h.send(writer, b'{"op": "hello", "version": 3}\n')
                hello = await h.event(reader)
                assert hello["event"] == "hello"
                assert hello["server_protocol"] == 3
                writer.close()

        _run(scenario())


class TestStaleSocket:
    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        path = tmp_path / "stale.sock"
        listener = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        listener.bind(str(path))
        listener.close()  # dead server: file remains, nothing accepts
        assert path.exists()
        assert reclaim_stale_socket(path) is True
        assert not path.exists()

    def test_missing_socket_is_a_noop(self, tmp_path):
        assert reclaim_stale_socket(tmp_path / "absent.sock") is False

    def test_live_server_is_never_clobbered(self, tmp_path):
        path = tmp_path / "live.sock"
        listener = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        listener.bind(str(path))
        listener.listen(1)
        try:
            with pytest.raises(ServeError, match="already listening"):
                reclaim_stale_socket(path)
            assert path.exists()
        finally:
            listener.close()


class TestParseTcp:
    def test_valid_specs(self):
        assert parse_tcp("127.0.0.1:8123") == ("127.0.0.1", 8123)
        assert parse_tcp("[::1]:8123") == ("::1", 8123)

    @pytest.mark.parametrize("spec", ["8123", "host:", "host:abc", ":8123"])
    def test_invalid_specs(self, spec):
        with pytest.raises(ServeError):
            parse_tcp(spec)

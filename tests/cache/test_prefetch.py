"""Tests for the multi-stream prefetcher."""

import pytest

from repro.cache.prefetch import StreamPrefetcher


class TestTraining:
    def test_untrained_stream_issues_nothing(self):
        pf = StreamPrefetcher(degree=2)
        assert pf.observe(100) == []

    def test_two_consistent_strides_train(self):
        pf = StreamPrefetcher(degree=2)
        pf.observe(100)
        pf.observe(101)  # stride 1 recorded
        out = pf.observe(102)  # stride confirmed: trained
        assert out == [103, 104]

    def test_trained_stream_keeps_prefetching(self):
        pf = StreamPrefetcher(degree=1)
        for addr in (100, 101, 102):
            pf.observe(addr)
        assert pf.observe(103) == [104]

    def test_negative_stride(self):
        pf = StreamPrefetcher(degree=2)
        for addr in (110, 108, 106):
            pf.observe(addr)
        assert pf.observe(104) == [102, 100]

    def test_stride_change_retrains(self):
        pf = StreamPrefetcher(degree=2)
        for addr in (100, 101, 102):
            pf.observe(addr)
        assert pf.observe(110) == []  # broken stride: retrain

    def test_same_line_repeat_does_not_untrain(self):
        pf = StreamPrefetcher(degree=1)
        for addr in (100, 101, 102):
            pf.observe(addr)
        pf.observe(102)
        assert pf.observe(103) == [104]


class TestPageBoundaries:
    def test_prefetch_stays_within_page(self):
        pf = StreamPrefetcher(degree=4)
        # Lines 60..63 are at the end of page 0 (64 lines per page).
        for addr in (60, 61, 62):
            pf.observe(addr)
        out = pf.observe(63)
        assert out == []  # nothing beyond line 63 within the page

    def test_streams_in_different_pages_are_independent(self):
        pf = StreamPrefetcher(degree=1)
        for addr in (0, 1, 2):
            pf.observe(addr)
        # A different page does not disturb page 0's stream.
        pf.observe(1000)
        assert pf.observe(3) == [4]


class TestTableManagement:
    def test_table_is_bounded(self):
        pf = StreamPrefetcher(degree=1, table_size=4)
        for page in range(10):
            pf.observe(page * 64)
        assert len(pf._table) <= 4

    def test_degree_zero_disables(self):
        pf = StreamPrefetcher(degree=0)
        for addr in (100, 101, 102, 103):
            assert pf.observe(addr) == []

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(degree=-1)

    def test_invalid_table_size_rejected(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(table_size=0)

    def test_stats_count_issues(self):
        pf = StreamPrefetcher(degree=2)
        for addr in (100, 101, 102, 103):
            pf.observe(addr)
        assert pf.stat_trainings == 1
        assert pf.stat_issued >= 2

"""Tests for the baseline replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.replacement import (
    CharPolicy,
    LRUPolicy,
    make_policy,
    NRUPolicy,
    POLICIES,
    RandomPolicy,
    SRRIPPolicy,
)
from repro.cache.replacement.base import DeterministicRandom


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy()
        state = policy.make_set_state(4, 0)
        for way in range(4):
            policy.on_fill(state, way)
        policy.on_hit(state, 0)  # 1 is now LRU
        assert policy.choose_victim(state) == 1

    def test_fill_is_mru(self):
        policy = LRUPolicy()
        state = policy.make_set_state(4, 0)
        for way in range(4):
            policy.on_fill(state, way)
        policy.on_fill(state, 0)
        assert policy.choose_victim(state) == 1

    def test_stack_order(self):
        policy = LRUPolicy()
        state = policy.make_set_state(3, 0)
        for way in (2, 0, 1):
            policy.on_fill(state, way)
        assert policy.stack_order(state) == [1, 0, 2]

    def test_eligible_victims_is_bottom_half(self):
        policy = LRUPolicy()
        state = policy.make_set_state(4, 0)
        for way in (0, 1, 2, 3):
            policy.on_fill(state, way)
        assert policy.eligible_victims(state) == [0, 1]


class TestNRU:
    def test_first_unreferenced_is_victim(self):
        policy = NRUPolicy()
        state = policy.make_set_state(4, 0)
        for way in range(4):
            policy.on_fill(state, way)
        # Everything referenced: choose_victim resets all and evicts at hand.
        victim = policy.choose_victim(state)
        assert 0 <= victim < 4
        # After the reset, other ways are unreferenced.
        assert not all(state.referenced)

    def test_hit_protects(self):
        policy = NRUPolicy()
        state = policy.make_set_state(2, 0)
        policy.on_fill(state, 0)
        policy.on_fill(state, 1)
        first = policy.choose_victim(state)  # resets bits
        policy.on_hit(state, 1 - first)
        assert policy.choose_victim(state) != 1 - first

    def test_eligible_victims_excludes_referenced(self):
        policy = NRUPolicy()
        state = policy.make_set_state(4, 0)
        policy.on_fill(state, 2)
        eligible = policy.eligible_victims(state)
        assert 2 not in eligible
        assert sorted(eligible) == [0, 1, 3]

    def test_eligible_victims_ages_when_all_referenced(self):
        policy = NRUPolicy()
        state = policy.make_set_state(2, 0)
        policy.on_fill(state, 0)
        policy.on_fill(state, 1)
        assert sorted(policy.eligible_victims(state)) == [0, 1]

    def test_hint_clears_bit(self):
        policy = NRUPolicy()
        state = policy.make_set_state(2, 0)
        policy.on_fill(state, 0)
        policy.on_hint(state, 0)
        assert not state.referenced[0]


class TestSRRIP:
    def test_insertion_is_long_not_distant(self):
        policy = SRRIPPolicy()
        state = policy.make_set_state(2, 0)
        policy.on_fill(state, 0)
        assert state.rrpv[0] == 2

    def test_hit_promotes_to_zero(self):
        policy = SRRIPPolicy()
        state = policy.make_set_state(2, 0)
        policy.on_fill(state, 0)
        policy.on_hit(state, 0)
        assert state.rrpv[0] == 0

    def test_victim_has_max_rrpv(self):
        policy = SRRIPPolicy()
        state = policy.make_set_state(4, 0)
        for way in range(4):
            policy.on_fill(state, way)
        policy.on_hit(state, 2)
        victim = policy.choose_victim(state)
        assert victim != 2
        assert state.rrpv[victim] == 3

    def test_aging_saturates(self):
        policy = SRRIPPolicy()
        state = policy.make_set_state(2, 0)
        policy.on_fill(state, 0)
        policy.on_hit(state, 0)
        policy.on_fill(state, 1)
        victim = policy.choose_victim(state)
        # way 1 (rrpv 2) ages to 3 before way 0 (rrpv 0).
        assert victim == 1


class TestCHAR:
    def test_leader_sets_alternate(self):
        policy = CharPolicy()
        s0 = policy.make_set_state(4, 0)
        s1 = policy.make_set_state(4, 1)
        s2 = policy.make_set_state(4, 2)
        assert s0.leader == 1
        assert s1.leader == -1
        assert s2.leader == 0

    def test_psel_moves_on_leader_misses(self):
        policy = CharPolicy()
        s0 = policy.make_set_state(4, 0)
        start = policy.psel
        policy.on_fill(s0, 0)  # miss in the +1 leader
        assert policy.psel == start + 1

    def test_hint_ages_line(self):
        policy = CharPolicy()
        state = policy.make_set_state(4, 2)
        policy.on_hit(state, 1)
        policy.on_hint(state, 1)
        assert not state.referenced[1]

    def test_follower_insertion_tracks_psel(self):
        policy = CharPolicy()
        leader_b = policy.make_set_state(4, 1)
        follower = policy.make_set_state(4, 2)
        # Drive PSEL low: misses in the -1 leader decrement it.
        for _ in range(600):
            policy.on_fill(leader_b, 0)
        policy.on_fill(follower, 3)
        assert follower.referenced[3]  # low PSEL -> insert referenced


class TestRandomAndRegistry:
    def test_random_victims_cover_all_ways(self):
        policy = RandomPolicy(seed=7)
        state = policy.make_set_state(4, 0)
        seen = {policy.choose_victim(state) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_registry_instantiates_all(self):
        for name in POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("belady")

    def test_deterministic_random_reproducible(self):
        a = DeterministicRandom(42)
        b = DeterministicRandom(42)
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]

    def test_deterministic_random_below_bounds(self):
        rng = DeterministicRandom(1)
        for _ in range(100):
            assert 0 <= rng.below(7) < 7

    def test_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicRandom(1).below(0)


@given(
    policy_name=st.sampled_from(sorted(POLICIES)),
    ops=st.lists(
        st.tuples(st.sampled_from(["hit", "fill", "invalidate", "hint"]), st.integers(0, 7)),
        max_size=200,
    ),
)
@settings(max_examples=100)
def test_policies_always_return_valid_victims(policy_name, ops):
    """Any op sequence leaves the policy able to name a victim in range."""
    policy = make_policy(policy_name)
    state = policy.make_set_state(8, 0)
    for op, way in ops:
        if op == "hit":
            policy.on_hit(state, way)
        elif op == "fill":
            policy.on_fill(state, way)
        elif op == "invalidate":
            policy.on_invalidate(state, way)
        else:
            policy.on_hint(state, way)
    assert 0 <= policy.choose_victim(state) < 8
    eligible = policy.eligible_victims(state)
    assert eligible and all(0 <= w < 8 for w in eligible)

"""Tests for Victim Cache insertion policies (Section IV.B.1 / VI.B.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.replacement.victim import (
    ECMStrictVictimPolicy,
    ECMVictimPolicy,
    LRUVictimPolicy,
    make_victim_policy,
    MixVictimPolicy,
    RandomVictimPolicy,
    VICTIM_POLICIES,
    VictimCandidate,
)


def cand(way, base_size, occupied=False, victim_size=0, stamp=0):
    return VictimCandidate(way, base_size, occupied, victim_size, stamp)


class TestECM:
    def test_prefers_free_slot(self):
        policy = ECMVictimPolicy()
        chosen = policy.choose(
            [cand(0, 12, occupied=True, victim_size=4), cand(1, 4, occupied=False)]
        )
        assert chosen == 1

    def test_largest_base_partner_among_free(self):
        policy = ECMVictimPolicy()
        chosen = policy.choose([cand(0, 4), cand(1, 10), cand(2, 7)])
        assert chosen == 1

    def test_largest_base_partner_among_occupied(self):
        policy = ECMVictimPolicy()
        chosen = policy.choose(
            [
                cand(0, 4, occupied=True, victim_size=2),
                cand(1, 10, occupied=True, victim_size=2),
            ]
        )
        assert chosen == 1

    def test_tie_breaks_to_lowest_way(self):
        policy = ECMVictimPolicy()
        assert policy.choose([cand(2, 5), cand(1, 5)]) == 1


class TestECMStrict:
    def test_ignores_occupancy(self):
        policy = ECMStrictVictimPolicy()
        chosen = policy.choose(
            [cand(0, 3, occupied=False), cand(1, 12, occupied=True, victim_size=2)]
        )
        assert chosen == 1  # largest base partner even though occupied

    def test_paper_figure4_step5(self):
        """Figure 4: B (3 segs) fits with F's base (A, 2) or E's base (C, 3);
        the ECM rule picks the larger base partner, C's way."""
        policy = ECMStrictVictimPolicy()
        chosen = policy.choose(
            [
                cand(0, 2, occupied=True, victim_size=5),  # A's way, victim F
                cand(1, 3, occupied=True, victim_size=4),  # C's way, victim E
            ]
        )
        assert chosen == 1


class TestLRUAndMix:
    def test_lru_prefers_free_then_stalest(self):
        policy = LRUVictimPolicy()
        assert policy.choose([cand(0, 5, True, 2, stamp=9), cand(1, 5)]) == 1
        chosen = policy.choose(
            [cand(0, 5, True, 2, stamp=9), cand(1, 5, True, 2, stamp=3)]
        )
        assert chosen == 1

    def test_mix_prefers_free_largest_base(self):
        policy = MixVictimPolicy()
        assert policy.choose([cand(0, 3), cand(1, 9)]) == 1

    def test_mix_evicts_stalest_when_all_occupied(self):
        policy = MixVictimPolicy()
        chosen = policy.choose(
            [cand(0, 5, True, 2, stamp=5), cand(1, 5, True, 2, stamp=2)]
        )
        assert chosen == 1


class TestRandomAndRegistry:
    def test_random_is_deterministic_per_seed(self):
        a = RandomVictimPolicy(seed=3)
        b = RandomVictimPolicy(seed=3)
        candidates = [cand(i, 4) for i in range(8)]
        assert [a.choose(candidates) for _ in range(20)] == [
            b.choose(candidates) for _ in range(20)
        ]

    def test_random_covers_candidates(self):
        policy = RandomVictimPolicy(seed=5)
        candidates = [cand(i, 4) for i in range(4)]
        assert {policy.choose(candidates) for _ in range(200)} == {0, 1, 2, 3}

    def test_registry(self):
        for name in VICTIM_POLICIES:
            assert make_victim_policy(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_victim_policy("belady")


@given(
    policy_name=st.sampled_from(sorted(VICTIM_POLICIES)),
    candidates=st.lists(
        st.builds(
            VictimCandidate,
            way=st.integers(0, 15),
            base_size=st.integers(0, 16),
            occupied=st.booleans(),
            victim_size=st.integers(0, 16),
            victim_stamp=st.integers(0, 1000),
        ),
        min_size=1,
        max_size=16,
    ),
)
@settings(max_examples=200)
def test_choice_is_always_a_candidate(policy_name, candidates):
    policy = make_victim_policy(policy_name)
    chosen = policy.choose(candidates)
    assert chosen in {c.way for c in candidates}

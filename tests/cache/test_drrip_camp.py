"""Tests for the DRRIP and CAMP extension policies."""


from repro.cache.replacement.camp import CAMPPolicy, SMALL_THRESHOLD_SEGMENTS
from repro.cache.replacement.drrip import DRRIPPolicy


class TestDRRIP:
    def test_leader_set_assignment(self):
        policy = DRRIPPolicy()
        assert policy.make_set_state(4, 0).leader == 1
        assert policy.make_set_state(4, 1).leader == -1
        assert policy.make_set_state(4, 5).leader == 0

    def test_srrip_leader_inserts_long(self):
        policy = DRRIPPolicy()
        state = policy.make_set_state(4, 0)
        policy.on_fill(state, 0)
        assert state.rrpv[0] == 2

    def test_brrip_leader_mostly_inserts_distant(self):
        policy = DRRIPPolicy(seed=1)
        state = policy.make_set_state(4, 1)
        inserts = []
        for _ in range(128):
            policy.on_fill(state, 0)
            inserts.append(state.rrpv[0])
        assert inserts.count(3) > inserts.count(2)
        assert 2 in inserts  # the epsilon long-insertions happen

    def test_psel_moves_on_leader_misses(self):
        policy = DRRIPPolicy()
        srrip_leader = policy.make_set_state(4, 0)
        start = policy.psel
        policy.on_fill(srrip_leader, 0)
        assert policy.psel == start + 1

    def test_followers_track_psel(self):
        policy = DRRIPPolicy()
        brrip_leader = policy.make_set_state(4, 1)
        for _ in range(600):
            policy.on_fill(brrip_leader, 0)  # drive PSEL low: SRRIP wins
        follower = policy.make_set_state(4, 2)
        policy.on_fill(follower, 0)
        assert follower.rrpv[0] == 2

    def test_victim_has_max_rrpv(self):
        policy = DRRIPPolicy()
        state = policy.make_set_state(4, 0)
        for way in range(4):
            policy.on_fill(state, way)
        policy.on_hit(state, 1)
        victim = policy.choose_victim(state)
        assert victim != 1

    def test_hint_and_invalidate(self):
        policy = DRRIPPolicy()
        state = policy.make_set_state(2, 0)
        policy.on_fill(state, 0)
        policy.on_hint(state, 0)
        assert state.rrpv[0] == 3
        policy.on_invalidate(state, 0)
        assert state.rrpv[0] == 3


class TestCAMP:
    def test_size_aware_leader_penalises_large_lines(self):
        policy = CAMPPolicy()
        state = policy.make_set_state(4, 1)  # size-aware leader
        policy.on_fill_sized(state, 0, SMALL_THRESHOLD_SEGMENTS)
        policy.on_fill_sized(state, 1, SMALL_THRESHOLD_SEGMENTS + 1)
        assert state.rrpv[0] == 2
        assert state.rrpv[1] == 3

    def test_srrip_leader_ignores_size(self):
        policy = CAMPPolicy()
        state = policy.make_set_state(4, 0)
        policy.on_fill_sized(state, 0, 16)
        assert state.rrpv[0] == 2

    def test_plain_on_fill_treats_size_unknown(self):
        policy = CAMPPolicy()
        state = policy.make_set_state(4, 1)
        policy.on_fill(state, 0)
        assert state.rrpv[0] == 2  # unknown size: not penalised

    def test_followers_choose_by_psel(self):
        policy = CAMPPolicy()
        size_leader = policy.make_set_state(4, 1)
        for _ in range(600):
            policy.on_fill_sized(size_leader, 0, 4)  # drive PSEL low
        follower = policy.make_set_state(4, 2)
        policy.on_fill_sized(follower, 0, 16)
        assert follower.rrpv[0] == 2  # SRRIP side won

    def test_hit_promotes(self):
        policy = CAMPPolicy()
        state = policy.make_set_state(4, 1)
        policy.on_fill_sized(state, 0, 16)
        policy.on_hit(state, 0)
        assert state.rrpv[0] == 0

    def test_large_lines_evicted_first_in_size_leader(self):
        policy = CAMPPolicy()
        state = policy.make_set_state(2, 1)
        policy.on_fill_sized(state, 0, 4)  # small
        policy.on_fill_sized(state, 1, 16)  # large: rrpv 3
        assert policy.choose_victim(state) == 1


class TestSimulationIntegration:
    def test_camp_runs_under_base_victim(self, tmp_path):
        from dataclasses import replace

        from repro.sim.config import BASE_VICTIM_2MB, TEST
        from repro.sim.experiment import ExperimentRunner

        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        machine = replace(BASE_VICTIM_2MB, policy="camp")
        result = runner.run_single(machine, "mcf.1")
        assert result.ipc > 0

    def test_drrip_runs_under_base_victim(self, tmp_path):
        from dataclasses import replace

        from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, TEST
        from repro.sim.experiment import ExperimentRunner

        runner = ExperimentRunner(TEST, cache_dir=tmp_path)
        machine = replace(BASE_VICTIM_2MB, policy="drrip")
        base = replace(BASELINE_2MB, policy="drrip")
        bv = runner.run_single(machine, "mcf.1")
        un = runner.run_single(base, "mcf.1")
        # The guarantee composes with DRRIP too.
        assert bv.llc_misses <= un.llc_misses

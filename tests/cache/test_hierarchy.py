"""Integration tests for the inclusive three-level hierarchy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheGeometry
from repro.cache.hierarchy import (
    CacheHierarchy,
    HierarchyConfig,
    L1,
    L2,
    LLC,
    MEMORY,
)
from repro.cache.replacement import NRUPolicy, make_victim_policy
from repro.compression.segments import SegmentGeometry
from repro.core.basevictim import BaseVictimLLC
from repro.core.uncompressed import UncompressedLLC
from repro.memory.dram import DRAMModel


def tiny_config(prefetch=0):
    return HierarchyConfig(
        l1_geometry=CacheGeometry(2 * 2 * 64, 2),  # 2 sets x 2 ways
        l2_geometry=CacheGeometry(4 * 4 * 64, 4),  # 4 sets x 4 ways
        prefetch_degree=prefetch,
    )


def make_hierarchy(llc=None, prefetch=0, memory=None):
    llc = llc or UncompressedLLC(CacheGeometry(8 * 8 * 64, 8), NRUPolicy())
    return CacheHierarchy(llc, size_fn=lambda addr: 8, config=tiny_config(prefetch), memory=memory)


class TestServiceLevels:
    def test_first_access_goes_to_memory(self):
        h = make_hierarchy()
        assert h.access(1, False).level == MEMORY

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        h.access(1, False)
        assert h.access(1, False).level == L1

    def test_l1_capacity_falls_back_to_l2(self):
        h = make_hierarchy()
        # Fill set 0 of L1 (2 ways): lines 0, 2, 4 alias set 0.
        for addr in (0, 2, 4):
            h.access(addr, False)
        assert h.access(0, False).level == L2

    def test_llc_hit_after_l2_eviction(self):
        h = make_hierarchy()
        # Touch enough lines to overflow the 16-line L2 but not the 64-line LLC.
        for addr in range(24):
            h.access(addr, False)
        levels = {h.access(addr, False).level for addr in range(4)}
        assert LLC in levels

    def test_stats_accumulate(self):
        h = make_hierarchy()
        for addr in (1, 1, 2):
            h.access(addr, False)
        assert h.stats.accesses == 3
        assert h.stats.l1_hits == 1
        assert h.stats.memory_reads == 2


class TestInclusion:
    def test_inclusion_invariant_random_traffic(self):
        h = make_hierarchy()
        import random

        rng = random.Random(7)
        for _ in range(3000):
            h.access(rng.randrange(200), rng.random() < 0.3)
            if rng.randrange(100) == 0:
                h.check_inclusion()
        h.check_inclusion()

    def test_llc_eviction_back_invalidates(self):
        llc = UncompressedLLC(CacheGeometry(1 * 4 * 64, 4), NRUPolicy())
        h = CacheHierarchy(llc, size_fn=lambda a: 8, config=tiny_config())
        h.access(0, False)
        for addr in range(1, 5):  # overflow the 4-way LLC set
            h.access(addr, False)
        assert not llc.contains(0)
        assert not h.l1.contains(0)
        assert not h.l2.contains(0)
        assert h.stats.back_invalidations >= 1

    def test_dirty_upper_copy_reaches_memory_on_back_invalidation(self):
        llc = UncompressedLLC(CacheGeometry(1 * 4 * 64, 4), NRUPolicy())
        h = CacheHierarchy(llc, size_fn=lambda a: 8, config=tiny_config())
        h.access(0, True)  # dirty in L1, clean in LLC
        writes_before = h.stats.memory_writes
        for addr in range(1, 5):
            h.access(addr, False)
        assert not llc.contains(0)
        assert h.stats.memory_writes > writes_before

    def test_base_victim_demotion_back_invalidates(self):
        llc = BaseVictimLLC(
            CacheGeometry(1 * 4 * 64, 4),
            NRUPolicy(),
            make_victim_policy("ecm"),
            SegmentGeometry(64),
        )
        h = CacheHierarchy(llc, size_fn=lambda a: 4, config=tiny_config())
        h.access(0, False)
        for addr in range(1, 5):
            h.access(addr, False)
        # Line 0 was demoted to the victim cache: still in the LLC but
        # gone from L1/L2 (it must be clean with respect to upper levels).
        if llc.in_victim(0):
            assert not h.l1.contains(0)
            assert not h.l2.contains(0)
        h.check_inclusion()


class TestWritebacks:
    def test_dirty_l2_eviction_writes_back_to_llc(self):
        h = make_hierarchy()
        h.access(0, True)
        # Push line 0 out of L1 and L2 with conflicting lines.
        for addr in range(4, 4 + 64, 4):
            h.access(addr, False)
        assert h.stats.writebacks_to_llc >= 1

    def test_writeback_carries_current_compressed_size(self):
        sizes = {}
        llc = BaseVictimLLC(
            CacheGeometry(8 * 8 * 64, 8),
            NRUPolicy(),
            make_victim_policy("ecm"),
            SegmentGeometry(64),
        )

        def size_fn(addr):
            return sizes.get(addr, 16)

        h = CacheHierarchy(llc, size_fn=size_fn, config=tiny_config())
        h.access(0, True)
        sizes[0] = 4  # the store shrank the line
        for addr in range(4, 4 + 64, 4):
            h.access(addr, False)
        # After the L2 writeback the LLC copy must carry the new size.
        if llc.in_baseline(0):
            cset = llc._sets[0]
            assert cset.base_size[cset.base_lookup[0]] == 4


class TestPrefetcherIntegration:
    def test_streaming_triggers_prefetch_fills(self):
        h = make_hierarchy(prefetch=2)
        for addr in range(0, 24):
            h.access(addr, False)
        assert h.stats.prefetch_fills > 0

    def test_prefetched_lines_hit_in_llc(self):
        h = make_hierarchy(prefetch=2)
        for addr in range(0, 16):
            h.access(addr, False)
        # The next line of the stream should already be in the LLC.
        outcome = h.access(16, False)
        assert outcome.level in (L1, L2, LLC)

    def test_disabled_prefetcher_issues_nothing(self):
        h = make_hierarchy(prefetch=0)
        for addr in range(0, 24):
            h.access(addr, False)
        assert h.stats.prefetch_fills == 0


class TestDRAMCoupling:
    def test_memory_level_outcome_carries_dram_latency(self):
        h = make_hierarchy(memory=DRAMModel())
        outcome = h.access(1, False)
        assert outcome.level == MEMORY
        assert outcome.dram_latency > 0

    def test_dram_counters_match_hierarchy(self):
        dram = DRAMModel()
        h = make_hierarchy(memory=dram)
        import random

        rng = random.Random(3)
        for _ in range(2000):
            h.now += 50
            h.access(rng.randrange(300), rng.random() < 0.3)
        assert dram.stat_reads == h.stats.memory_reads
        assert dram.stat_writes == h.stats.memory_writes


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 150), st.booleans()), min_size=1, max_size=600
    )
)
@settings(max_examples=40, deadline=None)
def test_inclusion_invariant_property(accesses):
    llc = BaseVictimLLC(
        CacheGeometry(4 * 4 * 64, 4),
        NRUPolicy(),
        make_victim_policy("ecm"),
        SegmentGeometry(64),
    )
    h = CacheHierarchy(llc, size_fn=lambda a: (a % 3) * 6 + 4, config=tiny_config(2))
    for addr, is_write in accesses:
        h.access(addr, is_write)
    h.check_inclusion()
    llc.check_invariants()

"""Tests for the uncompressed set-associative cache substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfigError, CacheGeometry
from repro.cache.replacement import LRUPolicy, NRUPolicy
from repro.cache.setassoc import SetAssociativeCache


def small_cache(ways=4, sets=8, policy=None):
    geometry = CacheGeometry(sets * ways * 64, ways)
    return SetAssociativeCache(geometry, policy or LRUPolicy())


class TestGeometry:
    def test_paper_llc_geometry(self):
        geometry = CacheGeometry(2 * 2**20, 16)
        assert geometry.num_sets == 2048
        assert geometry.index_bits == 11
        assert geometry.offset_bits == 6

    def test_rejects_non_dividing_size(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(1000, 3)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(3 * 16 * 64, 16)  # 3 sets

    def test_24_way_3mb_is_valid(self):
        # The paper's 3MB = 2MB + 8 ways per set (Section VI.A).
        geometry = CacheGeometry(3 * 2**20, 24)
        assert geometry.num_sets == 2048

    def test_scaled_preserves_associativity(self):
        geometry = CacheGeometry(2 * 2**20, 16).scaled(1 / 8)
        assert geometry.associativity == 16
        assert geometry.size_bytes == 256 * 1024

    def test_str(self):
        assert str(CacheGeometry(2 * 2**20, 16)) == "2MB/16w"
        assert str(CacheGeometry(32 * 1024, 8)) == "32KB/8w"


class TestBasicOperations:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.probe(0x100)
        cache.fill(0x100)
        assert cache.probe(0x100)

    def test_fill_of_present_line_rejected(self):
        cache = small_cache()
        cache.fill(0x100)
        with pytest.raises(ValueError):
            cache.fill(0x100)

    def test_write_sets_dirty(self):
        cache = small_cache()
        cache.fill(0x100)
        cache.probe(0x100, is_write=True)
        assert cache.is_dirty(0x100)

    def test_eviction_returns_victim_with_dirty_state(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0, dirty=True)
        cache.fill(1)
        victim = cache.fill(2)
        assert victim is not None
        assert victim.addr == 0
        assert victim.dirty

    def test_lru_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        cache.probe(0)  # 1 becomes LRU
        victim = cache.fill(2)
        assert victim.addr == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(0x100, dirty=True)
        present, dirty = cache.invalidate(0x100)
        assert present and dirty
        assert not cache.contains(0x100)
        # Second invalidation is a no-op.
        assert cache.invalidate(0x100) == (False, False)

    def test_invalidated_way_is_refilled_first(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        cache.invalidate(0)
        victim = cache.fill(2)
        assert victim is None  # reused the freed way

    def test_access_convenience(self):
        cache = small_cache()
        hit, victim = cache.access(0x42)
        assert not hit and victim is None
        hit, victim = cache.access(0x42)
        assert hit


class TestStatsAndIntrospection:
    def test_hit_miss_counters(self):
        cache = small_cache()
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stat_hits == 1
        assert cache.stat_misses == 2

    def test_occupancy_and_residents(self):
        cache = small_cache()
        for addr in (1, 2, 3):
            cache.fill(addr)
        assert cache.occupancy() == 3
        assert set(cache.resident_lines()) == {1, 2, 3}

    def test_set_contents(self):
        cache = small_cache(ways=2, sets=8)
        cache.fill(8)  # set 0
        cache.fill(16)  # set 0
        assert sorted(cache.set_contents(0)) == [8, 16]

    def test_hint_downgrade_is_safe_for_missing_lines(self):
        cache = small_cache(policy=NRUPolicy())
        cache.hint_downgrade(0x999)  # must not raise


class TestCapacityInvariant:
    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.booleans()),
            min_size=1,
            max_size=500,
        )
    )
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_capacity(self, operations):
        cache = small_cache(ways=4, sets=4)
        for addr, is_write in operations:
            cache.access(addr, is_write)
        assert cache.occupancy() <= 16
        # lookup tables agree with the arrays
        for index in range(4):
            contents = cache.set_contents(index)
            assert len(contents) == len(set(contents))
            for addr in contents:
                assert cache.contains(addr)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    @settings(max_examples=60)
    def test_most_recent_line_always_resident(self, addrs):
        cache = small_cache(ways=4, sets=4)
        for addr in addrs:
            cache.access(addr)
            assert cache.contains(addr)

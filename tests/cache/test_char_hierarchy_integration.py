"""Integration: CHAR downgrade hints flow from L2 evictions to the LLC."""

from repro.cache.config import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.replacement import CharPolicy
from repro.core.uncompressed import UncompressedLLC


def make(hints: bool):
    policy = CharPolicy()
    llc = UncompressedLLC(CacheGeometry(16 * 8 * 64, 8), policy)
    config = HierarchyConfig(
        l1_geometry=CacheGeometry(2 * 2 * 64, 2),
        l2_geometry=CacheGeometry(4 * 4 * 64, 4),
        prefetch_degree=0,
        l2_eviction_hints=hints,
    )
    return llc, policy, CacheHierarchy(llc, size_fn=lambda a: 8, config=config)


class TestHintDelivery:
    def test_clean_l2_eviction_downgrades_llc_line(self):
        llc, policy, h = make(hints=True)
        h.access(0, False)
        # Push line 0 out of the small L2 with clean conflicting lines.
        for addr in range(4, 4 + 16 * 4, 4):
            h.access(addr, False)
        # Line 0 must still be in the LLC, but its referenced bit cleared
        # by the downgrade hint.
        if llc.contains(0):
            cset = llc.cache._sets[0]
            way = cset.lookup[0]
            assert not cset.policy_state.referenced[way]

    def test_hints_can_be_disabled(self):
        llc, policy, h = make(hints=False)
        h.access(0, False)
        for addr in range(4, 4 + 16 * 4, 4):
            h.access(addr, False)
        if llc.contains(0):
            cset = llc.cache._sets[0]
            way = cset.lookup[0]
            assert cset.policy_state.referenced[way]

    def test_dirty_l2_evictions_write_back_not_hint(self):
        llc, policy, h = make(hints=True)
        h.access(0, True)  # dirty
        for addr in range(4, 4 + 16 * 4, 4):
            h.access(addr, False)
        # The dirty line was written back to the LLC (a WRITEBACK access
        # touches the line and re-references it).
        assert h.stats.writebacks_to_llc >= 1

"""Tests for per-codec compressed-size histograms (observability)."""

from repro.compression import ALGORITHMS
from repro.compression.stats import codec_size_histograms, publish_codec_histograms
from repro.obs.registry import CounterRegistry
from repro.workloads.datagen import build_palette


def palette_lines():
    return [entry.data for entry in build_palette("ispec", "friendly", seed=7)]


class TestCodecSizeHistograms:
    def test_covers_every_registered_codec(self):
        lines = palette_lines()
        histograms = codec_size_histograms(lines)
        assert sorted(histograms) == sorted(ALGORITHMS)
        for buckets in histograms.values():
            assert sum(buckets.values()) == len(lines)
            assert all(0 < size <= 64 for size in buckets)

    def test_deterministic_and_memoised(self):
        lines = palette_lines()
        assert codec_size_histograms(lines) == codec_size_histograms(lines)

    def test_publish_into_registry(self):
        reg = CounterRegistry()
        lines = palette_lines()
        publish_codec_histograms(reg, lines)
        obs = reg.as_dict()
        for name in ALGORITHMS:
            metric = obs[f"codec/{name}/size_bytes"]
            assert metric["kind"] == "histogram"
            assert sum(metric["buckets"].values()) == len(lines)

    def test_publish_empty_lines_is_a_noop(self):
        reg = CounterRegistry()
        publish_codec_histograms(reg, [])
        assert reg.as_dict() == {}

"""Differential tests: vectorised size kernels vs the scalar codecs.

The kernels in :mod:`repro.compression.kernels` exist purely for speed;
their contract is byte-identity with the scalar codecs over every line.
These tests fuzz that contract over adversarial and random lines, and
check the address-hash kernel against the scalar ``_mix`` ring lookup.
"""

from __future__ import annotations

import array
import random
import struct

import pytest

np = pytest.importorskip("numpy")

from repro.compression import kernels, make_compressor
from repro.workloads.datagen import _RING_SIZE, _mix


def _adversarial_lines() -> list[bytes]:
    """Lines targeting every codec branch: runs, deltas, dict matches."""
    lines = [
        b"\x00" * 64,
        b"\xff" * 64,
        struct.pack("<8Q", *[7] * 8),  # repeated non-zero 8-byte word
        struct.pack("<8Q", *(2**63 - 1 - i for i in range(8))),  # wrap deltas
        struct.pack("<16i", *(i - 8 for i in range(16))),  # small ints
        struct.pack("<16I", *(0x10000 * (i + 1) for i in range(16))),  # padded16
        struct.pack("<16I", *[0x00050003] * 16),  # halfwords + cpack full
        struct.pack("<16I", *(0xAB00_0000 + i for i in range(16))),  # mmmb
        struct.pack("<16I", *(0xAB00_0000 + (i << 12) for i in range(16))),  # mmbb
        struct.pack("<16B", *range(16)) * 4,  # repeating byte structure
        struct.pack("<8Q", *(0x7F00_0000_0000 + i * 8 for i in range(8))),
        # Zero runs of every phase and length, including the 8-word cap.
        b"\x00" * 36 + b"\x01\x02\x03\x04" + b"\x00" * 24,
        b"\x01\x00\x00\x00" + b"\x00" * 60,
        b"\x00" * 60 + b"\xde\xad\xbe\xef",
    ]
    rng = random.Random(0xC0DEC)
    for _ in range(120):
        lines.append(bytes(rng.randrange(256) for _ in range(64)))
    # Low-entropy random lines hit the compressible branches more often.
    for _ in range(120):
        lines.append(bytes(rng.choice((0, 0, 0, 1, 2, 0xFF)) for _ in range(64)))
    for _ in range(60):
        base = rng.randrange(1 << 62)
        lines.append(
            struct.pack(
                "<8Q", *((base + rng.randrange(-100, 100)) % 2**64 for _ in range(8))
            )
        )
    return lines


@pytest.mark.parametrize("codec", sorted(kernels.SIZE_KERNELS))
def test_size_kernels_match_scalar_codecs(codec):
    lines = _adversarial_lines()
    compressor = make_compressor(codec)
    expected = [compressor.compress(line).size_bytes for line in lines]
    got = kernels.SIZE_KERNELS[codec](kernels.lines_matrix(lines)).tolist()
    mismatches = [
        (i, e, g) for i, (e, g) in enumerate(zip(expected, got)) if e != g
    ]
    assert not mismatches, f"{codec}: first mismatches {mismatches[:5]}"


@pytest.mark.parametrize("codec", sorted(kernels.SIZE_KERNELS))
def test_size_histogram_matches_scalar(codec):
    lines = _adversarial_lines()
    compressor = make_compressor(codec)
    counts: dict[int, int] = {}
    for line in lines:
        size = compressor.compress(line).size_bytes
        counts[size] = counts.get(size, 0) + 1
    histogram = kernels.size_histogram(kernels.SIZE_KERNELS[codec], lines)
    assert histogram == tuple(sorted(counts.items()))


def test_lines_matrix_rejects_ragged_input():
    with pytest.raises(ValueError):
        kernels.lines_matrix([b"\x00" * 64, b"\x01" * 63])


@pytest.mark.parametrize("seed", [0, 1, 17, 0xDEADBEEF])
def test_ring_bases_match_scalar_mix(seed):
    rng = random.Random(seed + 1)
    addrs = array.array(
        "q", [rng.randrange(1 << 48) for _ in range(500)] + [0, 1, (1 << 62) - 64]
    )
    unique, bases = kernels.ring_bases(addrs, seed, _RING_SIZE)
    assert sorted(set(addrs)) == unique.tolist()
    for addr, base in zip(unique.tolist(), bases.tolist()):
        assert base == _mix(addr ^ seed) % _RING_SIZE

"""Tests for Frequent Pattern Compression."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CompressionError
from repro.compression.fpc import FPCCompressor

fpc = FPCCompressor()

lines = st.binary(min_size=64, max_size=64)


def words(*values):
    return struct.pack("<16I", *[v & 0xFFFFFFFF for v in values])


class TestPatterns:
    def test_zero_line_compresses_hard(self):
        block = fpc.compress(b"\x00" * 64)
        assert block.encoding == "zeros"
        # Two zero runs of 8 words: 2 * (3 + 3) bits = 12 bits = 2 bytes.
        assert block.size_bytes == 2

    def test_small_positive_integers(self):
        data = words(*([3] * 16))
        block = fpc.compress(data)
        assert block.is_compressed
        # 16 * (3 + 4) bits = 112 bits = 14 bytes.
        assert block.size_bytes == 14

    def test_small_negative_integers(self):
        data = words(*([-2] * 16))
        block = fpc.compress(data)
        assert block.is_compressed
        assert fpc.decompress(block) == data

    def test_sign_extended_byte(self):
        data = words(*([0x7F] * 16))
        assert fpc.compress(data).size_bytes == -(-16 * (3 + 8) // 8)

    def test_halfword_padded_with_zeros(self):
        data = words(*([0xABCD0000] * 16))
        block = fpc.compress(data)
        assert block.is_compressed
        assert fpc.decompress(block) == data

    def test_repeated_bytes_word(self):
        data = words(*([0x55555555] * 16))
        block = fpc.compress(data)
        assert block.is_compressed
        assert fpc.decompress(block) == data

    def test_two_sign_extended_halfwords(self):
        value = (0x0012 << 16) | 0xFFF3  # both halves 8-bit sign-extendable
        data = words(*([value] * 16))
        block = fpc.compress(data)
        assert block.is_compressed
        assert fpc.decompress(block) == data

    def test_incompressible_falls_back(self):
        data = bytes((i * 89 + 7) % 256 for i in range(64))
        block = fpc.compress(data)
        assert block.encoding == "uncompressed"
        assert block.size_bytes == 64

    def test_zero_run_capped_at_8(self):
        # 9 zero words followed by non-zero: two runs are needed.
        data = words(*([0] * 9 + [0x12345678] * 7))
        block = fpc.compress(data)
        assert fpc.decompress(block) == data


class TestRoundTrip:
    @given(lines)
    @settings(max_examples=300)
    def test_roundtrip_lossless(self, data):
        assert fpc.decompress(fpc.compress(data)) == data

    @given(st.lists(st.integers(-128, 127), min_size=16, max_size=16))
    def test_small_word_lines_compress(self, values):
        data = words(*values)
        block = fpc.compress(data)
        assert block.is_compressed
        assert fpc.decompress(block) == data

    def test_rejects_foreign_block(self):
        from repro.compression.bdi import BDICompressor

        with pytest.raises(CompressionError):
            fpc.decompress(BDICompressor().compress(b"\x00" * 64))

"""Tests for C-Pack compression."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CompressionError
from repro.compression.cpack import CPackCompressor

cpack = CPackCompressor()

lines = st.binary(min_size=64, max_size=64)


def words_be(*values):
    return struct.pack(">16I", *[v & 0xFFFFFFFF for v in values])


class TestPatterns:
    def test_zero_line(self):
        block = cpack.compress(b"\x00" * 64)
        assert block.encoding == "zeros"
        # 16 words * 2 bits = 32 bits = 4 bytes.
        assert block.size_bytes == 4

    def test_full_dictionary_matches(self):
        # One distinct word, then 15 full matches.
        data = words_be(*([0xAABBCCDD] * 16))
        block = cpack.compress(data)
        assert block.is_compressed
        # 1 verbatim (34b) + 15 matches (6b) = 124 bits = 16 bytes.
        assert block.size_bytes == 16
        assert cpack.decompress(block) == data

    def test_partial_match_high_bytes(self):
        base = 0x11223300
        data = words_be(*(base + i for i in range(16)))
        block = cpack.compress(data)
        assert block.is_compressed
        assert cpack.decompress(block) == data

    def test_zero_extended_byte(self):
        data = words_be(*(range(16)))
        block = cpack.compress(data)
        assert block.is_compressed
        assert cpack.decompress(block) == data

    def test_incompressible(self):
        data = bytes((i * 151 + 13) % 256 for i in range(64))
        block = cpack.compress(data)
        assert block.size_bytes == 64


class TestDictionaryBehaviour:
    def test_dictionary_is_fifo_bounded(self):
        # More than 16 distinct words: the dictionary must evict FIFO and
        # decompression must replay identically.
        data = words_be(*((0x0100_0000 + i * 0x0001_0001) for i in range(16)))
        extra = words_be(*((0x2200_0000 + i * 0x0101_0000) for i in range(16)))
        for payload in (data, extra):
            assert cpack.decompress(cpack.compress(payload)) == payload

    def test_zero_words_do_not_enter_dictionary(self):
        # Alternating zero/value: values should still full-match.
        values = []
        for i in range(8):
            values.extend([0, 0xCAFE0000])
        data = words_be(*values)
        block = cpack.compress(data)
        assert block.is_compressed
        assert cpack.decompress(block) == data


class TestRoundTrip:
    @given(lines)
    @settings(max_examples=300)
    def test_roundtrip_lossless(self, data):
        assert cpack.decompress(cpack.compress(data)) == data

    @given(st.lists(st.sampled_from([0, 1, 0xFF, 0xAB00, 0xDEAD0000]), min_size=16, max_size=16))
    def test_structured_lines_roundtrip(self, values):
        data = words_be(*values)
        assert cpack.decompress(cpack.compress(data)) == data

    def test_rejects_foreign_block(self):
        from repro.compression.bdi import BDICompressor

        with pytest.raises(CompressionError):
            cpack.decompress(BDICompressor().compress(b"\x00" * 64))

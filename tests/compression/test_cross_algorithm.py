"""Cross-algorithm consistency properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import ALGORITHMS, EVAL_GEOMETRY, make_compressor

lines = st.binary(min_size=64, max_size=64)


@given(lines, st.sampled_from(sorted(ALGORITHMS)))
@settings(max_examples=150)
def test_size_bounds_hold_for_every_algorithm(data, name):
    algorithm = make_compressor(name)
    block = algorithm.compress(data)
    assert 0 < block.size_bytes <= 64
    assert 0 < block.size_in_segments(EVAL_GEOMETRY) <= 16


@given(lines, st.sampled_from(sorted(ALGORITHMS)))
@settings(max_examples=150)
def test_every_algorithm_is_lossless(data, name):
    algorithm = make_compressor(name)
    assert algorithm.decompress(algorithm.compress(data)) == data


@given(st.sampled_from(sorted(ALGORITHMS)))
def test_zero_line_compresses_everywhere(name):
    algorithm = make_compressor(name)
    block = algorithm.compress(b"\x00" * 64)
    assert block.is_compressed
    # Zero blocks are the cheapest representable content for all codecs.
    assert block.size_bytes <= 8


@given(lines)
@settings(max_examples=100)
def test_compression_is_deterministic(data):
    for name in ALGORITHMS:
        a = make_compressor(name).compress(data)
        b = make_compressor(name).compress(data)
        assert a.size_bytes == b.size_bytes
        assert a.encoding == b.encoding


def test_decompression_latencies_are_declared():
    for name in ALGORITHMS:
        algorithm = make_compressor(name)
        assert algorithm.decompression_cycles >= 0
    # BDI's 2-cycle latency is why the paper picked it (Section V).
    assert make_compressor("bdi").decompression_cycles == 2

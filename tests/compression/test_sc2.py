"""Tests for SC2 statistical compression."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CompressionError
from repro.compression.sc2 import (
    _huffman_code_lengths,
    DEFAULT_CODEBOOK_SIZE,
    MAX_CODE_BITS,
    SC2Compressor,
)

lines = st.binary(min_size=64, max_size=64)


def words(*values):
    return struct.pack("<16I", *[v & 0xFFFFFFFF for v in values])


class TestHuffman:
    def test_single_symbol(self):
        assert _huffman_code_lengths({7: 100}) == {7: 1}

    def test_two_symbols(self):
        lengths = _huffman_code_lengths({1: 10, 2: 1})
        assert lengths == {1: 1, 2: 1}

    def test_skewed_distribution_gives_short_codes_to_frequent(self):
        lengths = _huffman_code_lengths({1: 1000, 2: 10, 3: 10, 4: 1})
        assert lengths[1] < lengths[4]

    def test_kraft_inequality(self):
        freqs = {i: (i + 1) ** 2 for i in range(20)}
        lengths = _huffman_code_lengths(freqs)
        assert sum(2 ** -n for n in lengths.values()) <= 1.0 + 1e-9

    def test_empty(self):
        assert _huffman_code_lengths({}) == {}


class TestTraining:
    def test_untrained_knows_zero(self):
        sc2 = SC2Compressor()
        block = sc2.compress(b"\x00" * 64)
        assert block.is_compressed
        assert block.size_bytes <= 2  # 16 one-bit codes

    def test_training_compresses_sampled_values(self):
        sc2 = SC2Compressor()
        hot = words(*([0xDEADBEEF] * 16))
        before = sc2.compressed_size(hot)
        sc2.train([hot] * 10 + [b"\x00" * 64] * 10)
        after = sc2.compressed_size(hot)
        assert after < before

    def test_unsampled_values_escape(self):
        sc2 = SC2Compressor()
        sc2.train([b"\x00" * 64])
        cold = words(*range(0x10000, 0x10010))
        block = sc2.compress(cold)
        # 16 escapes of 36 bits each = 72 bytes > 64: falls back.
        assert block.encoding == "uncompressed"

    def test_codebook_is_bounded(self):
        sc2 = SC2Compressor(codebook_size=8)
        samples = [words(*(i * 16 + j for j in range(16))) for i in range(20)]
        sc2.train(samples)
        assert len(sc2.codebook) <= 8 + 1  # + the always-present zero

    def test_code_lengths_capped(self):
        sc2 = SC2Compressor()
        samples = [words(*(i * 16 + j for j in range(16))) for i in range(16)]
        sc2.train(samples)
        assert all(n <= MAX_CODE_BITS for n in sc2.codebook.values())

    def test_train_on_empty_rejected(self):
        with pytest.raises(CompressionError):
            SC2Compressor().train([])

    def test_bad_codebook_size_rejected(self):
        with pytest.raises(CompressionError):
            SC2Compressor(codebook_size=0)

    def test_default_codebook_size(self):
        assert SC2Compressor().codebook_size == DEFAULT_CODEBOOK_SIZE


class TestRoundTrip:
    @given(lines)
    @settings(max_examples=200)
    def test_untrained_roundtrip(self, data):
        sc2 = SC2Compressor()
        assert sc2.decompress(sc2.compress(data)) == data

    @given(st.lists(st.sampled_from([0, 1, 0xFF, 0xDEAD, 0xBEEF0000]), min_size=16, max_size=16))
    def test_trained_roundtrip(self, values):
        sc2 = SC2Compressor()
        sc2.train([words(*([v] * 16)) for v in (0, 1, 0xFF, 0xDEAD, 0xBEEF0000)])
        data = words(*values)
        block = sc2.compress(data)
        assert sc2.decompress(block) == data
        assert block.is_compressed

    def test_rejects_foreign_block(self):
        from repro.compression.bdi import BDICompressor

        with pytest.raises(CompressionError):
            SC2Compressor().decompress(BDICompressor().compress(b"\x00" * 64))

"""Tests for zero-content detection and the algorithm registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import (
    ALGORITHMS,
    CompressionError,
    make_compressor,
    ZeroContentCompressor,
)
from repro.compression.segments import EVAL_GEOMETRY

zero = ZeroContentCompressor()


class TestZeroContent:
    def test_zero_line_detected(self):
        block = zero.compress(b"\x00" * 64)
        assert block.encoding == "zeros"
        assert block.size_bytes == 1

    def test_nonzero_stored_verbatim(self):
        data = b"\x01" + b"\x00" * 63
        block = zero.compress(data)
        assert block.encoding == "uncompressed"
        assert block.size_bytes == 64

    @given(st.binary(min_size=64, max_size=64))
    def test_roundtrip(self, data):
        assert zero.decompress(zero.compress(data)) == data

    def test_zero_block_segment_size(self):
        block = zero.compress(b"\x00" * 64)
        assert block.size_in_segments(EVAL_GEOMETRY) == 1


class TestRegistry:
    def test_all_registered_algorithms_roundtrip(self):
        cases = [b"\x00" * 64, bytes(range(64)), b"\xff" * 64]
        for name in ALGORITHMS:
            algorithm = make_compressor(name)
            for data in cases:
                block = algorithm.compress(data)
                assert algorithm.decompress(block) == data, (name, data[:8])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(CompressionError):
            make_compressor("lzma")

    def test_registry_names_match_instances(self):
        for name, cls in ALGORITHMS.items():
            assert cls.name == name

    def test_bdi_is_registered(self):
        assert "bdi" in ALGORITHMS

"""Tests for segment arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.segments import (
    EVAL_GEOMETRY,
    EXAMPLE_GEOMETRY,
    SegmentError,
    SegmentGeometry,
)


class TestGeometryConstruction:
    def test_eval_geometry_has_16_segments(self):
        assert EVAL_GEOMETRY.segments_per_line == 16

    def test_example_geometry_has_8_segments(self):
        assert EXAMPLE_GEOMETRY.segments_per_line == 8

    def test_rejects_zero_line_bytes(self):
        with pytest.raises(SegmentError):
            SegmentGeometry(0, 4)

    def test_rejects_zero_segment_bytes(self):
        with pytest.raises(SegmentError):
            SegmentGeometry(64, 0)

    def test_rejects_non_divisible_segments(self):
        with pytest.raises(SegmentError):
            SegmentGeometry(64, 7)


class TestSizeRounding:
    def test_zero_bytes_rounds_to_zero_segments(self):
        assert EVAL_GEOMETRY.size_in_segments(0) == 0

    def test_one_byte_rounds_to_one_segment(self):
        assert EVAL_GEOMETRY.size_in_segments(1) == 1

    def test_exact_boundary(self):
        assert EVAL_GEOMETRY.size_in_segments(8) == 2

    def test_full_line(self):
        assert EVAL_GEOMETRY.size_in_segments(64) == 16

    def test_rejects_negative(self):
        with pytest.raises(SegmentError):
            EVAL_GEOMETRY.size_in_segments(-1)

    def test_rejects_oversized(self):
        with pytest.raises(SegmentError):
            EVAL_GEOMETRY.size_in_segments(65)

    @given(st.integers(min_value=0, max_value=64))
    def test_rounding_never_loses_bytes(self, size):
        segments = EVAL_GEOMETRY.size_in_segments(size)
        assert segments * EVAL_GEOMETRY.segment_bytes >= size
        # And never over-rounds by a full segment.
        assert (segments - 1) * EVAL_GEOMETRY.segment_bytes < size or segments == 0


class TestFitPredicates:
    def test_two_halves_fit(self):
        assert EVAL_GEOMETRY.fits_together(8, 8)

    def test_overflow_detected(self):
        assert not EVAL_GEOMETRY.fits_together(8, 9)

    def test_zero_size_always_fits(self):
        assert EVAL_GEOMETRY.fits_together(16, 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(SegmentError):
            EVAL_GEOMETRY.fits_together(17)

    def test_free_segments(self):
        assert EVAL_GEOMETRY.free_segments(6, 2) == 8

    def test_free_segments_overflow_raises(self):
        with pytest.raises(SegmentError):
            EVAL_GEOMETRY.free_segments(10, 10)

    @given(
        st.integers(min_value=0, max_value=16),
        st.integers(min_value=0, max_value=16),
    )
    def test_fit_iff_free_nonnegative(self, a, b):
        fits = EVAL_GEOMETRY.fits_together(a, b)
        assert fits == (a + b <= 16)


class TestPaperExamples:
    """Examples from Sections III and IV.B (8-byte segments)."""

    def test_mru_6_and_lru_2_share_a_way(self):
        # Figure 2: MRU line of 6 segments + LRU line of 2 segments.
        assert EXAMPLE_GEOMETRY.fits_together(6, 2)

    def test_incoming_6_cannot_join_6(self):
        # The incoming 6-segment fill cannot pair with the 6-segment MRU.
        assert not EXAMPLE_GEOMETRY.fits_together(6, 6)

    def test_figure4_b_needs_3_segments(self):
        # B (3 segments) cannot replace X's 2-segment slot next to a
        # 6-segment base (Figure 4 step 5).
        assert not EXAMPLE_GEOMETRY.fits_together(6, 3)
        # but fits next to a 5-segment base (way 1, E's slot).
        assert EXAMPLE_GEOMETRY.fits_together(5, 3)

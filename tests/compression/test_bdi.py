"""Tests for Base-Delta-Immediate compression."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CompressionError
from repro.compression.bdi import BDICompressor

bdi = BDICompressor()

lines = st.binary(min_size=64, max_size=64)


def pack64(*values):
    return struct.pack("<8Q", *[v & (1 << 64) - 1 for v in values])


def pack32(*values):
    return struct.pack("<16I", *[v & 0xFFFFFFFF for v in values])


class TestSpecialCases:
    def test_zero_line(self):
        block = bdi.compress(b"\x00" * 64)
        assert block.encoding == "zeros"
        assert block.size_bytes == 1
        assert block.is_zero

    def test_repeated_value(self):
        data = (0xDEADBEEFCAFEF00D).to_bytes(8, "little") * 8
        block = bdi.compress(data)
        assert block.encoding == "repeated"
        assert block.size_bytes == 8

    def test_repeated_zero_is_classified_as_zeros(self):
        # All-zero wins over repeated (it is checked first and is smaller).
        assert bdi.compress(b"\x00" * 64).encoding == "zeros"


class TestDeltaEncodings:
    def test_base8_delta1(self):
        base = 0x1234_5678_9ABC_0000
        data = pack64(*(base + i for i in range(8)))
        block = bdi.compress(data)
        assert block.encoding == "base8-delta1"
        # 8 base + 8 deltas + 1 mask byte.
        assert block.size_bytes == 17

    def test_base8_delta2(self):
        base = 0x1234_5678_9ABC_0000
        data = pack64(*(base + i * 300 for i in range(8)))
        block = bdi.compress(data)
        assert block.encoding == "base8-delta2"
        assert block.size_bytes == 8 + 16 + 1

    def test_base8_delta4(self):
        base = 0x1234_5678_0000_0000
        data = pack64(*(base + i * 100_000 for i in range(8)))
        block = bdi.compress(data)
        assert block.encoding == "base8-delta4"
        assert block.size_bytes == 8 + 32 + 1

    def test_base4_delta1(self):
        base = 0x1234_5600
        data = pack32(*(base + i for i in range(16)))
        block = bdi.compress(data)
        assert block.encoding == "base4-delta1"
        # 4 base + 16 deltas + 2 mask bytes.
        assert block.size_bytes == 22

    def test_small_integers_use_immediate_zero_base(self):
        # Values near zero need no explicit base word at all.
        data = pack32(*(i - 8 for i in range(16)))
        block = bdi.compress(data)
        assert block.encoding == "base4-delta1"
        assert bdi.decompress(block) == data

    def test_mixed_base_and_immediate(self):
        # Half the words near zero, half near a large base: the original
        # BDI immediate case.
        values = []
        base = 0x0BAD_F00D_0000_0000
        for i in range(8):
            values.append(i if i % 2 == 0 else base + i)
        data = pack64(*values)
        block = bdi.compress(data)
        assert block.is_compressed
        assert bdi.decompress(block) == data

    def test_incompressible_random_data(self):
        data = bytes((i * 37 + 11) % 256 for i in range(64))
        block = bdi.compress(data)
        assert block.encoding == "uncompressed"
        assert block.size_bytes == 64
        assert not block.is_compressed

    def test_delta_wraparound(self):
        # 0xFFFF...FF is delta -1 from zero: must compress, not overflow.
        data = pack64(*([0] * 7 + [(1 << 64) - 1]))
        block = bdi.compress(data)
        assert block.is_compressed
        assert bdi.decompress(block) == data


class TestDecompression:
    def test_rejects_foreign_block(self):
        from repro.compression.zero import ZeroContentCompressor

        foreign = ZeroContentCompressor().compress(b"\x00" * 64)
        with pytest.raises(CompressionError):
            bdi.decompress(foreign)

    def test_zero_roundtrip(self):
        assert bdi.decompress(bdi.compress(b"\x00" * 64)) == b"\x00" * 64

    @given(lines)
    @settings(max_examples=300)
    def test_roundtrip_lossless(self, data):
        assert bdi.decompress(bdi.compress(data)) == data

    @given(lines)
    @settings(max_examples=200)
    def test_size_never_exceeds_line(self, data):
        block = bdi.compress(data)
        assert 0 < block.size_bytes <= 64

    @given(st.integers(min_value=0, max_value=(1 << 61) - 1), st.integers(0, 255))
    def test_compressible_family_roundtrip(self, base, spread):
        data = pack64(*(base + (i * spread) % 256 for i in range(8)))
        block = bdi.compress(data)
        assert bdi.decompress(block) == data
        assert block.size_bytes <= 64


class TestInputValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(CompressionError):
            bdi.compress(b"\x00" * 63)

    def test_non_bytes_rejected(self):
        with pytest.raises(CompressionError):
            bdi.compress("not bytes")  # type: ignore[arg-type]

    def test_custom_line_size(self):
        small = BDICompressor(line_size=32)
        data = b"\x00" * 32
        assert small.decompress(small.compress(data)) == data

    def test_invalid_line_size(self):
        with pytest.raises(CompressionError):
            BDICompressor(line_size=33)


class TestCompressionRatio:
    def test_ratio_at_least_one(self):
        data = bytes((i * 37 + 11) % 256 for i in range(64))
        assert bdi.compression_ratio(data) == 1.0

    def test_zero_line_ratio_is_large(self):
        assert bdi.compression_ratio(b"\x00" * 64) == 64.0

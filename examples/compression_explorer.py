#!/usr/bin/env python3
"""Compare compression algorithms on the workload suite's data palettes.

The Base-Victim architecture is algorithm-agnostic (Section VII.A); this
example measures how BDI (the paper's choice), FPC, C-Pack and plain
zero-detection compress each workload category's characteristic data, and
what that means for Base-Victim's pairing constraint (two lines sharing
one physical way).
"""

from repro.compression import (
    BDICompressor,
    CPackCompressor,
    EVAL_GEOMETRY,
    FPCCompressor,
    ZeroContentCompressor,
)
from repro.workloads.datagen import build_palette
from repro.workloads.suite import CATEGORIES

ALGORITHMS = [
    BDICompressor(),
    FPCCompressor(),
    CPackCompressor(),
    ZeroContentCompressor(),
]


def palette_stats(category: str, comp_class: str):
    """Average compressed fraction per algorithm over one palette."""
    palette = build_palette(category, comp_class, seed=2024)
    rows = {}
    for algorithm in ALGORITHMS:
        total = sum(algorithm.compressed_size(entry.data) for entry in palette)
        rows[algorithm.name] = total / (len(palette) * 64)
    return rows


def pairing_probability(category: str, comp_class: str) -> float:
    """How often two random lines of this palette share one physical way."""
    palette = build_palette(category, comp_class, seed=2024)
    bdi = BDICompressor()
    sizes = [
        bdi.compress(entry.data).size_in_segments(EVAL_GEOMETRY)
        for entry in palette
    ]
    fits = sum(
        1
        for i, a in enumerate(sizes)
        for b in sizes[i:]
        if EVAL_GEOMETRY.fits_together(a, b)
    )
    pairs = len(sizes) * (len(sizes) + 1) // 2
    return fits / pairs


def main() -> None:
    header = f"{'category':14s} {'class':9s}" + "".join(
        f"{algorithm.name:>8s}" for algorithm in ALGORITHMS
    )
    print("average compressed size (fraction of 64B):")
    print(header)
    for category in CATEGORIES:
        for comp_class in ("friendly", "poor"):
            rows = palette_stats(category, comp_class)
            cells = "".join(f"{rows[a.name]:8.2f}" for a in ALGORITHMS)
            print(f"{category:14s} {comp_class:9s}{cells}")

    print("\nprobability two lines share one physical way (BDI, 4B segments):")
    for category in CATEGORIES:
        friendly = pairing_probability(category, "friendly")
        poor = pairing_probability(category, "poor")
        print(f"{category:14s} friendly {friendly:.2f}   poor {poor:.2f}")


if __name__ == "__main__":
    main()

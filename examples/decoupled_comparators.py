#!/usr/bin/env python3
"""Compare Base-Victim against the decoupled compressed caches.

Section II of the paper surveys VSC, DCC and SCC and argues they buy
extra effective capacity at the cost of data-array changes, deeper
pipelines and multi-line evictions.  This example measures what each
design's *functional* capacity and hit rate look like on one
compression-friendly trace, next to Base-Victim's opportunistic scheme.
"""

from repro.core import AccessKind
from repro.sim.config import (
    ARCH_BASE_VICTIM,
    ARCH_DCC,
    ARCH_SCC,
    ARCH_UNCOMPRESSED,
    ARCH_VSC,
    MachineConfig,
    TEST,
)
from repro.workloads.suite import TraceSuite

ARCHS = (ARCH_UNCOMPRESSED, ARCH_BASE_VICTIM, ARCH_SCC, ARCH_DCC, ARCH_VSC)


def main() -> None:
    suite = TraceSuite(TEST.reference_llc_lines, TEST.trace_length)
    name = "sysmark.1"
    trace = suite.trace(name)
    print(f"trace {name}: {len(trace)} accesses, "
          f"footprint {trace.unique_lines()} lines\n")

    print(f"{'architecture':16s} {'hit rate':>9s} {'capacity':>9s} {'multi-evict':>12s}")
    for arch in ARCHS:
        llc = MachineConfig(arch=arch).build_llc(TEST)
        data = suite.data_model(name)
        hits = 0
        for i in range(len(trace)):
            kind = AccessKind.WRITE if trace.kinds[i] == 1 else AccessKind.READ
            addr = trace.addrs[i]
            if trace.kinds[i] == 1:
                data.on_write(addr)
            hits += llc.access(addr, kind, data.size_of(addr)).hit
        capacity = llc.resident_logical_lines() / llc.geometry.num_lines
        multi = getattr(
            llc,
            "stat_multi_evict_fills",
            getattr(
                llc,
                "stat_multi_line_evictions",
                getattr(llc, "stat_superblock_evictions", 0),
            ),
        )
        print(
            f"{arch:16s} {hits / len(trace):9.3f} {capacity:8.2f}x {multi:12d}"
        )

    print(
        "\nThe decoupled designs pack more lines (higher capacity) but pay"
        "\nwith multi-line evictions; Base-Victim stays at ~1.5x with zero"
        "\nsuch events — the paper's Section II trade-off."
    )


if __name__ == "__main__":
    main()

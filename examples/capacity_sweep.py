#!/usr/bin/env python3
"""Sweep LLC capacity and compare against opportunistic compression.

Reproduces the Section VI.B.3 experiment shape in miniature: how much
uncompressed capacity is Base-Victim worth?  The paper's answer: a 2MB
compressed LLC performs like a 3MB uncompressed one (+50%).
"""

from repro import BASE_VICTIM_2MB, BASELINE_2MB, ExperimentRunner, TEST
from repro.sim.config import MachineConfig
from repro.sim.metrics import geomean, ipc_ratio
from repro.workloads.suite import friendly_specs

#: (label, machine): capacities expressed as ways x set-multiplier over
#: the 2MB-equivalent baseline; bigger arrays pay one extra cycle.
SWEEP = [
    ("1.0x uncompressed", BASELINE_2MB),
    ("1.5x uncompressed", MachineConfig(llc_ways=24, extra_llc_latency=1)),
    ("2.0x uncompressed", MachineConfig(llc_sets_mult=2.0, extra_llc_latency=1)),
    ("1.0x + Base-Victim", BASE_VICTIM_2MB),
]


def main() -> None:
    runner = ExperimentRunner(TEST, use_disk_cache=False)
    # A handful of compression-friendly traces keeps this example quick.
    names = [spec.name for spec in friendly_specs()[:12]]

    base = {name: runner.run_single(BASELINE_2MB, name) for name in names}
    print(f"{'configuration':22s} {'geomean IPC ratio':>18s}")
    for label, machine in SWEEP:
        runs = {name: runner.run_single(machine, name) for name in names}
        mean = geomean(ipc_ratio(runs[name], base[name]) for name in names)
        print(f"{label:22s} {mean:18.3f}")

    print(
        "\nBase-Victim should land near the 1.5x uncompressed row "
        "(the paper's '+50% capacity for 8.5% area' headline)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Section III's negative interaction, reproduced two ways.

First the paper's worked example (Figure 2): a naive two-tag compressed
cache must evict the MRU line to make room for an incoming fill because
the MRU line shares a physical way with the LRU victim.

Then the population effect: on a workload whose working set already fits
the LLC, compression has nothing to win — but the naive two-tag cache
still loses performance, while Base-Victim by construction cannot.
"""

from repro import BASELINE_2MB, BASE_VICTIM_2MB, ExperimentRunner, TWO_TAG_2MB
from repro.cache.config import CacheGeometry
from repro.cache.replacement import LRUPolicy
from repro.compression.segments import EXAMPLE_GEOMETRY
from repro.core import AccessKind, TwoTagLLC
from repro.sim.metrics import ipc_ratio


def worked_example() -> None:
    """Figure 2: partner line victimization kills the MRU line."""
    # One set, 4 physical ways, 8 tags, 8-byte segments as in the paper.
    llc = TwoTagLLC(CacheGeometry(4 * 64, 4), LRUPolicy(), EXAMPLE_GEOMETRY)

    # Build the Figure 2 state: the MRU line (6 segments) shares way 0
    # with the LRU line (2 segments); all eight logical slots are full.
    llc.access(0x10, AccessKind.READ, 6)  # will become MRU
    llc.access(0x11, AccessKind.READ, 2)  # shares way 0, will be LRU
    for addr in (0x20, 0x21, 0x30, 0x31, 0x40, 0x41):
        llc.access(addr, AccessKind.READ, 4)
    llc.access(0x10, AccessKind.READ, 6)  # 0x10 is MRU again

    print("before the fill:")
    print(f"  MRU line 0x10 resident: {llc.contains(0x10)}")

    # Incoming 6-segment line: LRU victim is 0x11 (2 segments) whose
    # partner is the 6-segment MRU line 0x10 — they cannot coexist.
    result = llc.access(0x99, AccessKind.READ, 6)

    print("after filling a 6-segment line:")
    print(f"  MRU line 0x10 resident: {llc.contains(0x10)}  <-- victimized!")
    print(f"  partner victimizations: {llc.stat_partner_victimizations}")
    print(f"  lines invalidated from L1/L2: {len(result.invalidates)}\n")


def population_effect() -> None:
    """Traces where partner victimization bites: two-tag loses, Base-Victim
    never does (uses the bench preset; results cache under .repro_cache)."""
    from repro import BENCH  # bench-scale traces show the real losses

    runner = ExperimentRunner(BENCH)
    print(f"{'trace':14s} {'two-tag':>9s} {'base-victim':>12s}")
    for name in ("gemsFDTD.2", "bwaves.1", "3dmark.4", "cinebench.3"):
        base = runner.run_single(BASELINE_2MB, name)
        tt = runner.run_single(TWO_TAG_2MB, name)
        bv = runner.run_single(BASE_VICTIM_2MB, name)
        print(
            f"{name:14s} {ipc_ratio(tt, base):9.3f} {ipc_ratio(bv, base):12.3f}"
        )
    print("\n(ratios < 1.0 are performance losses vs the uncompressed cache)")


if __name__ == "__main__":
    worked_example()
    population_effect()

#!/usr/bin/env python3
"""Quickstart: compress a cache line, then measure Base-Victim end to end.

Runs in a few seconds using the small ``TEST`` preset.  For paper-scale
numbers use the ``BENCH`` preset (the one the ``benchmarks/`` suite uses).
"""

import struct

from repro import (
    BASE_VICTIM_2MB,
    BASELINE_2MB,
    BDICompressor,
    ExperimentRunner,
    TEST,
)
from repro.sim.metrics import dram_read_ratio, ipc_ratio


def compression_demo() -> None:
    """BDI in isolation: the paper's compression algorithm (Section V)."""
    bdi = BDICompressor()

    # An array of doubles sharing an exponent: BDI's sweet spot.
    base = 0x3FF0_0000_0000_0000
    fp_line = struct.pack("<8Q", *(base + i * 3 for i in range(8)))
    block = bdi.compress(fp_line)
    print(f"FP array line     -> {block.encoding:14s} {block.size_bytes:3d} bytes")

    zero_line = b"\x00" * 64
    block = bdi.compress(zero_line)
    print(f"zero line         -> {block.encoding:14s} {block.size_bytes:3d} bytes")

    random_line = bytes((i * 37 + 11) % 256 for i in range(64))
    block = bdi.compress(random_line)
    print(f"high-entropy line -> {block.encoding:14s} {block.size_bytes:3d} bytes")

    # Lossless: decompression restores the exact line.
    assert bdi.decompress(bdi.compress(fp_line)) == fp_line
    print("round-trip OK\n")


def simulation_demo() -> None:
    """Uncompressed baseline vs Base-Victim on one SPECint-like trace."""
    runner = ExperimentRunner(TEST, use_disk_cache=False)
    trace_name = "mcf.1"

    base = runner.run_single(BASELINE_2MB, trace_name)
    bv = runner.run_single(BASE_VICTIM_2MB, trace_name)

    print(f"trace {trace_name} ({base.accesses} accesses)")
    print(f"  baseline      IPC {base.ipc:6.3f}   LLC hit rate {base.llc_hit_rate:.3f}")
    print(f"  base-victim   IPC {bv.ipc:6.3f}   LLC hit rate {bv.llc_hit_rate:.3f}")
    print(f"  IPC ratio        {ipc_ratio(bv, base):6.3f}")
    print(f"  DRAM read ratio  {dram_read_ratio(bv, base):6.3f}")
    print(f"  victim-cache hits {bv.llc_victim_hits}")

    # The paper's structural guarantee: never fewer hits than baseline.
    assert bv.llc_misses <= base.llc_misses
    print("hit-rate guarantee holds")


if __name__ == "__main__":
    compression_demo()
    simulation_demo()

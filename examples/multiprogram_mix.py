#!/usr/bin/env python3
"""Four-way multi-program simulation (paper Section VI.C).

Runs one mix of four cache-sensitive traces on a shared LLC and reports
normalised weighted speedup for Base-Victim and for a 50% larger
uncompressed cache, against the uncompressed baseline.
"""

from repro import BASELINE_2MB, BASE_VICTIM_2MB, ExperimentRunner, TEST
from repro.sim.config import MachineConfig
from repro.sim.metrics import weighted_speedup
from repro.workloads.mixes import build_mixes


def main() -> None:
    runner = ExperimentRunner(TEST, use_disk_cache=False)
    mix = build_mixes()[0]
    print(f"mix {mix.name}: {', '.join(mix.trace_names)}\n")

    # Single-program runs on the same machine provide IPC_alone.
    machines = {
        "baseline": BASELINE_2MB,
        "base-victim": BASE_VICTIM_2MB,
        "+50% capacity": MachineConfig(llc_ways=24, extra_llc_latency=1),
    }
    alone = {
        label: [runner.run_single(machine, name) for name in mix.trace_names]
        for label, machine in machines.items()
    }

    speedups = {}
    for label, machine in machines.items():
        shared = runner.run_mix(machine, mix)
        speedups[label] = weighted_speedup(shared.thread_results, alone[label])
        hit_rate = shared.llc_hit_rate
        print(
            f"{label:14s} weighted speedup {speedups[label]:.3f}   "
            f"shared-LLC hit rate {hit_rate:.3f}"
        )

    base = speedups["baseline"]
    print("\nnormalised to the uncompressed baseline:")
    for label, speedup in speedups.items():
        print(f"{label:14s} {speedup / base:.3f}")


if __name__ == "__main__":
    main()

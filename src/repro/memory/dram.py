"""DDR3 main-memory timing model.

Models the paper's memory system (Section V): two channels of DDR3-1600
with timing parameters tCL-tRCD-tRP-tRAS = 15-15-15-34 (DRAM clock cycles
at 800 MHz; the CPU runs at 4 GHz, i.e. 5 CPU cycles per DRAM cycle).

The model is event-free but stateful: each bank tracks its open row and
the CPU-cycle time at which it next becomes available, and each channel
tracks data-bus occupancy.  A read's latency therefore includes queueing
behind earlier requests, so heavier read traffic yields longer average
latency — which is exactly the coupling that makes the paper's "DRAM Read
Ratio" curves track the IPC curves in Figures 6-8 and 12.

Writes are posted (they occupy banks and the bus but add no core stall).
Energy counters (activations, reads, writes) feed the Micron-style energy
model in :mod:`repro.memory.power`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimings:
    """DDR3 timing parameters, in DRAM clock cycles."""

    tCL: int = 15
    tRCD: int = 15
    tRP: int = 15
    tRAS: int = 34
    #: Burst length 8 moves a 64B line in 4 DRAM clocks.
    burst_cycles: int = 4

    @property
    def row_hit_cycles(self) -> int:
        """DRAM cycles for an access that hits the open row."""
        return self.tCL

    @property
    def row_empty_cycles(self) -> int:
        """DRAM cycles for an access to a precharged bank."""
        return self.tRCD + self.tCL

    @property
    def row_conflict_cycles(self) -> int:
        """DRAM cycles for an access that closes and reopens a row."""
        return self.tRP + self.tRCD + self.tCL


@dataclass(frozen=True)
class DRAMConfig:
    """Organisation of the memory system (paper defaults)."""

    channels: int = 2
    banks_per_channel: int = 8
    #: 64B lines per row: 8KB rows.
    lines_per_row: int = 128
    timings: DRAMTimings = DRAMTimings()
    #: CPU cycles per DRAM cycle (4 GHz core / 800 MHz DDR3-1600 clock).
    cpu_per_dram_cycle: int = 5
    #: Fixed controller/interconnect latency in CPU cycles each way.
    controller_cycles: int = 30


class _Bank:
    __slots__ = ("open_row", "ready_time", "activate_time")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.ready_time = 0.0
        self.activate_time = -(10**9)


class DRAMModel:
    """Two-channel, multi-bank DDR3 with open-row policy and queueing."""

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        cfg = self.config
        self._banks = [
            [_Bank() for _ in range(cfg.banks_per_channel)]
            for _ in range(cfg.channels)
        ]
        self._bus_free = [0.0] * cfg.channels
        # Hot-path constants, precomputed so _request does no dataclass
        # field or property lookups.  All integer products, so latencies
        # are bit-identical to computing them per request.
        timings = cfg.timings
        ratio = cfg.cpu_per_dram_cycle
        self._channels = cfg.channels
        self._banks_per_channel = cfg.banks_per_channel
        self._lines_per_row = cfg.lines_per_row
        self._controller = cfg.controller_cycles
        self._row_hit_cpu = timings.row_hit_cycles * ratio
        self._row_empty_cpu = timings.row_empty_cycles * ratio
        self._row_conflict_cpu = timings.row_conflict_cycles * ratio
        self._tras_cpu = timings.tRAS * ratio
        self._burst_cpu = timings.burst_cycles * ratio
        self.stat_reads = 0
        self.stat_writes = 0
        self.stat_row_hits = 0
        self.stat_row_conflicts = 0
        self.stat_activates = 0
        self.stat_total_read_latency = 0.0

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------

    def _map(self, line_addr: int) -> tuple[int, int, int]:
        """line address -> (channel, bank, row).

        Channels interleave at line granularity and banks right above, so
        streaming accesses spread across the whole system.
        """
        cfg = self.config
        channel = line_addr % cfg.channels
        rest = line_addr // cfg.channels
        bank = rest % cfg.banks_per_channel
        rest //= cfg.banks_per_channel
        row = rest // cfg.lines_per_row
        return channel, bank, row

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def read(self, line_addr: int, now: float) -> float:
        """Issue a read at CPU-cycle ``now``; return its latency in CPU cycles."""
        # The request body (inlined _map plus the precomputed CPU-cycle
        # constants) is duplicated across read/write: these are the two
        # hottest calls of a miss-dominated run, and the shared-helper
        # version pays one extra frame per DRAM request.
        channel = line_addr % self._channels
        rest = line_addr // self._channels
        bank_index = rest % self._banks_per_channel
        row = rest // self._banks_per_channel // self._lines_per_row
        bank = self._banks[channel][bank_index]

        controller = self._controller
        start = now + controller
        if bank.ready_time > start:
            start = bank.ready_time

        open_row = bank.open_row
        if open_row == row:
            access_cpu = self._row_hit_cpu
            self.stat_row_hits += 1
        elif open_row is None:
            access_cpu = self._row_empty_cpu
            self.stat_activates += 1
        else:
            # Conflict: respect tRAS since the previous activate before
            # precharging the old row.
            self.stat_row_conflicts += 1
            self.stat_activates += 1
            earliest_pre = bank.activate_time + self._tras_cpu
            if earliest_pre > start:
                start = earliest_pre
            access_cpu = self._row_conflict_cpu
        bank.open_row = row
        bank.activate_time = start

        data_ready = start + access_cpu
        bus_free = self._bus_free[channel]
        if bus_free > data_ready:
            data_ready = bus_free
        completion = data_ready + self._burst_cpu
        self._bus_free[channel] = completion
        bank.ready_time = completion

        latency = completion + controller - now
        self.stat_reads += 1
        self.stat_total_read_latency += latency
        return latency

    def write(self, line_addr: int, now: float) -> None:
        """Issue a posted write; occupies the bank/bus but stalls nothing."""
        # Same request body as read(); see the comment there.
        channel = line_addr % self._channels
        rest = line_addr // self._channels
        bank_index = rest % self._banks_per_channel
        row = rest // self._banks_per_channel // self._lines_per_row
        bank = self._banks[channel][bank_index]

        start = now + self._controller
        if bank.ready_time > start:
            start = bank.ready_time

        open_row = bank.open_row
        if open_row == row:
            access_cpu = self._row_hit_cpu
            self.stat_row_hits += 1
        elif open_row is None:
            access_cpu = self._row_empty_cpu
            self.stat_activates += 1
        else:
            self.stat_row_conflicts += 1
            self.stat_activates += 1
            earliest_pre = bank.activate_time + self._tras_cpu
            if earliest_pre > start:
                start = earliest_pre
            access_cpu = self._row_conflict_cpu
        bank.open_row = row
        bank.activate_time = start

        data_ready = start + access_cpu
        bus_free = self._bus_free[channel]
        if bus_free > data_ready:
            data_ready = bus_free
        completion = data_ready + self._burst_cpu
        self._bus_free[channel] = completion
        bank.ready_time = completion

        self.stat_writes += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def average_read_latency(self) -> float:
        """Mean read latency in CPU cycles (0 when no reads were issued)."""
        if self.stat_reads == 0:
            return 0.0
        return self.stat_total_read_latency / self.stat_reads

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit an open row."""
        total = self.stat_reads + self.stat_writes
        if total == 0:
            return 0.0
        return self.stat_row_hits / total

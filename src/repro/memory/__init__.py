"""Main-memory substrate: DDR3 timing and energy models."""

from repro.memory.dram import DRAMConfig, DRAMModel, DRAMTimings
from repro.memory.power import (
    DRAMEnergyBreakdown,
    DRAMEnergyParams,
    dram_energy,
    dram_energy_from_counts,
)

__all__ = [
    "DRAMConfig",
    "DRAMEnergyBreakdown",
    "DRAMEnergyParams",
    "DRAMModel",
    "DRAMTimings",
    "dram_energy",
    "dram_energy_from_counts",
]

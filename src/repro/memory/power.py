"""Micron-style DRAM energy model.

The paper estimates DRAM array energy with the Micron DDR3 power
calculator (Section VI.D, [25]).  That spreadsheet reduces to a small set
of per-event energies plus background power; this module implements that
reduction with representative DDR3-1600 values derived from Micron
datasheet currents (IDD0/IDD4R/IDD4W/IDD2N at 1.5 V), scaled to a
two-channel system.

Only energy *ratios* between cache configurations matter for reproducing
Figure 14, so the absolute calibration is less important than the split
between traffic-proportional energy (reads/writes/activates, which
compression reduces) and background energy (which it does not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.dram import DRAMModel


@dataclass(frozen=True)
class DRAMEnergyParams:
    """Per-event DRAM energies (nJ) and background power (W)."""

    #: Energy per activate/precharge pair (one row miss).
    activate_nj: float = 2.5
    #: Energy per 64B read burst (array + I/O).
    read_nj: float = 5.0
    #: Energy per 64B write burst.
    write_nj: float = 5.2
    #: Background (standby + refresh) power for the whole memory system.
    background_watts: float = 0.9
    #: CPU frequency used to convert cycles to seconds.
    cpu_hz: float = 4.0e9


@dataclass(frozen=True)
class DRAMEnergyBreakdown:
    """DRAM energy of one run, in joules."""

    activate_j: float
    read_j: float
    write_j: float
    background_j: float

    @property
    def total_j(self) -> float:
        """Total energy in joules across all components."""
        return self.activate_j + self.read_j + self.write_j + self.background_j


def dram_energy(
    model: DRAMModel,
    cycles: float,
    params: DRAMEnergyParams | None = None,
) -> DRAMEnergyBreakdown:
    """Energy consumed by the memory system over a run of ``cycles``."""
    params = params or DRAMEnergyParams()
    seconds = cycles / params.cpu_hz
    return DRAMEnergyBreakdown(
        activate_j=model.stat_activates * params.activate_nj * 1e-9,
        read_j=model.stat_reads * params.read_nj * 1e-9,
        write_j=model.stat_writes * params.write_nj * 1e-9,
        background_j=params.background_watts * seconds,
    )


def dram_energy_from_counts(
    reads: int,
    writes: int,
    activates: int,
    cycles: float,
    params: DRAMEnergyParams | None = None,
) -> DRAMEnergyBreakdown:
    """Same computation from raw counters (for the energy bench harness)."""
    params = params or DRAMEnergyParams()
    seconds = cycles / params.cpu_hz
    return DRAMEnergyBreakdown(
        activate_j=activates * params.activate_nj * 1e-9,
        read_j=reads * params.read_nj * 1e-9,
        write_j=writes * params.write_nj * 1e-9,
        background_j=params.background_watts * seconds,
    )

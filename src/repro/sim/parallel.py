"""Fault-tolerant parallel sweep execution engine.

Every figure in the paper is an embarrassingly parallel sweep of
(machine configuration x trace) plus a handful of multi-program mixes.
This module fans the *uncached* jobs of such a sweep across a process
pool with chunked work distribution while keeping three guarantees the
experiment cache depends on:

* **Determinism** — results are returned in submission order, and each
  simulation is a pure function of (preset, machine, trace/mix), so a
  parallel sweep is bit-identical to a serial one (locked down by
  ``tests/sim/test_parallel.py``), *even when jobs are retried, workers
  crash or shards are salvaged* (``tests/sim/test_faults.py``).
* **Cooperating writers** — each worker process appends finished results
  to its own JSONL *shard* (``<cache>.shards-<pid>/shard-<worker pid>
  .jsonl``); no two processes ever write one file.  On completion the
  parent folds the shards into the main ``results-v*.jsonl`` cache in
  canonical job order via :func:`~repro.sim.resultcache
  .merge_cache_entries` — an advisory-locked, re-read-then-atomic-replace
  merge — so any number of overlapping sweeps sharing one cache
  directory cooperate instead of clobbering each other (existing keys
  always win, new keys land in submission order).
* **Crash tolerance** — shards are flushed per job, so results survive a
  killed sweep; the tolerant loader in :mod:`repro.sim.resultcache`
  skips (and counts) any line torn by the interruption.

On top of the scheduling layer sits a fault-tolerance layer in the
shape of a production job runner:

* every job attempt runs under a :class:`~repro.sim.retry.RetryPolicy`
  (seeded exponential backoff) and an optional ``SIGALRM`` watchdog
  (:func:`~repro.sim.retry.deadline`), so transient errors and hangs
  become retries instead of sweep aborts;
* a worker crash breaks the pool, which the parent *rebuilds* — jobs
  already persisted to shards are salvaged, the rest are re-sharded
  across the fresh pool (bounded by :data:`MAX_WORKER_RECOVERIES`);
* jobs that exhaust their retry budget degrade gracefully into
  structured :class:`~repro.sim.retry.FailedCell` records inside the
  returned :class:`SweepOutcome` — the sweep itself completes.

Worker processes build one :class:`~repro.workloads.suite.TraceSuite`
each (in the pool initializer) so generated traces are reused across all
jobs a worker executes.  All callables handed to the pool are picklable
top-level functions.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.tracing import TRACE_ENV
from repro.sim import faultinject
from repro.sim.config import MachineConfig, Preset
from repro.sim.multi_core import simulate_mix
from repro.sim.resultcache import (
    corrupt_line_total,
    crc_failure_total,
    encode_entry,
    iter_cache_entries,
    merge_cache_entries,
)
from repro.sim.retry import FailedCell, JobOutcome, RetryPolicy, deadline
from repro.sim.single_core import simulate_trace
from repro.workloads.mixes import MixSpec
from repro.workloads.suite import TraceSuite

#: Environment variable overriding the worker count (0 = all CPUs).
JOBS_ENV = "REPRO_JOBS"

#: Job kinds.
SINGLE = "single"
MIX = "mix"

#: How many broken-pool rebuilds a single sweep tolerates before the
#: crash is considered systematic and re-raised.
MAX_WORKER_RECOVERIES = 5

#: Progress callback signature: (done, total, key-of-last-finished-job).
ProgressFn = Callable[[int, int, str], None]


def resolve_jobs(jobs: int | None = None, default: int = 1) -> int:
    """Resolve a worker count: explicit value > $REPRO_JOBS > ``default``.

    Zero or negative values (from any source) mean "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"${JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = default
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class SweepJob:
    """One pending simulation: a cache key plus what to simulate."""

    key: str
    kind: str  # SINGLE or MIX
    machine: MachineConfig
    trace_name: str = ""
    mix: MixSpec | None = None


@dataclass
class SweepOutcome:
    """Everything a fault-tolerant sweep produced, success or not.

    ``results`` is in submission order; an entry is ``None`` exactly
    when the matching job appears in ``failures``.  The counters feed
    the ``sweep/*`` and ``cache/*`` observability metrics: ``retries``
    (re-attempts across all jobs), ``recovered_workers`` (pool rebuilds
    after worker crashes), ``shard_recovered`` (results salvaged from a
    dead pool's shards instead of recomputed), ``corrupt_lines`` (JSONL
    lines skipped while merging this sweep's shards),
    ``crc_failures`` (the subset of skipped lines whose CRC32 suffix
    did not match their payload — torn writes or at-rest bit rot), and
    ``lock_waits`` (backoff sleeps performed while waiting for the
    cache lock during the merge).
    """

    results: list[dict | None] = field(default_factory=list)
    failures: list[FailedCell] = field(default_factory=list)
    retries: int = 0
    recovered_workers: int = 0
    shard_recovered: int = 0
    corrupt_lines: int = 0
    crc_failures: int = 0
    lock_waits: int = 0

    @property
    def ok(self) -> bool:
        """True when every job produced a result."""
        return not self.failures


def simulate_job(job: SweepJob, preset: Preset, suite: TraceSuite) -> dict:
    """Run one sweep job to its serialised result dict.

    Shared by the serial path (:class:`~repro.sim.experiment
    .ExperimentRunner`) and the pool workers so both produce identical
    results by construction.
    """
    if job.kind == SINGLE:
        trace = suite.trace(job.trace_name)
        data = suite.data_model(job.trace_name)
        return simulate_trace(trace, data, job.machine, preset).to_dict()
    if job.kind == MIX:
        assert job.mix is not None
        return simulate_mix(job.mix, job.machine, preset, suite).to_dict()
    raise ValueError(f"unknown job kind {job.kind!r}")


def execute_job(
    index: int,
    job: SweepJob,
    preset: Preset,
    suite: TraceSuite,
    policy: RetryPolicy,
) -> JobOutcome:
    """Run one job under the retry policy, watchdog and fault hooks.

    The single execution primitive shared by pool workers and the serial
    path, so ``jobs=1`` and ``jobs=N`` sweeps retry, time out and fail
    identically.  Never raises for job errors: retry exhaustion returns
    a :class:`~repro.sim.retry.FailedCell` outcome instead.
    """
    attempt = 0
    started = time.perf_counter()
    while True:
        attempt += 1
        try:
            with deadline(policy.timeout):
                faultinject.before_attempt(index, attempt)
                result = simulate_job(job, preset, suite)
            return JobOutcome(index=index, key=job.key, result=result, retries=attempt - 1)
        except Exception as exc:  # noqa: BLE001 — the retry boundary
            if attempt > policy.retries:
                failure = FailedCell(
                    key=job.key,
                    index=index,
                    error=type(exc).__name__,
                    message=str(exc),
                    attempts=attempt,
                    elapsed=time.perf_counter() - started,
                )
                return JobOutcome(
                    index=index, key=job.key, failure=failure, retries=attempt - 1
                )
            time.sleep(policy.delay(job.key, attempt))


# ----------------------------------------------------------------------
# Worker-process side.  State lives in a module-level dict set up by the
# pool initializer; with the spawn start method the module is re-imported
# in each worker, so nothing here may depend on parent-process state.
# ----------------------------------------------------------------------

_WORKER: dict = {}


def _init_worker(preset: Preset, shard_dir: str | None, policy: RetryPolicy) -> None:
    """Pool initializer: build the per-process suite, shard path, policy."""
    # Tracing is a serial-only diagnostic: a pool of workers all writing
    # per-access events to stderr would interleave uselessly.
    os.environ.pop(TRACE_ENV, None)
    _WORKER["preset"] = preset
    _WORKER["suite"] = TraceSuite(preset.reference_llc_lines, preset.trace_length)
    _WORKER["policy"] = policy
    _WORKER["shard_path"] = (
        Path(shard_dir) / f"shard-{os.getpid()}.jsonl" if shard_dir else None
    )


def _run_chunk(chunk: Sequence[tuple[int, SweepJob]]) -> list[JobOutcome]:
    """Execute a chunk of jobs in a worker; append successes to its shard."""
    outcomes: list[JobOutcome] = []
    shard_path: Path | None = _WORKER["shard_path"]
    for index, job in chunk:
        outcome = execute_job(
            index, job, _WORKER["preset"], _WORKER["suite"], _WORKER["policy"]
        )
        # Flush per job so a later crash loses at most the line being
        # written — this is what makes shard salvage and resume work.
        if outcome.result is not None and shard_path is not None:
            with shard_path.open("a") as handle:
                handle.write(encode_entry(job.key, outcome.result) + "\n")
            faultinject.after_shard_write(index, shard_path)
        outcomes.append(outcome)
    return outcomes


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork where available (fast start, no import tax)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# Parent-process side.
# ----------------------------------------------------------------------


def run_sweep(
    preset: Preset,
    jobs_list: Sequence[SweepJob],
    *,
    jobs: int,
    cache_path: Path | None = None,
    progress: ProgressFn | None = None,
    chunksize: int | None = None,
    policy: RetryPolicy | None = None,
    lock_timeout: float | None = None,
) -> SweepOutcome:
    """Simulate ``jobs_list`` across ``jobs`` workers; results in job order.

    When ``cache_path`` is given, the workers' shard files are folded
    into it (in ``jobs_list`` order, deduplicated by key, under the
    cache's advisory lock with ``lock_timeout`` bounding the wait) after
    the pool drains, then deleted.  Keys in ``jobs_list`` must be unique.

    The sweep survives worker faults: per-job retries/timeouts are
    governed by ``policy`` (default: no retries, no timeout), a crashed
    pool is rebuilt with completed jobs salvaged from shards, and jobs
    that exhaust their retries surface as
    :attr:`SweepOutcome.failures` rather than exceptions.  Only a
    systematic crash (more than :data:`MAX_WORKER_RECOVERIES` pool
    rebuilds) propagates as :class:`BrokenProcessPool`.
    """
    policy = policy or RetryPolicy()
    total = len(jobs_list)
    outcome = SweepOutcome(results=[None] * total)
    if total == 0:
        return outcome
    workers = max(1, min(jobs, total))

    shard_dir: Path | None = None
    if cache_path is not None:
        shard_dir = cache_path.parent / f"{cache_path.stem}.shards-{os.getpid()}"
        shard_dir.mkdir(parents=True, exist_ok=True)

    finished: set[int] = set()

    def record(job_outcome: JobOutcome) -> None:
        """Fold one job outcome into the sweep, once per index."""
        if job_outcome.index in finished:
            return
        finished.add(job_outcome.index)
        outcome.retries += job_outcome.retries
        if job_outcome.failure is not None:
            outcome.failures.append(job_outcome.failure)
        else:
            outcome.results[job_outcome.index] = job_outcome.result
            if job_outcome.from_shard:
                outcome.shard_recovered += 1
        if progress is not None:
            progress(len(finished), total, job_outcome.key)

    try:
        remaining = list(range(total))
        recoveries_left = MAX_WORKER_RECOVERIES
        while remaining:
            pending = [(index, jobs_list[index]) for index in remaining]
            chunk = chunksize or max(1, math.ceil(len(pending) / (workers * 4)))
            chunks = [
                pending[start : start + chunk]
                for start in range(0, len(pending), chunk)
            ]
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=_pool_context(),
                    initializer=_init_worker,
                    initargs=(preset, str(shard_dir) if shard_dir else None, policy),
                ) as pool:
                    for future in as_completed(
                        [pool.submit(_run_chunk, part) for part in chunks]
                    ):
                        for job_outcome in future.result():
                            record(job_outcome)
            except BrokenProcessPool:
                # A worker died hard (OOM kill, segfault, os._exit).
                # Salvage whatever the dead pool already persisted, then
                # rebuild and re-shard the rest.
                if recoveries_left == 0:
                    raise
                recoveries_left -= 1
                outcome.recovered_workers += 1
                for job_outcome in _salvage_from_shards(
                    shard_dir, jobs_list, finished
                ):
                    record(job_outcome)
            remaining = [index for index in range(total) if index not in finished]

        if shard_dir is not None:
            assert cache_path is not None  # shard_dir implies a cache file
            _merge_shards(
                cache_path, shard_dir, jobs_list, outcome, lock_timeout
            )
    finally:
        if shard_dir is not None:
            _remove_shards(shard_dir)
    assert len(finished) == total  # every job has a result or a FailedCell
    return outcome


def _salvage_from_shards(
    shard_dir: Path | None,
    jobs_list: Sequence[SweepJob],
    finished: set[int],
) -> list[JobOutcome]:
    """Recover completed-but-unreported jobs from a dead pool's shards.

    A crashed worker takes its in-flight chunk's *futures* down with it,
    but every job it finished before dying is already on disk.  Reading
    the shards back turns those into ordinary outcomes so the rebuild
    only recomputes what was truly lost.
    """
    if shard_dir is None:
        return []
    persisted: dict[str, dict] = {}
    for shard in sorted(shard_dir.glob("shard-*.jsonl")):
        for key, result in iter_cache_entries(shard):
            persisted[key] = result
    return [
        JobOutcome(
            index=index, key=job.key, result=persisted[job.key], from_shard=True
        )
        for index, job in enumerate(jobs_list)
        if index not in finished and job.key in persisted
    ]


def _merge_shards(
    cache_path: Path,
    shard_dir: Path,
    jobs_list: Sequence[SweepJob],
    outcome: SweepOutcome,
    lock_timeout: float | None,
) -> None:
    """Fold worker shards into the main cache file in job order.

    The shards are authoritative (they are what survived on disk); any
    job whose shard line was lost falls back to the in-memory result.
    Failed jobs (result ``None`` and no shard line) are skipped — a
    failure must never fabricate a cache entry.  The fold itself runs
    under the cache's advisory lock and lands via atomic replace
    (:func:`~repro.sim.resultcache.merge_cache_entries`): entries
    already in the cache — e.g. written by an overlapping sweep — win,
    so concurrent same-matrix sweeps converge on a byte-identical file.
    Corrupt/CRC/lock-wait tallies land on ``outcome``.
    """
    corrupt_before = corrupt_line_total()
    crc_before = crc_failure_total()
    sharded: dict[str, dict] = {}
    for shard in sorted(shard_dir.glob("shard-*.jsonl")):
        # One streaming pass per shard — no intermediate per-shard dict.
        for key, result in iter_cache_entries(shard):
            sharded[key] = result
    stats = merge_cache_entries(
        cache_path,
        (
            (job.key, merged)
            for index, job in enumerate(jobs_list)
            if (merged := sharded.get(job.key, outcome.results[index])) is not None
        ),
        lock_timeout=lock_timeout,
    )
    outcome.corrupt_lines += corrupt_line_total() - corrupt_before
    outcome.crc_failures += crc_failure_total() - crc_before
    outcome.lock_waits += stats.lock_waits


def _remove_shards(shard_dir: Path) -> None:
    """Delete a sweep's shard files and directory, ignoring races."""
    for shard in shard_dir.glob("shard-*.jsonl"):
        try:
            shard.unlink()
        except OSError:
            pass
    try:
        shard_dir.rmdir()
    except OSError:
        pass

"""Parallel sweep execution engine.

Every figure in the paper is an embarrassingly parallel sweep of
(machine configuration x trace) plus a handful of multi-program mixes.
This module fans the *uncached* jobs of such a sweep across a process
pool with chunked work distribution while keeping three guarantees the
experiment cache depends on:

* **Determinism** — results are returned in submission order, and each
  simulation is a pure function of (preset, machine, trace/mix), so a
  parallel sweep is bit-identical to a serial one (locked down by
  ``tests/sim/test_parallel.py``).
* **Single-writer files** — each worker process appends finished results
  to its own JSONL *shard* (``<cache>.shards-<pid>/shard-<worker pid>
  .jsonl``); no two processes ever write one file.  On completion the
  parent merges the shards into the main ``results-v*.jsonl`` cache in
  canonical job order and removes them.
* **Crash tolerance** — shards are flushed per job, so results survive a
  killed sweep; the tolerant loader in :mod:`repro.sim.resultcache`
  skips any line torn by the interruption.

Worker processes build one :class:`~repro.workloads.suite.TraceSuite`
each (in the pool initializer) so generated traces are reused across all
jobs a worker executes.  All callables handed to the pool are picklable
top-level functions.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.tracing import TRACE_ENV
from repro.sim.config import MachineConfig, Preset
from repro.sim.multi_core import simulate_mix
from repro.sim.resultcache import (
    append_cache_entries,
    encode_entry,
    iter_cache_entries,
)
from repro.sim.single_core import simulate_trace
from repro.workloads.mixes import MixSpec
from repro.workloads.suite import TraceSuite

#: Environment variable overriding the worker count (0 = all CPUs).
JOBS_ENV = "REPRO_JOBS"

#: Job kinds.
SINGLE = "single"
MIX = "mix"

#: Progress callback signature: (done, total, key-of-last-finished-job).
ProgressFn = Callable[[int, int, str], None]


def resolve_jobs(jobs: int | None = None, default: int = 1) -> int:
    """Resolve a worker count: explicit value > $REPRO_JOBS > ``default``.

    Zero or negative values (from any source) mean "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"${JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = default
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class SweepJob:
    """One pending simulation: a cache key plus what to simulate."""

    key: str
    kind: str  # SINGLE or MIX
    machine: MachineConfig
    trace_name: str = ""
    mix: MixSpec | None = None


def simulate_job(job: SweepJob, preset: Preset, suite: TraceSuite) -> dict:
    """Run one sweep job to its serialised result dict.

    Shared by the serial path (:class:`~repro.sim.experiment
    .ExperimentRunner`) and the pool workers so both produce identical
    results by construction.
    """
    if job.kind == SINGLE:
        trace = suite.trace(job.trace_name)
        data = suite.data_model(job.trace_name)
        return simulate_trace(trace, data, job.machine, preset).to_dict()
    if job.kind == MIX:
        assert job.mix is not None
        return simulate_mix(job.mix, job.machine, preset, suite).to_dict()
    raise ValueError(f"unknown job kind {job.kind!r}")


# ----------------------------------------------------------------------
# Worker-process side.  State lives in a module-level dict set up by the
# pool initializer; with the spawn start method the module is re-imported
# in each worker, so nothing here may depend on parent-process state.
# ----------------------------------------------------------------------

_WORKER: dict = {}


def _init_worker(preset: Preset, shard_dir: str | None) -> None:
    """Pool initializer: build the per-process suite and shard path."""
    # Tracing is a serial-only diagnostic: a pool of workers all writing
    # per-access events to stderr would interleave uselessly.
    os.environ.pop(TRACE_ENV, None)
    _WORKER["preset"] = preset
    _WORKER["suite"] = TraceSuite(preset.reference_llc_lines, preset.trace_length)
    _WORKER["shard_path"] = (
        Path(shard_dir) / f"shard-{os.getpid()}.jsonl" if shard_dir else None
    )


def _run_job(indexed_job: tuple[int, SweepJob]) -> tuple[int, str, dict]:
    """Execute one job in a worker; append it to this worker's shard."""
    index, job = indexed_job
    result = simulate_job(job, _WORKER["preset"], _WORKER["suite"])
    shard_path: Path | None = _WORKER["shard_path"]
    if shard_path is not None:
        with shard_path.open("a") as handle:
            handle.write(encode_entry(job.key, result) + "\n")
    return index, job.key, result


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork where available (fast start, no import tax)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# Parent-process side.
# ----------------------------------------------------------------------


def run_sweep(
    preset: Preset,
    jobs_list: Sequence[SweepJob],
    *,
    jobs: int,
    cache_path: Path | None = None,
    progress: ProgressFn | None = None,
    chunksize: int | None = None,
) -> list[dict]:
    """Simulate ``jobs_list`` across ``jobs`` workers; results in job order.

    When ``cache_path`` is given, the workers' shard files are merged
    into it (appended in ``jobs_list`` order, deduplicated by key) after
    the pool drains, then deleted.  Keys in ``jobs_list`` must be unique.
    """
    total = len(jobs_list)
    if total == 0:
        return []
    workers = max(1, min(jobs, total))

    shard_dir: Path | None = None
    if cache_path is not None:
        shard_dir = cache_path.parent / f"{cache_path.stem}.shards-{os.getpid()}"
        shard_dir.mkdir(parents=True, exist_ok=True)

    results: list[dict | None] = [None] * total
    chunk = chunksize or max(1, math.ceil(total / (workers * 4)))
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(preset, str(shard_dir) if shard_dir else None),
        ) as pool:
            done = 0
            for index, key, result in pool.map(
                _run_job, enumerate(jobs_list), chunksize=chunk
            ):
                results[index] = result
                done += 1
                if progress is not None:
                    progress(done, total, key)
        if shard_dir is not None:
            assert cache_path is not None  # shard_dir implies a cache file
            _merge_shards(cache_path, shard_dir, jobs_list, results)
    finally:
        if shard_dir is not None:
            _remove_shards(shard_dir)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def _merge_shards(
    cache_path: Path,
    shard_dir: Path,
    jobs_list: Sequence[SweepJob],
    results: Sequence[dict | None],
) -> None:
    """Fold worker shards into the main cache file in job order.

    The shards are authoritative (they are what survived on disk); any
    job whose shard line was lost falls back to the in-memory result.
    """
    sharded: dict[str, dict] = {}
    for shard in sorted(shard_dir.glob("shard-*.jsonl")):
        # One streaming pass per shard — no intermediate per-shard dict.
        for key, result in iter_cache_entries(shard):
            sharded[key] = result
    append_cache_entries(
        cache_path,
        (
            (job.key, sharded.get(job.key, results[index]))
            for index, job in enumerate(jobs_list)
        ),
    )


def _remove_shards(shard_dir: Path) -> None:
    for shard in shard_dir.glob("shard-*.jsonl"):
        try:
            shard.unlink()
        except OSError:
            pass
    try:
        shard_dir.rmdir()
    except OSError:
        pass

"""Figure export: ASCII line plots and CSV series.

The paper's single-thread figures are sorted per-trace ratio series.
These helpers render them as dependency-free ASCII plots for terminals
and as CSV files for external plotting tools, so every bench can leave a
plottable artifact next to its printed summary.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

#: Plot canvas dimensions (characters).
DEFAULT_WIDTH = 72
DEFAULT_HEIGHT = 16


def ascii_series_plot(
    series: Mapping[str, Mapping[str, float]],
    title: str,
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
) -> str:
    """Render sorted ratio series as an ASCII line plot.

    ``series`` maps a label to {trace: ratio}; each series is sorted
    ascending (the paper's presentation) and drawn with its own glyph.
    A reference line marks ratio 1.0.
    """
    if not series:
        raise ValueError("no series to plot")
    glyphs = "*o+x#@"
    sorted_series = {
        label: sorted(values.values()) for label, values in series.items()
    }
    lo = min(min(v) for v in sorted_series.values())
    hi = max(max(v) for v in sorted_series.values())
    lo = min(lo, 1.0)
    hi = max(hi, 1.0)
    span = hi - lo or 1.0

    canvas = [[" "] * width for _ in range(height)]
    baseline_row = height - 1 - int(round((1.0 - lo) / span * (height - 1)))
    for col in range(width):
        canvas[baseline_row][col] = "-"

    for (label, values), glyph in zip(sorted_series.items(), glyphs):
        n = len(values)
        for col in range(width):
            value = values[min(n - 1, col * n // width)]
            row = height - 1 - int(round((value - lo) / span * (height - 1)))
            canvas[row][col] = glyph

    lines = [title]
    for row_index, row in enumerate(canvas):
        value = hi - span * row_index / (height - 1)
        lines.append(f"{value:7.3f} |" + "".join(row))
    lines.append(" " * 9 + f"traces sorted by ratio ({next(iter(sorted_series))} ...)")
    legend = "  ".join(
        f"{glyph}={label}" for (label, _), glyph in zip(sorted_series.items(), glyphs)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def write_series_csv(
    path: str | Path,
    series: Mapping[str, Mapping[str, float]],
) -> None:
    """Write per-trace series as CSV: one row per trace, one column per label."""
    if not series:
        raise ValueError("no series to export")
    labels = list(series)
    traces = sorted({trace for values in series.values() for trace in values})
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["trace"] + labels)
        for trace in traces:
            writer.writerow(
                [trace] + [f"{series[label].get(trace, '')}" for label in labels]
            )


def write_rows_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write a simple table (e.g. Figure 9's category means) as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)

"""Simulation presets and machine configurations.

A **preset** fixes the scale of the experiment: the paper's geometry
(2MB LLC, 200M-instruction traces) or a proportionally scaled-down
version that runs in seconds per trace in pure Python.  Scaling the
caches and the workload footprints together preserves the reuse-distance/
capacity ratios, which is what every figure's *shape* depends on.

A **machine** fixes one hardware configuration under study: LLC
architecture, capacity (expressed as ways x set multiplier so 3MB-style
way additions and 4MB-style set doublings both work), replacement
policies and latency adders.  Machines are hashable and serialisable so
the experiment runner can cache results across benches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cache.config import CacheGeometry
from repro.cache.hierarchy import HierarchyConfig
from repro.cache.replacement import (
    POLICIES,
    VICTIM_POLICIES,
    make_policy,
    make_victim_policy,
)
from repro.core.basevictim import BaseVictimLLC
from repro.core.interfaces import LLCArchitecture
from repro.core.twotag import TwoTagLLC
from repro.core.dcc import DCCFunctionalLLC
from repro.core.scc import SCCFunctionalLLC
from repro.core.uncompressed import UncompressedLLC
from repro.core.vsc import VSCFunctionalLLC
from repro.compression.segments import SegmentGeometry

#: Paper baseline LLC: 2MB, 16 ways (Section V).
PAPER_LLC_BYTES = 2 * 2**20
PAPER_LLC_WAYS = 16
LINE_BYTES = 64


@dataclass(frozen=True)
class Preset:
    """Experiment scale: geometry scale factor and trace length."""

    name: str
    #: Linear scale applied to every cache capacity (1.0 = paper sizes).
    scale: float
    #: Accesses per single-threaded trace.
    trace_length: int

    @property
    def reference_llc_lines(self) -> int:
        """Line capacity of the scaled 2MB reference LLC."""
        return int(PAPER_LLC_BYTES * self.scale) // LINE_BYTES

    def llc_geometry(self, ways: int, sets_mult: float) -> CacheGeometry:
        """Concrete LLC geometry for this preset."""
        base_sets = int(PAPER_LLC_BYTES * self.scale) // (PAPER_LLC_WAYS * LINE_BYTES)
        sets = int(base_sets * sets_mult)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"sets_mult {sets_mult} yields non-power-of-two set count {sets}"
            )
        return CacheGeometry(sets * ways * LINE_BYTES, ways)

    def hierarchy_config(self, prefetch_degree: int = 2) -> HierarchyConfig:
        """Private L1/L2 configuration, scaled with the preset."""
        return HierarchyConfig(
            l1_geometry=CacheGeometry(32 * 1024, 8).scaled(self.scale),
            l2_geometry=CacheGeometry(256 * 1024, 8).scaled(self.scale),
            prefetch_degree=prefetch_degree,
        )


#: Paper-sized preset; traces are kept shorter than 200M instructions but
#: the geometry matches Section V exactly.
PAPER = Preset("paper", 1.0, 1_500_000)

#: Default bench preset: 1/8-scale geometry (256KB 16-way LLC, 4KB L1,
#: 32KB L2), 50k-access traces.  Used by ``benchmarks/``.
BENCH = Preset("bench", 1 / 8, 50_000)

#: Tiny preset for unit/integration tests.
TEST = Preset("test", 1 / 32, 6_000)

PRESETS = {preset.name: preset for preset in (PAPER, BENCH, TEST)}


#: Architecture registry keys.
ARCH_UNCOMPRESSED = "uncompressed"
ARCH_BASE_VICTIM = "base-victim"
ARCH_TWO_TAG = "two-tag"
ARCH_TWO_TAG_MODIFIED = "two-tag-modified"
ARCH_VSC = "vsc-2x"
ARCH_DCC = "dcc"
ARCH_SCC = "scc"

#: Every LLC architecture :meth:`MachineConfig.build_llc` can build, in
#: presentation order (the CLI's ``--arch`` choices).
ARCH_CHOICES = (
    ARCH_UNCOMPRESSED,
    ARCH_BASE_VICTIM,
    ARCH_TWO_TAG,
    ARCH_TWO_TAG_MODIFIED,
    ARCH_VSC,
    ARCH_DCC,
    ARCH_SCC,
)


class MachineConfigError(ValueError):
    """A machine configuration field holds an invalid value.

    Raised by :meth:`MachineConfig.validate` *before* any simulation or
    cache work starts, so a typo'd sweep fails in milliseconds instead
    of after warming half a cache.  Structured for programmatic use:
    ``field`` names the bad attribute, ``value`` is what it held, and
    ``choices`` lists the valid values when the field is an enumeration.
    """

    def __init__(
        self,
        field: str,
        value: object,
        message: str,
        choices: tuple[str, ...] = (),
    ) -> None:
        self.field = field
        self.value = value
        self.choices = choices
        detail = f"; valid choices: {', '.join(choices)}" if choices else ""
        super().__init__(f"machine config {field}={value!r}: {message}{detail}")


@dataclass(frozen=True)
class MachineConfig:
    """One hardware configuration under study."""

    arch: str = ARCH_UNCOMPRESSED
    #: Physical LLC ways (baseline ways for compressed architectures).
    llc_ways: int = PAPER_LLC_WAYS
    #: Set-count multiplier relative to the 2MB baseline (2.0 = 4MB).
    llc_sets_mult: float = 1.0
    #: Baseline replacement policy name.
    policy: str = "nru"
    #: Victim Cache insertion policy (Base-Victim only).
    victim_policy: str = "ecm"
    #: Extra LLC hit cycles, e.g. +1 for the larger 3MB array (Section VI.A).
    extra_llc_latency: int = 0
    prefetch_degree: int = 2
    #: Base-Victim only: False selects the Section IV.B.3 non-inclusive
    #: variant that allows dirty Victim Cache lines (LLC-only studies).
    clean_victims: bool = True

    @property
    def label(self) -> str:
        """Stable identifier used for result caching and reports."""
        parts = [
            self.arch,
            f"w{self.llc_ways}",
            f"m{self.llc_sets_mult:g}",
            self.policy,
        ]
        if self.arch == ARCH_BASE_VICTIM:
            parts.append(self.victim_policy)
            if not self.clean_victims:
                parts.append("dirty")
        if self.extra_llc_latency:
            parts.append(f"lat+{self.extra_llc_latency}")
        if self.prefetch_degree != 2:
            parts.append(f"pf{self.prefetch_degree}")
        return "-".join(parts)

    def validate(self) -> "MachineConfig":
        """Check every field eagerly; returns ``self`` for chaining.

        :meth:`build_llc` would eventually reject an unknown architecture
        or policy, but only deep inside the first simulation — after
        traces were generated and the cache directory created.  The CLI
        calls this at argument-parsing time instead, so the failure is a
        single structured :class:`MachineConfigError` naming the bad
        field and the valid choices.
        """
        if self.arch not in ARCH_CHOICES:
            raise MachineConfigError(
                "arch", self.arch, "unknown LLC architecture", ARCH_CHOICES
            )
        if self.policy not in POLICIES:
            raise MachineConfigError(
                "policy",
                self.policy,
                "unknown replacement policy",
                tuple(sorted(POLICIES)),
            )
        if self.victim_policy not in VICTIM_POLICIES:
            raise MachineConfigError(
                "victim_policy",
                self.victim_policy,
                "unknown victim-cache policy",
                tuple(sorted(VICTIM_POLICIES)),
            )
        if not isinstance(self.llc_ways, int) or self.llc_ways <= 0:
            raise MachineConfigError(
                "llc_ways", self.llc_ways, "must be a positive integer"
            )
        if self.llc_sets_mult <= 0:
            raise MachineConfigError(
                "llc_sets_mult", self.llc_sets_mult, "must be positive"
            )
        if self.extra_llc_latency < 0:
            raise MachineConfigError(
                "extra_llc_latency", self.extra_llc_latency, "must be >= 0"
            )
        if not isinstance(self.prefetch_degree, int) or self.prefetch_degree < 0:
            raise MachineConfigError(
                "prefetch_degree",
                self.prefetch_degree,
                "must be a non-negative integer",
            )
        return self

    def with_capacity(self, ways: int, sets_mult: float) -> "MachineConfig":
        """Same machine at a different LLC capacity."""
        return replace(self, llc_ways=ways, llc_sets_mult=sets_mult)

    def build_llc(self, preset: Preset) -> LLCArchitecture:
        """Instantiate the LLC architecture for this machine and preset."""
        geometry = preset.llc_geometry(self.llc_ways, self.llc_sets_mult)
        segment_geometry = SegmentGeometry(LINE_BYTES)
        if self.arch == ARCH_UNCOMPRESSED:
            return UncompressedLLC(geometry, make_policy(self.policy))
        if self.arch == ARCH_BASE_VICTIM:
            return BaseVictimLLC(
                geometry,
                make_policy(self.policy),
                make_victim_policy(self.victim_policy),
                segment_geometry,
                clean_victims=self.clean_victims,
            )
        if self.arch == ARCH_TWO_TAG:
            return TwoTagLLC(
                geometry, make_policy(self.policy), segment_geometry, modified=False
            )
        if self.arch == ARCH_TWO_TAG_MODIFIED:
            return TwoTagLLC(
                geometry, make_policy(self.policy), segment_geometry, modified=True
            )
        if self.arch == ARCH_VSC:
            return VSCFunctionalLLC(geometry, segment_geometry)
        if self.arch == ARCH_DCC:
            return DCCFunctionalLLC(geometry, segment_geometry)
        if self.arch == ARCH_SCC:
            return SCCFunctionalLLC(geometry, segment_geometry)
        raise ValueError(f"unknown architecture {self.arch!r}")


# ----------------------------------------------------------------------
# Common machine shorthands used across the benches.
# ----------------------------------------------------------------------

#: 2MB 16-way uncompressed NRU baseline (Section V).
BASELINE_2MB = MachineConfig()

#: Base-Victim on the 2MB baseline.
BASE_VICTIM_2MB = MachineConfig(arch=ARCH_BASE_VICTIM)

#: Naive two-tag strawman (Figure 6).
TWO_TAG_2MB = MachineConfig(arch=ARCH_TWO_TAG)

#: Modified two-tag strawman (Figure 7).
TWO_TAG_MODIFIED_2MB = MachineConfig(arch=ARCH_TWO_TAG_MODIFIED)

#: 3MB uncompressed: 8 extra ways and one extra cycle (Section VI.A).
UNCOMPRESSED_3MB = MachineConfig(llc_ways=24, extra_llc_latency=1)

"""Result-cache JSONL file helpers.

The experiment runner and the parallel sweep engine share one on-disk
format: JSON-lines files where every line is ``{"key": ..., "result":
...}``.  This module owns encoding, tolerant loading and the single-writer
append used when merging per-worker shards, so the main cache file and the
worker shards can never drift apart.

Loading is *tolerant*: a worker interrupted mid-write (Ctrl-C, OOM kill,
crashed pool) leaves a truncated final line behind, and a cache that
refuses to load because of one torn line would throw away hours of sweep
results.  Corrupt lines are skipped and reported once per file via
:class:`CorruptCacheLineWarning`.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Iterable


class CorruptCacheLineWarning(RuntimeWarning):
    """A result-cache file contained truncated or malformed JSONL lines."""


def encode_entry(key: str, result: dict) -> str:
    """One cache line (without trailing newline) for ``key``/``result``.

    Keys are sorted so the encoding is canonical: observability metrics
    travel inside ``result`` as nested dicts, and byte-identity between
    serial and parallel sweeps must not depend on insertion order.
    """
    return json.dumps({"key": key, "result": result}, sort_keys=True)


def load_cache_entries(path: Path) -> dict[str, dict]:
    """Read a JSONL cache file into a key -> result mapping.

    Blank lines are ignored; truncated or structurally wrong lines are
    skipped and reported with one :class:`CorruptCacheLineWarning` per
    file.  Later entries for a repeated key win, matching append-only
    write semantics.
    """
    entries: dict[str, dict] = {}
    if not path.exists():
        return entries
    corrupt = 0
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("key"), str)
                or not isinstance(entry.get("result"), dict)
            ):
                corrupt += 1
                continue
            entries[entry["key"]] = entry["result"]
    if corrupt:
        warnings.warn(
            f"{path}: skipped {corrupt} corrupt cache line(s); "
            "likely a simulation interrupted mid-write",
            CorruptCacheLineWarning,
            stacklevel=2,
        )
    return entries


def append_cache_entries(path: Path, items: Iterable[tuple[str, dict]]) -> int:
    """Append ``(key, result)`` pairs to ``path``; returns lines written.

    This is the only merge/write primitive: exactly one process may call
    it for a given file (workers write private shards, the parent merges).
    """
    written = 0
    with path.open("a") as handle:
        for key, result in items:
            handle.write(encode_entry(key, result) + "\n")
            written += 1
    return written

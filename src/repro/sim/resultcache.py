"""Result-cache JSONL file helpers.

The experiment runner and the parallel sweep engine share one on-disk
format: JSON-lines files where every line is ``{"key": ..., "result":
...}``.  This module owns encoding, tolerant loading and the single-writer
append used when merging per-worker shards, so the main cache file and the
worker shards can never drift apart.

Loading is *tolerant*: a worker interrupted mid-write (Ctrl-C, OOM kill,
crashed pool) leaves a truncated final line behind, and a cache that
refuses to load because of one torn line would throw away hours of sweep
results.  Corrupt lines are skipped and reported via
:class:`CorruptCacheLineWarning` — once per file per process, so a file
that is prewarmed and then merged again does not repeat the warning.

Skipped lines are also *accounted*, not just warned about: every skip
increments a per-file tally (:func:`corrupt_line_count`,
:func:`corrupt_line_total`) that the sweep engine folds into its merge
summary and ``repro stats``/``repro sweep`` surface to the operator —
silent data loss is a lie a report must not tell.

:func:`iter_cache_entries` is the single streaming pass over a file; both
the prewarm load and the shard merge consume it directly, so every shard
is read and parsed exactly once, with no intermediate per-file dict.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Iterable, Iterator


class CorruptCacheLineWarning(RuntimeWarning):
    """A result-cache file contained truncated or malformed JSONL lines."""


#: Files already reported as corrupt (resolved paths); a process warns at
#: most once per file however many times the file is re-read.
_warned_corrupt: set[str] = set()

#: Cumulative corrupt-line tally per resolved path, for this process.
_corrupt_counts: dict[str, int] = {}


def corrupt_line_count(path: Path) -> int:
    """Corrupt lines skipped so far (this process) while reading ``path``."""
    return _corrupt_counts.get(str(path.resolve()), 0)


def corrupt_line_total() -> int:
    """Corrupt lines skipped so far (this process) across every file.

    Monotonic; callers that need a per-operation figure snapshot it
    before and after (the shard merge in :mod:`repro.sim.parallel` does).
    """
    return sum(_corrupt_counts.values())


def encode_entry(key: str, result: dict) -> str:
    """One cache line (without trailing newline) for ``key``/``result``.

    Keys are sorted so the encoding is canonical: observability metrics
    travel inside ``result`` as nested dicts, and byte-identity between
    serial and parallel sweeps must not depend on insertion order.
    """
    return json.dumps({"key": key, "result": result}, sort_keys=True)


def iter_cache_entries(path: Path) -> Iterator[tuple[str, dict]]:
    """Stream ``(key, result)`` pairs from a JSONL cache file, one pass.

    Blank lines are ignored; truncated or structurally wrong lines are
    skipped and reported with one :class:`CorruptCacheLineWarning` per
    file per process.  A missing file yields nothing.
    """
    if not path.exists():
        return
    corrupt = 0
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("key"), str)
                or not isinstance(entry.get("result"), dict)
            ):
                corrupt += 1
                continue
            yield entry["key"], entry["result"]
    if corrupt:
        resolved = str(path.resolve())
        _corrupt_counts[resolved] = _corrupt_counts.get(resolved, 0) + corrupt
        if resolved not in _warned_corrupt:
            _warned_corrupt.add(resolved)
            warnings.warn(
                f"{path}: skipped {corrupt} corrupt cache line(s); "
                "likely a simulation interrupted mid-write",
                CorruptCacheLineWarning,
                stacklevel=2,
            )


def load_cache_entries(path: Path) -> dict[str, dict]:
    """Read a JSONL cache file into a key -> result mapping.

    Later entries for a repeated key win, matching append-only write
    semantics.  Tolerance and warning behaviour are those of
    :func:`iter_cache_entries`.
    """
    return dict(iter_cache_entries(path))


def append_cache_entries(path: Path, items: Iterable[tuple[str, dict]]) -> int:
    """Append ``(key, result)`` pairs to ``path``; returns lines written.

    This is the only merge/write primitive: exactly one process may call
    it for a given file (workers write private shards, the parent merges).
    """
    written = 0
    with path.open("a") as handle:
        for key, result in items:
            handle.write(encode_entry(key, result) + "\n")
            written += 1
    return written

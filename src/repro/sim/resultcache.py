"""Result-cache JSONL file helpers (format v5: checksummed, lock-merged).

The experiment runner and the parallel sweep engine share one on-disk
format: JSON-lines files where every line is ``{"key": ..., "result":
...}`` followed by a CRC32 suffix (``#xxxxxxxx`` over the JSON payload).
This module owns encoding, tolerant loading, the locked append used for
single-run stores and the atomic fold-in merge used by sweeps, so the
main cache file and the worker shards can never drift apart — and no
two processes can tear each other's writes.

**Format v5** (this version): ``<canonical JSON>#<crc32 hex8>``.  The
checksum turns silent corruption — a bit flipped at rest, a line torn
mid-write whose remnant still parses — into a *detected*, counted,
skipped line.  **Format v4** (plain JSON lines, no checksum) is read
transparently; :func:`migrate_cache_dir` (surfaced as ``repro cache
migrate``) upgrades whole files atomically.  The two are unambiguous:
a JSON object line always ends with ``}``, never with ``#`` + 8 hex
digits.

Loading is *tolerant*: a worker interrupted mid-write (Ctrl-C, OOM kill,
crashed pool) leaves a truncated final line behind, and a cache that
refuses to load because of one torn line would throw away hours of sweep
results.  Corrupt lines are skipped and reported via
:class:`CorruptCacheLineWarning` — once per file per process — and
*accounted* (:func:`corrupt_line_count`, :func:`corrupt_line_total`,
:func:`crc_failure_count`, :func:`crc_failure_total`) so the sweep
engine and ``repro stats`` surface every skip to the operator: silent
data loss is a lie a report must not tell.

Write primitives and their concurrency contracts:

* :func:`append_cache_entries` — append under the cache's advisory lock
  (:mod:`repro.sim.locking`); used for incremental single-run stores.
  A crash mid-append leaves a torn tail the CRC detects.
* :func:`merge_cache_entries` — the sweep merge: under the lock, fold
  new entries into whatever the file holds *now* (existing keys win —
  a second writer folds in, never clobbers), then rewrite atomically
  via temp file + ``fsync`` + ``os.replace``.  Two overlapping sweeps
  over the same matrix produce a cache byte-identical to a clean
  serial run.
* :func:`write_cache_entries` — the atomic rewrite primitive (no lock;
  callers hold it), also used by migration so an interrupted migrate
  leaves the original file intact.
"""

from __future__ import annotations

import json
import os
import re
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.sim.locking import FileLock

#: Cache format version: bumped whenever simulator behaviour *or* the
#: on-disk format changes.  v5 is a format-only bump over v4 (per-line
#: CRC32), so v4 results remain behaviourally valid and are read
#: transparently / migrated; versions before 4 predate simulator
#: behaviour changes and are never migrated.
CACHE_VERSION = 5

#: The newest prior version whose *results* are still valid (the v4 ->
#: v5 bump changed only the line format, not the simulator).
LEGACY_CACHE_VERSION = 4

#: A v5 line ends with ``#`` + 8 lowercase hex digits (the CRC32 of the
#: JSON payload before it).  A plain-JSON v4 line ends with ``}``.
_CRC_SUFFIX_RE = re.compile(r"#([0-9a-f]{8})$")

#: Cache file naming scheme shared by the runner and the cache tools.
_CACHE_FILE_RE = re.compile(r"^results-v(\d+)-(.+)\.jsonl$")


class CorruptCacheLineWarning(RuntimeWarning):
    """A result-cache file contained truncated or malformed JSONL lines."""


#: Files already reported as corrupt (resolved paths); a process warns at
#: most once per file however many times the file is re-read.
_warned_corrupt: set[str] = set()

#: Cumulative skipped-line tally per resolved path, for this process
#: (structural corruption and CRC failures combined).
_corrupt_counts: dict[str, int] = {}

#: Cumulative CRC-mismatch tally per resolved path (subset of the
#: corrupt tally: lines the checksum — not the JSON parser — rejected).
_crc_counts: dict[str, int] = {}


def corrupt_line_count(path: Path) -> int:
    """Corrupt lines skipped so far (this process) while reading ``path``."""
    return _corrupt_counts.get(str(path.resolve()), 0)


def corrupt_line_total() -> int:
    """Corrupt lines skipped so far (this process) across every file.

    Monotonic; callers that need a per-operation figure snapshot it
    before and after (the shard merge in :mod:`repro.sim.parallel` does).
    """
    return sum(_corrupt_counts.values())


def crc_failure_count(path: Path) -> int:
    """CRC-rejected lines so far (this process) while reading ``path``."""
    return _crc_counts.get(str(path.resolve()), 0)


def crc_failure_total() -> int:
    """CRC-rejected lines so far (this process) across every file."""
    return sum(_crc_counts.values())


def cache_file_name(preset_name: str, version: int = CACHE_VERSION) -> str:
    """Canonical cache file name for a preset at a format version."""
    return f"results-v{version}-{preset_name}.jsonl"


def _payload_crc(payload: str) -> str:
    """CRC32 of a line's JSON payload, as 8 lowercase hex digits."""
    return f"{zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x}"


def encode_entry(key: str, result: dict) -> str:
    """One v5 cache line (without trailing newline) for ``key``/``result``.

    Keys are sorted so the encoding is canonical: observability metrics
    travel inside ``result`` as nested dicts, and byte-identity between
    serial and parallel sweeps must not depend on insertion order.  The
    trailing ``#crc32`` covers the JSON payload, so bit rot and torn
    writes are detected on load rather than silently accepted.
    """
    payload = json.dumps({"key": key, "result": result}, sort_keys=True)
    return f"{payload}#{_payload_crc(payload)}"


def _decode_line(line: str) -> tuple[str, str | None, dict | None]:
    """Classify one stripped, non-empty line.

    Returns ``(status, key, result)`` where status is ``"ok"`` (a valid
    v5 or legacy v4 entry), ``"crc"`` (v5-shaped but checksum mismatch)
    or ``"corrupt"`` (unparseable or structurally wrong).
    """
    match = _CRC_SUFFIX_RE.search(line)
    if match is not None:
        payload = line[: match.start()]
        if _payload_crc(payload) != match.group(1):
            return "crc", None, None
    else:
        payload = line  # legacy v4: no checksum to verify
    try:
        entry = json.loads(payload)
    except json.JSONDecodeError:
        return "corrupt", None, None
    if (
        not isinstance(entry, dict)
        or not isinstance(entry.get("key"), str)
        or not isinstance(entry.get("result"), dict)
    ):
        return "corrupt", None, None
    return "ok", entry["key"], entry["result"]


def iter_cache_entries(path: Path) -> Iterator[tuple[str, dict]]:
    """Stream ``(key, result)`` pairs from a JSONL cache file, one pass.

    Accepts v5 (checksummed) and v4 (plain) lines interchangeably.
    Blank lines are ignored; truncated, structurally wrong or
    CRC-rejected lines are skipped, counted, and reported with one
    :class:`CorruptCacheLineWarning` per file per process.  A missing
    file yields nothing.
    """
    if not path.exists():
        return
    corrupt = 0
    crc_failed = 0
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            status, key, result = _decode_line(line)
            if status == "ok":
                assert key is not None and result is not None
                yield key, result
            elif status == "crc":
                crc_failed += 1
            else:
                corrupt += 1
    if corrupt or crc_failed:
        resolved = str(path.resolve())
        skipped = corrupt + crc_failed
        _corrupt_counts[resolved] = _corrupt_counts.get(resolved, 0) + skipped
        if crc_failed:
            _crc_counts[resolved] = _crc_counts.get(resolved, 0) + crc_failed
        if resolved not in _warned_corrupt:
            _warned_corrupt.add(resolved)
            detail = (
                f" ({crc_failed} failed the CRC check)" if crc_failed else ""
            )
            warnings.warn(
                f"{path}: skipped {skipped} corrupt cache line(s){detail}; "
                "likely a simulation interrupted mid-write or at-rest "
                "corruption",
                CorruptCacheLineWarning,
                stacklevel=2,
            )


def load_cache_entries(path: Path) -> dict[str, dict]:
    """Read a JSONL cache file into a key -> result mapping.

    Later entries for a repeated key win, matching append-only write
    semantics.  Tolerance and warning behaviour are those of
    :func:`iter_cache_entries`.
    """
    return dict(iter_cache_entries(path))


def append_cache_entries(
    path: Path,
    items: Iterable[tuple[str, dict]],
    *,
    lock_timeout: float | None = None,
) -> int:
    """Append ``(key, result)`` v5 lines to ``path``; returns lines written.

    The append happens under ``path``'s advisory lock, so concurrent
    appenders and mergers serialise instead of interleaving bytes.  A
    crash mid-append can still tear the final line — which the CRC then
    detects on the next load.
    """
    written = 0
    with FileLock.for_target(path, timeout=lock_timeout):
        with path.open("a") as handle:
            for key, result in items:
                handle.write(encode_entry(key, result) + "\n")
                written += 1
            handle.flush()
            os.fsync(handle.fileno())
    return written


def write_cache_entries(path: Path, items: Iterable[tuple[str, dict]]) -> int:
    """Atomically replace ``path`` with the given entries; returns count.

    Writes a temp file in the same directory, ``fsync``\\ s it, then
    ``os.replace``\\ s it over the target — readers observe either the
    old file or the new one, never a half-written hybrid, and a crash
    at any point leaves the original intact.  Callers that race other
    writers must hold the cache lock; this primitive itself does not
    take it (migration and merge both call it with the lock held).
    """
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    written = 0
    try:
        with tmp.open("w") as handle:
            for key, result in items:
                handle.write(encode_entry(key, result) + "\n")
                written += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    _fsync_dir(path.parent)
    return written


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory entry (makes renames durable)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class MergeStats:
    """What one locked fold-in merge did.

    ``new_entries`` were appended by this merge; ``existing_entries``
    were already present (and won over any incoming duplicate);
    ``corrupt_lines`` / ``crc_failures`` count lines the tolerant read
    of the *existing* file skipped (and the rewrite scrubbed);
    ``lock_waits`` counts backoff sleeps while acquiring the cache lock.
    """

    new_entries: int
    existing_entries: int
    corrupt_lines: int
    crc_failures: int
    lock_waits: int


def merge_cache_entries(
    path: Path,
    items: Iterable[tuple[str, dict]],
    *,
    lock_timeout: float | None = None,
) -> MergeStats:
    """Fold ``items`` into ``path`` under its lock, atomically.

    The cooperative multi-writer merge: whatever the file holds *at
    merge time* is re-read under the exclusive lock and kept — existing
    keys win over incoming ones, so a second sweep folds its results in
    without ever clobbering the first's.  New keys append in ``items``
    order, which keeps a fresh cache byte-identical to a serial run.
    The rewrite is atomic (temp file + ``fsync`` + ``os.replace``) and
    scrubs any corrupt or checksum-failed lines it skipped (they are
    counted in the returned :class:`MergeStats`).

    When the file is already clean, fully v5 and contains every
    incoming key, its bytes are left untouched.
    """
    lock = FileLock.for_target(path, timeout=lock_timeout)
    with lock:
        before_corrupt = corrupt_line_total()
        before_crc = crc_failure_total()
        order: list[str] = []
        values: dict[str, dict] = {}
        rewrite_needed = False
        if path.exists():
            with path.open() as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        rewrite_needed = True  # scrub blank lines too
                        continue
                    status, key, result = _decode_line(line)
                    if status != "ok":
                        rewrite_needed = True  # scrub, but count via iter logic
                        _account_skip(path, status)
                        continue
                    assert key is not None and result is not None
                    if key in values:
                        rewrite_needed = True  # dedup repeated keys
                    else:
                        order.append(key)
                    values[key] = result
                    if not _CRC_SUFFIX_RE.search(line):
                        rewrite_needed = True  # upgrade legacy v4 lines
        existing = len(order)
        new = 0
        for key, result in items:
            if key not in values:
                order.append(key)
                values[key] = result
                new += 1
        if new or rewrite_needed:
            write_cache_entries(path, ((key, values[key]) for key in order))
    return MergeStats(
        new_entries=new,
        existing_entries=existing,
        corrupt_lines=corrupt_line_total() - before_corrupt,
        crc_failures=crc_failure_total() - before_crc,
        lock_waits=lock.waits,
    )


def canonicalize_cache_file(
    path: Path, *, lock_timeout: float | None = None
) -> int:
    """Rewrite ``path`` with entries sorted by key; returns the entry count.

    The experiment service's determinism primitive: a server interleaves
    batches from many clients, so its cache file would otherwise end up
    ordered by *arrival*, which is not reproducible.  Sorting by key
    (under the cache's advisory lock, via the atomic
    :func:`write_cache_entries` rewrite) makes the bytes a pure function
    of the entry set — any mix of concurrent clients converges on the
    cache a clean serial run of the union of their jobs would leave.

    Idempotent and conservative: an already-sorted, fully-v5, duplicate-
    free file is left byte-untouched; duplicates resolve last-wins (the
    append-path semantics); corrupt or CRC-failed lines are scrubbed and
    counted like every other tolerant read.  A missing file is a no-op.
    """
    lock = FileLock.for_target(path, timeout=lock_timeout)
    with lock:
        if not path.exists():
            return 0
        order: list[str] = []
        values: dict[str, dict] = {}
        rewrite_needed = False
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    rewrite_needed = True
                    continue
                status, key, result = _decode_line(line)
                if status != "ok":
                    rewrite_needed = True
                    _account_skip(path, status)
                    continue
                assert key is not None and result is not None
                if key in values:
                    rewrite_needed = True  # last-wins dedupe forces a rewrite
                else:
                    order.append(key)
                values[key] = result
                if not _CRC_SUFFIX_RE.search(line):
                    rewrite_needed = True  # upgrade legacy v4 lines
        ordered = sorted(values)
        if rewrite_needed or order != ordered:
            write_cache_entries(path, ((key, values[key]) for key in ordered))
    return len(values)


def _account_skip(path: Path, status: str) -> None:
    """Count one skipped line against ``path`` (merge-path accounting).

    Mirrors :func:`iter_cache_entries`'s tallies so merges and plain
    loads feed the same ``repro stats`` counters, but warns lazily (the
    once-per-file warning still fires at most once per process).
    """
    resolved = str(path.resolve())
    _corrupt_counts[resolved] = _corrupt_counts.get(resolved, 0) + 1
    if status == "crc":
        _crc_counts[resolved] = _crc_counts.get(resolved, 0) + 1
    if resolved not in _warned_corrupt:
        _warned_corrupt.add(resolved)
        warnings.warn(
            f"{path}: skipped corrupt cache line(s) during merge; "
            "the atomic rewrite scrubbed them",
            CorruptCacheLineWarning,
            stacklevel=3,
        )


# ----------------------------------------------------------------------
# Offline integrity tooling: `repro cache verify` / `repro cache migrate`.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheFileReport:
    """Integrity census of one cache file (``repro cache verify``)."""

    path: Path
    lines: int = 0
    entries: int = 0
    plain_lines: int = 0
    crc_failures: int = 0
    corrupt_lines: int = 0
    duplicate_keys: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing in the file was rejected."""
        return self.crc_failures == 0 and self.corrupt_lines == 0


def scan_cache_file(path: Path) -> CacheFileReport:
    """Full integrity scan of one cache file (no warnings, no tallies).

    Counts total lines, valid entries, legacy (un-checksummed) v4
    lines, CRC rejections, structurally corrupt lines and duplicate
    keys — the per-file census ``repro cache verify`` reports.
    """
    lines = entries = plain = crc_failed = corrupt = duplicates = 0
    seen: set[str] = set()
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            lines += 1
            status, key, _ = _decode_line(line)
            if status == "crc":
                crc_failed += 1
            elif status == "corrupt":
                corrupt += 1
            else:
                assert key is not None
                entries += 1
                if not _CRC_SUFFIX_RE.search(line):
                    plain += 1
                if key in seen:
                    duplicates += 1
                seen.add(key)
    return CacheFileReport(
        path=path,
        lines=lines,
        entries=entries,
        plain_lines=plain,
        crc_failures=crc_failed,
        corrupt_lines=corrupt,
        duplicate_keys=duplicates,
    )


def cache_files(directory: Path) -> list[tuple[Path, int]]:
    """``(path, format version)`` for every cache file in ``directory``."""
    out = []
    for path in sorted(directory.glob("results-v*.jsonl")):
        match = _CACHE_FILE_RE.match(path.name)
        if match:
            out.append((path, int(match.group(1))))
    return out


def verify_cache_dir(directory: Path) -> list[CacheFileReport]:
    """Scan every cache file under ``directory``; returns per-file reports."""
    return [scan_cache_file(path) for path, _ in cache_files(directory)]


@dataclass(frozen=True)
class MigrateResult:
    """What ``repro cache migrate`` did to one cache file.

    ``action`` is ``"migrated"`` (a legacy-version file upgraded to the
    current name and format), ``"rewritten"`` (a current-version file
    re-encoded in place to scrub plain or corrupt lines), ``"clean"``
    (already fully v5, untouched) or ``"stale"`` (a pre-v4 file whose
    results predate simulator behaviour changes — never migrated).
    """

    source: Path
    target: Path
    action: str
    entries: int = 0
    migrated_lines: int = 0


def migrate_cache_file(
    path: Path, version: int, *, lock_timeout: float | None = None
) -> MigrateResult:
    """Upgrade one cache file to format v5, atomically.

    * A ``v4`` file's entries are folded into its v5 sibling (existing
      v5 entries win), written atomically; the v4 original is removed
      only after the replacement succeeds, so an interrupted migration
      leaves it intact.
    * A ``v5`` file containing legacy plain lines (or corrupt lines) is
      rewritten in place under its lock; already-clean files are left
      byte-untouched.
    * Files older than v4 hold results from older simulator behaviour
      and are reported ``stale``, never rewritten.
    """
    if version < LEGACY_CACHE_VERSION:
        return MigrateResult(source=path, target=path, action="stale")
    if version == LEGACY_CACHE_VERSION:
        match = _CACHE_FILE_RE.match(path.name)
        assert match is not None  # caller found it via cache_files()
        target = path.with_name(cache_file_name(match.group(2)))
        entries = list(iter_cache_entries(path))
        stats = merge_cache_entries(target, entries, lock_timeout=lock_timeout)
        path.unlink()  # only after the v5 replacement is durable
        return MigrateResult(
            source=path,
            target=target,
            action="migrated",
            entries=stats.existing_entries + stats.new_entries,
            migrated_lines=stats.new_entries,
        )
    report = scan_cache_file(path)
    if report.clean and report.plain_lines == 0 and report.duplicate_keys == 0:
        return MigrateResult(
            source=path, target=path, action="clean", entries=report.entries
        )
    stats = merge_cache_entries(path, (), lock_timeout=lock_timeout)
    return MigrateResult(
        source=path,
        target=path,
        action="rewritten",
        entries=stats.existing_entries,
        migrated_lines=report.plain_lines,
    )


def migrate_cache_dir(
    directory: Path, *, lock_timeout: float | None = None
) -> list[MigrateResult]:
    """Migrate every cache file under ``directory``; returns what happened."""
    return [
        migrate_cache_file(path, version, lock_timeout=lock_timeout)
        for path, version in cache_files(directory)
    ]

"""Chunked batch access engine: vectorised L1 hit runs, scalar miss tail.

The single-core inner loop spends most of its instructions deciding, one
access at a time, that an address is an L1 hit and touching the LRU
state.  This engine processes the trace in chunks: at each chunk start
it snapshots the L1's flat tag/valid columns (two ``numpy.array`` calls
— the columnar layout from :mod:`repro.cache.setassoc` exists for
exactly this) and resolves the whole chunk's hit/way predictions with
one vectorised probe.  Predictions stay exact precisely until the first
predicted miss: L1 hits never change cache *membership*, so the leading
run of predicted hits is applied wholesale with NumPy; everything from
the first miss to the chunk end goes through the scalar fast-path body
unchanged (misses mutate L1 membership, which invalidates the rest of
the snapshot).  The next chunk re-snapshots.

The vector apply reproduces the scalar loop bit-for-bit:

* cycles accumulate through a seeded ``cumsum`` — a *sequential* IEEE
  float64 fold, element-identical to the scalar ``cycles += delta *
  base_cpi`` chain (``np.sum``'s pairwise reduction would not be);
* exact LRU state: within a run each set's clock advances once per
  touch, so a touch's stamp is ``clock_before[set] + rank-within-set``;
  the final stamp of each (set, way) is its last touch's stamp, and
  per-set clocks advance by per-set touch counts (``bincount``);
* ``data.on_write`` fires per store, in trace order, with plain-int
  addresses (NumPy integer scalars are kept out of all model state —
  they would silently slow every later scalar touch);
* victim-occupancy samples falling inside a run all observe the same
  value, since a pure L1-hit run cannot change LLC state.

Byte-identity against the traced reference loop — results and
serialised observations — is enforced by the differential fuzz oracle
in ``tests/sim/test_batch_equivalence.py``.

NumPy is an optional dependency here: without it (or with a non-LRU
L1) ``simulate_trace`` degrades to the scalar fast engine.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2, LLC

try:  # NumPy is optional; the engine reports itself unavailable without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None  # type: ignore[assignment]

#: Default accesses per chunk.  Large enough to amortise the snapshot +
#: probe (~one numpy call per column plus one 8-way compare per access),
#: small enough that a miss-heavy trace wastes little prediction work.
DEFAULT_CHUNK = 4096

#: First probe segment length.  Predictions past the first miss are
#: discarded, so the probe grows geometrically from this floor instead
#: of paying for the whole chunk up front — a miss-heavy chunk probes
#: ~this many accesses, a fully-hitting chunk probes ~2x its length.
PROBE_MIN = 512


def available() -> bool:
    """True when the batch engine can run in this interpreter."""
    return np is not None


def run_batch_loop(
    deltas,
    addrs,
    kinds,
    hierarchy,
    core,
    on_write,
    victim_occupancy,
    sample_every: int,
    next_sample: int,
    occupancy,
    chunk_size: int | None = None,
) -> None:
    """Run one trace through the hierarchy in vectorised chunks.

    Mutates ``hierarchy``/``core``/``occupancy`` exactly like the scalar
    fast loop in :func:`repro.sim.single_core.simulate_trace`, including
    the post-loop flush of locally batched counters.  ``next_sample`` is
    ``-1`` when the LLC has no victim cache to sample.
    """
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    length = len(addrs)

    l1 = hierarchy.l1
    l1_sets = l1._sets
    l1_mask = l1._set_mask
    num_sets = l1_mask + 1
    ways = l1.ways
    l1_tags = l1.tags
    l1_valid = l1.valid
    l1_stamps = l1.stamps
    l1_clocks = l1.clocks
    l1_dirty = l1.dirty
    after_l1_miss = hierarchy.access_after_l1_miss
    base_cpi = core.base_cpi
    l2_stall = core.l2_stall
    llc_exposed = core.llc_exposed
    mlp_llc = core.mlp_llc
    mlp_memory = core.mlp_memory
    cycles = core.cycles
    instructions = core.instructions
    stall_cycles = core.stall_cycles
    l1_hits = 0
    samples: list[int] = []

    # Zero-copy views over the trace's packed array.array columns.
    np_addrs = np.frombuffer(addrs, dtype=np.int64)
    np_deltas = np.frombuffer(deltas, dtype=np.int32)
    np_kinds = np.frombuffer(kinds, dtype=np.int8)

    lo = 0
    while lo < length:
        hi = lo + chunk_size
        if hi > length:
            hi = length
        # Snapshot probe: predictions are exact up to the first predicted
        # miss (see module docstring).  Probed in geometrically growing
        # segments so only consumed predictions are paid for.
        tags2d = np.array(l1_tags, dtype=np.int64).reshape(num_sets, ways)
        valid2d = np.array(l1_valid, dtype=bool).reshape(num_sets, ways)
        run_len = 0
        part_sets: list = []
        part_ways: list = []
        seg_lo = lo
        seg = PROBE_MIN
        while True:
            seg_hi = seg_lo + seg
            if seg_hi > hi:
                seg_hi = hi
            a = np_addrs[seg_lo:seg_hi]
            sidx = a & l1_mask
            eq = (tags2d[sidx] == a[:, None]) & valid2d[sidx]
            seg_hit = eq.any(axis=1)
            if seg_hit.all():
                part_sets.append(sidx)
                part_ways.append(eq.argmax(axis=1))
                run_len += seg_hi - seg_lo
                seg_lo = seg_hi
                if seg_lo >= hi:
                    break
                seg *= 2
            else:
                k = int(np.argmax(~seg_hit))
                if k:
                    part_sets.append(sidx[:k])
                    part_ways.append(eq[:k].argmax(axis=1))
                    run_len += k
                break
        m = lo + run_len

        if run_len:
            # ---- vector-apply the leading hit run [lo, m) ----
            if len(part_sets) == 1:
                r_set = part_sets[0]
                r_way = part_ways[0]
            else:
                r_set = np.concatenate(part_sets)
                r_way = np.concatenate(part_ways)
            r_flat = r_set * ways + r_way

            # Exact LRU stamps: rank of each touch within its set's
            # ordered touches (stable sort keeps trace order per set).
            order = np.argsort(r_set, kind="stable")
            s_sorted = r_set[order]
            group_start = np.searchsorted(s_sorted, s_sorted, side="left")
            ranks = np.empty(run_len, dtype=np.int64)
            ranks[order] = np.arange(run_len, dtype=np.int64) - group_start + 1
            clocks_np = np.array(l1_clocks, dtype=np.int64)
            stamp_vals = clocks_np[r_set] + ranks

            # Each (set, way)'s final stamp is its *last* touch's stamp.
            order2 = np.argsort(r_flat, kind="stable")
            f_sorted = r_flat[order2]
            last = np.empty(run_len, dtype=bool)
            last[-1] = True
            np.not_equal(f_sorted[1:], f_sorted[:-1], out=last[:-1])
            wb_pos = order2[last]
            for flat, stamp in zip(
                r_flat[wb_pos].tolist(), stamp_vals[wb_pos].tolist()
            ):
                l1_stamps[flat] = stamp

            counts = np.bincount(r_set, minlength=num_sets)
            touched = np.flatnonzero(counts)
            for index, count in zip(touched.tolist(), counts[touched].tolist()):
                l1_clocks[index] += count

            # Stores: dirty bits (order-free) and on_write (in order).
            wr_rel = np.flatnonzero(np_kinds[lo:m] == 1)
            if wr_rel.size:
                for flat in np.unique(r_flat[wr_rel]).tolist():
                    l1_dirty[flat] = True
                for j in wr_rel.tolist():
                    on_write(addrs[lo + j])

            d_run = np_deltas[lo:m]
            instructions += int(d_run.sum(dtype=np.int64))
            # Seeded sequential cumsum == the scalar float fold.
            buf = np.empty(run_len + 1, dtype=np.float64)
            buf[0] = cycles
            np.multiply(d_run, base_cpi, out=buf[1:])
            cycles = float(buf.cumsum()[-1])
            l1_hits += run_len

            if 0 <= next_sample < m:
                value = victim_occupancy()
                while next_sample < m:
                    samples.append(value)
                    next_sample += sample_every

        # ---- scalar fast-path tail [m, hi): first miss onwards ----
        for i in range(m, hi):
            addr = addrs[i]
            delta = deltas[i]
            instructions += delta
            cycles += delta * base_cpi
            is_write = kinds[i] == 1
            if is_write:
                on_write(addr)
            cset = l1_sets[addr & l1_mask]
            way = cset.lookup.get(addr)
            if way is not None:
                index = cset.index
                clock = l1_clocks[index] + 1
                l1_clocks[index] = clock
                l1_stamps[cset.base + way] = clock
                if is_write:
                    l1_dirty[cset.base + way] = True
                l1_hits += 1
            else:
                hierarchy.now = cycles
                outcome = after_l1_miss(addr, is_write)
                level = outcome.level
                if level == L2:
                    stall = l2_stall
                elif level == LLC:
                    stall = (llc_exposed + outcome.extra_llc_cycles) / mlp_llc
                else:
                    stall = (
                        llc_exposed
                        + outcome.extra_llc_cycles
                        + outcome.dram_latency
                    ) / mlp_memory
                cycles += stall
                stall_cycles += stall
            if i == next_sample:
                samples.append(victim_occupancy())
                next_sample += sample_every

        lo = hi

    # Flush the locally batched state, exactly like the fast loop.
    core.cycles = cycles
    core.instructions = instructions
    core.stall_cycles = stall_cycles
    stats = hierarchy.stats
    stats.accesses += length
    stats.l1_hits += l1_hits
    l1.stat_hits += l1_hits
    l1.stat_misses += length - l1_hits
    for value in samples:
        occupancy.observe(value)

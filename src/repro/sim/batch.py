"""Resumable batch access engine: vectorised L1 hit runs, inlined misses.

The single-core inner loop spends most of its instructions deciding, one
access at a time, that an address is an L1 hit and touching the LRU
state.  This engine snapshots the L1's flat tag/valid columns **once**
(the columnar layout from :mod:`repro.cache.setassoc` exists for exactly
this) and resolves hit/way predictions for whole spans of the trace with
vectorised probes.  Predictions stay exact precisely until the first
predicted miss: L1 hits never change cache *membership*, so the leading
run of predicted hits is applied wholesale with NumPy; the miss itself
goes through the scalar miss body.

What makes the engine *resumable* is the hierarchy's L1 mutation log
(``CacheHierarchy._l1_log``): only the fill/invalidate paths change L1
membership, and each appends the flat slot it touched.  After handling
a miss scalar-side the engine patches exactly those slots of its
snapshot and re-enters the vectorised probe immediately — no whole-cache
re-snapshot, and no falling back to scalar until an arbitrary chunk
boundary.  ``chunk_size`` survives as the *probe cap*: the most
predictions examined per probe (tests exercise boundary cases with it).

Two adaptations keep miss-heavy phases from drowning in probe overhead:

* the probe segment length doubles while segments keep fully hitting and
  shrinks toward the observed run length after a miss, so only consumed
  predictions are paid for;
* runs shorter than ``VEC_MIN`` are replayed through the scalar body
  (the fixed cost of the vector apply exceeds its benefit there), and
  after ``SHORT_LIMIT`` consecutive short runs the engine processes a
  ``BURST`` of accesses purely scalar-side before probing again.

The scalar miss body is the miss path of
:meth:`~repro.cache.hierarchy.CacheHierarchy.access_after_l1_miss`,
inlined: L2 probe, prefetcher training, size-memo lookup, the LLC access
with its stats merge, DRAM accounting, back-invalidations, and the
L2/L1 fills — all over locals hoisted once per run, with every
hierarchy/cache counter batched in local ints and flushed once after
the loop (the same pattern the scalar fast loop applies to the L1 hit
path, lifted across the whole miss path).  Inlined state updates land
in the same order with the same values as the hierarchy's own methods;
`tests/sim/test_engine_equivalence.py` and the differential fuzz oracle
prove it.

The vector apply reproduces the scalar loop bit-for-bit:

* cycles accumulate through a seeded ``cumsum`` — a *sequential* IEEE
  float64 fold, element-identical to the scalar ``cycles += delta *
  base_cpi`` chain (``np.sum``'s pairwise reduction would not be);
* exact LRU state: within a run each set's clock advances once per
  touch, so a touch's stamp is ``clock_before[set] + rank-within-set``;
  the final stamp of each (set, way) is its last touch's stamp, and
  per-set clocks advance by per-set touch counts (``bincount``);
* ``data.on_write`` fires per store, in trace order, with plain-int
  addresses (NumPy integer scalars are kept out of all model state —
  they would silently slow every later scalar touch);
* victim-occupancy samples falling inside a run all observe the same
  value, since a pure L1-hit run cannot change LLC state.

Byte-identity against the traced reference loop — results and
serialised observations — is enforced by the differential fuzz oracle
in ``tests/sim/test_batch_equivalence.py``.

NumPy is an optional dependency here: without it (or with a non-LRU
L1) ``simulate_trace`` degrades to the scalar fast engine.
"""

from __future__ import annotations

from repro.cache.hierarchy import _decompression_cycles
from repro.cache.prefetch import _PAGE_LINES, _PAGE_MASK, _PAGE_SHIFT
from repro.core.basevictim import BaseVictimLLC
from repro.core.interfaces import AccessKind
from repro.core.uncompressed import UncompressedLLC

try:  # NumPy is optional; the engine reports itself unavailable without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None  # type: ignore[assignment]

# AccessKind members as plain ints (see repro.cache.hierarchy).
_READ = int(AccessKind.READ)
_WRITEBACK = int(AccessKind.WRITEBACK)
_PREFETCH = int(AccessKind.PREFETCH)

#: Default probe cap: the most hit predictions one probe examines.
#: Large enough to amortise the per-probe numpy calls on hit-dominated
#: traces, small enough that nothing is wasted when the trace turns.
DEFAULT_CHUNK = 4096

#: First probe segment length.  Predictions past the first miss are
#: discarded, so the probe grows geometrically from this floor instead
#: of paying for the whole cap up front.
PROBE_MIN = 512

#: Segment-length floor after a miss shrinks the probe.
SEG_MIN = 64

#: Hit runs shorter than this are replayed scalar-side: the vector
#: apply's fixed cost (argsort/bincount/cumsum setup) only pays for
#: itself on longer runs.
VEC_MIN = 32

#: A run shorter than this counts toward the consecutive-short-run
#: streak that triggers a scalar burst.
SHORT_RUN = 8

#: Consecutive short runs before the engine stops probing for a while.
SHORT_LIMIT = 4

#: Accesses processed purely scalar-side once a miss-heavy phase is
#: detected, before the next vectorised probe.
BURST = 512


def available() -> bool:
    """True when the batch engine can run in this interpreter."""
    return np is not None


def run_batch_loop(
    deltas,
    addrs,
    kinds,
    hierarchy,
    core,
    on_write,
    victim_occupancy,
    sample_every: int,
    next_sample: int,
    occupancy,
    chunk_size: int | None = None,
) -> None:
    """Run one trace through the hierarchy with resumable vector probes.

    Mutates ``hierarchy``/``core``/``occupancy`` exactly like the scalar
    fast loop in :func:`repro.sim.single_core.simulate_trace`, including
    the post-loop flush of locally batched counters.  ``next_sample`` is
    ``-1`` when the LLC has no victim cache to sample.
    """
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    cap = chunk_size
    length = len(addrs)

    l1 = hierarchy.l1
    l1_sets = l1._sets
    l1_mask = l1._set_mask
    num_sets = l1_mask + 1
    ways = l1.ways
    l1_tags = l1.tags
    l1_valid = l1.valid
    l1_stamps = l1.stamps
    l1_clocks = l1.clocks
    l1_dirty = l1.dirty

    l2 = hierarchy.l2
    l2_sets = l2._sets
    l2_mask = l2._set_mask
    l2_ways = l2.ways
    l2_tags = l2.tags
    l2_valid = l2.valid
    l2_stamps = l2.stamps
    l2_clocks = l2.clocks
    l2_dirty = l2.dirty
    l2_lru_inline = l2._lru_inline
    l2_policy = l2.policy

    prefetcher = hierarchy.prefetcher
    pf_degree = prefetcher.degree
    pf_table = prefetcher._table
    pf_table_size = prefetcher.table_size

    llc = hierarchy.llc
    llc_access = llc.access
    llc_contains = llc.contains
    llc_hint = llc.hint_downgrade

    # LLC flavor fast lanes.  The perf matrix runs exactly two LLC
    # flavors, and both spend the bench traces almost entirely in the
    # miss path, so their hottest entry points are inlined below over
    # hoisted columns: ``unc`` selects the full inline of the
    # uncompressed-NRU LLC (demand, writeback, prefetch and hint
    # sites); ``bv`` selects the inlined contains/hint_downgrade of the
    # Base-Victim LLC, whose access() is already a fused fast lane of
    # its own.  Any other flavor takes the plain method calls.
    unc = None
    bv = None
    if isinstance(llc, UncompressedLLC) and llc._cache._nru_inline:
        unc = llc._cache
        u_sets = unc._sets
        u_mask = unc._set_mask
        u_ways = unc.ways
        u_tags = unc.tags
        u_valid = unc.valid
        u_dirty = unc.dirty
        u_ref = unc.referenced
        u_hands = unc.hands
    elif isinstance(llc, BaseVictimLLC) and llc._nru_inline:
        bv = llc
        bv_sets = llc._sets
        bv_mask = llc._set_mask
        bv_spl = llc.segments_per_line
        bv_vp = llc.victim_policy
        # The demand-read inline below replicates the fused fast lane of
        # BaseVictimLLC.access, so it is gated on the same invariants
        # (NRU + ECM + clean victims); other configs keep the method.
        bv_fast = llc._fast
    else:
        bv_fast = False
    extra_tag_cycles = llc.extra_tag_cycles
    decompression_cycles = _decompression_cycles(llc)
    l2_hints = hierarchy.config.l2_eviction_hints
    uses_sizes = hierarchy._uses_sizes
    memo_get = hierarchy.size_memo.get
    size_fn = hierarchy.size_fn
    memory = hierarchy.memory
    mem_read = memory.read if memory is not None else None
    mem_write = memory.write if memory is not None else None
    process_invalidates = hierarchy._process_invalidates
    fill_l2 = hierarchy._fill_l2

    base_cpi = core.base_cpi
    l2_stall = core.l2_stall
    llc_exposed = core.llc_exposed
    mlp_llc = core.mlp_llc
    mlp_memory = core.mlp_memory
    cycles = core.cycles
    instructions = core.instructions
    stall_cycles = core.stall_cycles
    l1_hits = 0
    samples: list[int] = []

    # Hierarchy/cache counters batched in locals, flushed once after the
    # loop — the fast loop's L1-hit pattern, lifted across the miss path.
    l2_hits_c = 0
    llc_hits_c = 0
    llc_victim_hits_c = 0
    llc_misses_c = 0
    compressed_hits_c = 0
    memory_reads_c = 0
    memory_writes_c = 0
    silent_evictions_c = 0
    llc_data_reads_c = 0
    llc_data_writes_c = 0
    llc_fill_segments_c = 0
    llc_accesses_c = 0
    writebacks_to_llc_c = 0
    prefetch_fills_c = 0
    l1_evictions_c = 0
    l1_writebacks_c = 0
    l2_probe_hits_c = 0
    l2_probe_misses_c = 0
    l2_evictions_c = 0
    l2_writebacks_c = 0
    back_invalidations_c = 0
    unc_hits_c = 0
    unc_misses_c = 0
    unc_evictions_c = 0
    unc_writebacks_c = 0
    unc_wbmiss_c = 0
    bv_base_hits_c = 0
    bv_victim_hits_c = 0
    bv_misses_c = 0
    bv_promotions_c = 0
    bv_demotions_c = 0
    bv_silent_c = 0
    bv_choices_c = 0
    bv_replacements_c = 0

    # Zero-copy views over the trace's packed array.array columns.
    np_addrs = np.frombuffer(addrs, dtype=np.int64)
    np_deltas = np.frombuffer(deltas, dtype=np.int32)
    np_kinds = np.frombuffer(kinds, dtype=np.int8)

    # One snapshot of the L1's flat columns for the whole trace.  The
    # 2-D probe views alias the flat arrays, so patching a flat slot
    # below updates what the probe sees.
    t_flat = np.array(l1_tags, dtype=np.int64)
    v_flat = np.array(l1_valid, dtype=bool)
    tags2d = t_flat.reshape(num_sets, ways)
    valid2d = v_flat.reshape(num_sets, ways)
    log: list[int] = []
    prev_log = hierarchy._l1_log
    hierarchy._l1_log = log
    # Past this many logged slots (a scalar burst logs thousands) a bulk
    # refresh of the whole snapshot is cheaper than per-slot patching:
    # the list->array assignment is one C loop, a patch is four
    # interpreted operations per slot.
    refresh_floor = (num_sets * ways) // 4

    try:
        lo = 0
        seg = PROBE_MIN if PROBE_MIN < cap else cap
        short_runs = 0
        while lo < length:
            # Sync: patch the snapshot slots the scalar side mutated.
            if log:
                if len(log) > refresh_floor:
                    t_flat[:] = l1_tags
                    v_flat[:] = l1_valid
                else:
                    for slot in log:
                        t_flat[slot] = l1_tags[slot]
                        v_flat[slot] = l1_valid[slot]
                log.clear()

            # Probe the leading hit run from lo, in adaptively sized
            # segments, examining at most ``cap`` predictions.
            probe_hi = lo + cap
            if probe_hi > length:
                probe_hi = length
            run_len = 0
            part_sets: list = []
            part_ways: list = []
            seg_lo = lo
            miss = False
            while seg_lo < probe_hi:
                seg_hi = seg_lo + seg
                if seg_hi > probe_hi:
                    seg_hi = probe_hi
                a = np_addrs[seg_lo:seg_hi]
                sidx = a & l1_mask
                eq = (tags2d[sidx] == a[:, None]) & valid2d[sidx]
                seg_hit = eq.any(axis=1)
                if seg_hit.all():
                    part_sets.append(sidx)
                    part_ways.append(eq.argmax(axis=1))
                    run_len += seg_hi - seg_lo
                    seg_lo = seg_hi
                    grown = seg * 2
                    seg = grown if grown < cap else cap
                else:
                    k = int(np.argmax(~seg_hit))
                    if k:
                        part_sets.append(sidx[:k])
                        part_ways.append(eq[:k].argmax(axis=1))
                        run_len += k
                    miss = True
                    shrunk = 2 * run_len
                    if shrunk < SEG_MIN:
                        shrunk = SEG_MIN
                    seg = shrunk if shrunk < cap else cap
                    break
            m = lo + run_len

            if run_len >= VEC_MIN:
                # ---- vector-apply the leading hit run [lo, m) ----
                scalar_lo = m
                if len(part_sets) == 1:
                    r_set = part_sets[0]
                    r_way = part_ways[0]
                else:
                    r_set = np.concatenate(part_sets)
                    r_way = np.concatenate(part_ways)
                r_flat = r_set * ways + r_way

                # Exact LRU stamps: rank of each touch within its set's
                # ordered touches (stable sort keeps trace order per set).
                order = np.argsort(r_set, kind="stable")
                s_sorted = r_set[order]
                group_start = np.searchsorted(s_sorted, s_sorted, side="left")
                ranks = np.empty(run_len, dtype=np.int64)
                ranks[order] = np.arange(run_len, dtype=np.int64) - group_start + 1
                clocks_np = np.array(l1_clocks, dtype=np.int64)
                stamp_vals = clocks_np[r_set] + ranks

                # Each (set, way)'s final stamp is its *last* touch's stamp.
                order2 = np.argsort(r_flat, kind="stable")
                f_sorted = r_flat[order2]
                last = np.empty(run_len, dtype=bool)
                last[-1] = True
                np.not_equal(f_sorted[1:], f_sorted[:-1], out=last[:-1])
                wb_pos = order2[last]
                for flat, stamp in zip(
                    r_flat[wb_pos].tolist(), stamp_vals[wb_pos].tolist()
                ):
                    l1_stamps[flat] = stamp

                counts = np.bincount(r_set, minlength=num_sets)
                touched = np.flatnonzero(counts)
                for index, count in zip(
                    touched.tolist(), counts[touched].tolist()
                ):
                    l1_clocks[index] += count

                # Stores: dirty bits (order-free) and on_write (in order).
                wr_rel = np.flatnonzero(np_kinds[lo:m] == 1)
                if wr_rel.size:
                    for flat in np.unique(r_flat[wr_rel]).tolist():
                        l1_dirty[flat] = True
                    for j in wr_rel.tolist():
                        on_write(addrs[lo + j])

                d_run = np_deltas[lo:m]
                instructions += int(d_run.sum(dtype=np.int64))
                # Seeded sequential cumsum == the scalar float fold.
                buf = np.empty(run_len + 1, dtype=np.float64)
                buf[0] = cycles
                np.multiply(d_run, base_cpi, out=buf[1:])
                cycles = float(buf.cumsum()[-1])
                l1_hits += run_len

                if 0 <= next_sample < m:
                    value = victim_occupancy()
                    while next_sample < m:
                        samples.append(value)
                        next_sample += sample_every
            else:
                # Short run: the vector apply's fixed cost exceeds its
                # benefit, so replay these hits through the scalar body.
                scalar_lo = lo

            # Scalar span: the short run (if any), the predicted miss,
            # and — in a detected miss-heavy phase — a whole burst.
            scalar_hi = m + 1 if miss else m
            if miss:
                if run_len < SHORT_RUN:
                    short_runs += 1
                    if short_runs >= SHORT_LIMIT:
                        # Stay primed: while the miss-heavy phase lasts,
                        # one more short run re-triggers the next burst
                        # immediately instead of after SHORT_LIMIT more
                        # wasted probes.
                        short_runs = SHORT_LIMIT
                        scalar_hi = m + BURST
                        if scalar_hi > length:
                            scalar_hi = length
                else:
                    short_runs = 0

            # ---- scalar body for [scalar_lo, scalar_hi): the hierarchy
            # demand path (access_after_l1_miss and the fills), inlined
            # over the locals hoisted above.  Updates land in the same
            # order with the same values as the hierarchy's own methods;
            # the fuzz oracle proves byte-identity.
            # zip over slices iterates the packed arrays in C instead of
            # three bound-checked subscripts per access (the slice copies
            # are trivial next to a burst's worth of scalar work).
            i = scalar_lo
            for delta, addr, kind in zip(
                deltas[scalar_lo:scalar_hi],
                addrs[scalar_lo:scalar_hi],
                kinds[scalar_lo:scalar_hi],
            ):
                instructions += delta
                cycles += delta * base_cpi
                is_write = kind == 1
                if is_write:
                    on_write(addr)
                cset = l1_sets[addr & l1_mask]
                way = cset.lookup.get(addr)
                if way is not None:
                    # Inlined l1.probe hit: LRU touch plus the dirty bit.
                    index = cset.index
                    clock = l1_clocks[index] + 1
                    l1_clocks[index] = clock
                    l1_stamps[cset.base + way] = clock
                    if is_write:
                        l1_dirty[cset.base + way] = True
                    l1_hits += 1
                else:
                    # Inlined l2.probe (a demand read never dirties L2).
                    l2set = l2_sets[addr & l2_mask]
                    l2way = l2set.lookup.get(addr)
                    if l2way is not None:
                        if l2_lru_inline:
                            index = l2set.index
                            clock = l2_clocks[index] + 1
                            l2_clocks[index] = clock
                            l2_stamps[l2set.base + l2way] = clock
                        else:
                            l2_policy.on_hit(l2set.policy_state, l2way)
                        l2_probe_hits_c += 1
                        l2_hits_c += 1
                        stall = l2_stall
                        prefetches: list[int] | tuple[()] = ()
                    else:
                        l2_probe_misses_c += 1

                        # Prefetcher training (StreamPrefetcher.observe,
                        # inlined — see hierarchy.access_after_l1_miss).
                        prefetches = ()
                        if pf_degree:
                            page = addr >> _PAGE_SHIFT
                            offset = addr & _PAGE_MASK
                            entry = pf_table.pop(page, None)
                            if entry is None:
                                pf_table[page] = (offset, 0, False)
                            else:
                                last_offset, stride, trained = entry
                                new_stride = offset - last_offset
                                if new_stride == 0:
                                    pf_table[page] = entry
                                elif new_stride == stride and (
                                    trained or stride != 0
                                ):
                                    if not trained:
                                        prefetcher.stat_trainings += 1
                                    # StreamPrefetcher._issue, inlined:
                                    # degree lines ahead, within the page.
                                    prefetches = []
                                    page_base = page * _PAGE_LINES
                                    target = offset
                                    for _ in range(pf_degree):
                                        target += stride
                                        if 0 <= target < _PAGE_LINES:
                                            prefetches.append(page_base + target)
                                    prefetcher.stat_issued += len(prefetches)
                                    pf_table[page] = (offset, stride, True)
                                else:
                                    pf_table[page] = (offset, new_stride, False)
                            while len(pf_table) > pf_table_size:
                                del pf_table[next(iter(pf_table))]

                        if unc is not None:
                            # UncompressedLLC.access(addr, READ, 1),
                            # inlined together with its stats merge,
                            # DRAM accounting and back-invalidation —
                            # same call order, same values as the
                            # generic branch below.
                            ucset = u_sets[addr & u_mask]
                            uway = ucset.lookup.get(addr)
                            llc_accesses_c += 1
                            if uway is not None:
                                u_ref[ucset.base + uway] = True
                                unc_hits_c += 1
                                llc_hits_c += 1
                                llc_data_reads_c += 1
                                stall = (
                                    llc_exposed + extra_tag_cycles
                                ) / mlp_llc
                            else:
                                unc_misses_c += 1
                                llc_misses_c += 1
                                memory_reads_c += 1
                                llc_data_writes_c += 1
                                llc_fill_segments_c += 1
                                llc_data_reads_c += 1
                                read_latency = (
                                    mem_read(addr, cycles)
                                    if memory is not None
                                    else 0.0
                                )
                                stall = (
                                    llc_exposed
                                    + extra_tag_cycles
                                    + read_latency
                                ) / mlp_memory
                                # cache.fill, inlined (NRU rotating
                                # hand; see repro.cache.setassoc).
                                ubase = ucset.base
                                if ucset.valid_count == u_ways:
                                    uindex = ucset.index
                                    hand = u_hands[uindex]
                                    try:
                                        uway = (
                                            u_ref.index(
                                                False,
                                                ubase + hand,
                                                ubase + u_ways,
                                            )
                                            - ubase
                                        )
                                    except ValueError:
                                        try:
                                            uway = (
                                                u_ref.index(
                                                    False, ubase, ubase + hand
                                                )
                                                - ubase
                                            )
                                        except ValueError:
                                            for w in range(
                                                ubase, ubase + u_ways
                                            ):
                                                u_ref[w] = False
                                            uway = hand
                                    u_hands[uindex] = (
                                        uway + 1 if uway + 1 < u_ways else 0
                                    )
                                    uslot = ubase + uway
                                    uvictim = u_tags[uslot]
                                    uvictim_dirty = u_dirty[uslot]
                                    del ucset.lookup[uvictim]
                                    unc_evictions_c += 1
                                    if uvictim_dirty:
                                        unc_writebacks_c += 1
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(addr, cycles)
                                    # Back-invalidate the evicted line
                                    # (single-line
                                    # _process_invalidates, inlined).
                                    icset = l1_sets[uvictim & l1_mask]
                                    iway = icset.lookup.pop(uvictim, None)
                                    if iway is None:
                                        present = idirty = False
                                    else:
                                        present = True
                                        islot = icset.base + iway
                                        idirty = l1_dirty[islot]
                                        l1_valid[islot] = False
                                        l1_dirty[islot] = False
                                        icset.valid_count -= 1
                                        l1_stamps[islot] = 0
                                        log.append(islot)
                                    icset = l2_sets[uvictim & l2_mask]
                                    iway = icset.lookup.pop(uvictim, None)
                                    if iway is not None:
                                        present = True
                                        islot = icset.base + iway
                                        idirty = idirty or l2_dirty[islot]
                                        l2_valid[islot] = False
                                        l2_dirty[islot] = False
                                        icset.valid_count -= 1
                                        l2_stamps[islot] = 0
                                    if present:
                                        back_invalidations_c += 1
                                    if idirty and not uvictim_dirty:
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(uvictim, cycles)
                                else:
                                    uslot = u_valid.index(
                                        False, ubase, ubase + u_ways
                                    )
                                    uway = uslot - ubase
                                    ucset.valid_count += 1
                                u_tags[uslot] = addr
                                u_valid[uslot] = True
                                u_dirty[uslot] = False
                                ucset.lookup[addr] = uway
                                u_ref[uslot] = True
                        elif bv_fast:
                            # BaseVictimLLC.access(addr, READ, size) —
                            # the fused fast lane of basevictim.py,
                            # re-inlined for the demand read together
                            # with its stats merge, DRAM accounting and
                            # back-invalidation.  Same order, same
                            # values; the fuzz oracle proves it.
                            size = memo_get(addr)
                            if size is None:
                                size = size_fn(addr)
                            bcset = bv_sets[addr & bv_mask]
                            llc_accesses_c += 1
                            base_way = bcset.base_lookup.get(addr)
                            if base_way is not None:
                                # _base_hit READ, inlined.
                                bv_base_hits_c += 1
                                bcset.policy_state.referenced[
                                    base_way
                                ] = True
                                llc_hits_c += 1
                                llc_data_reads_c += 1
                                extra = extra_tag_cycles
                                if 0 < bcset.base_size[base_way] < bv_spl:
                                    compressed_hits_c += 1
                                    extra += decompression_cycles
                                stall = (llc_exposed + extra) / mlp_llc
                            else:
                                vict_way = bcset.vict_lookup.get(addr)
                                if vict_way is not None:
                                    # _victim_hit READ, inlined.
                                    bv_victim_hits_c += 1
                                    llc_hits_c += 1
                                    llc_victim_hits_c += 1
                                    llc_data_reads_c += 1
                                    stored_size = bcset.vict_size[vict_way]
                                    extra = extra_tag_cycles
                                    if 0 < stored_size < bv_spl:
                                        compressed_hits_c += 1
                                        extra += decompression_cycles
                                    stall = (llc_exposed + extra) / mlp_llc
                                    fill_size = stored_size
                                    stored_dirty = bcset.vict_dirty[
                                        vict_way
                                    ]
                                    del bcset.vict_lookup[addr]
                                    bv._victim_resident -= 1
                                    bcset.vict_valid[vict_way] = False
                                    bcset.vict_dirty[vict_way] = False
                                    fill_dirty = stored_dirty
                                    promotion = True
                                else:
                                    # _miss READ, inlined.
                                    bv_misses_c += 1
                                    llc_misses_c += 1
                                    memory_reads_c += 1
                                    read_latency = (
                                        mem_read(addr, cycles)
                                        if memory is not None
                                        else 0.0
                                    )
                                    stall = (
                                        llc_exposed
                                        + extra_tag_cycles
                                        + read_latency
                                    ) / mlp_memory
                                    fill_size = size
                                    fill_dirty = False
                                    promotion = False

                                # _fill_baseline, inlined: free way
                                # first, then the NRU hand scan, then
                                # the compression steps.
                                base_lookup = bcset.base_lookup
                                base_valid = bcset.base_valid
                                base_tags = bcset.base_tags
                                base_dirty_col = bcset.base_dirty
                                base_size_col = bcset.base_size
                                vict_valid = bcset.vict_valid
                                state = bcset.policy_state
                                referenced = state.referenced
                                have_replaced = False
                                replaced_addr = 0
                                replaced_size = 0
                                was_dirty = False
                                if bcset.base_valid_count < len(base_valid):
                                    bway = base_valid.index(False)
                                    bcset.base_valid_count += 1
                                else:
                                    hand = state.hand
                                    bways = len(referenced)
                                    try:
                                        bway = referenced.index(False, hand)
                                    except ValueError:
                                        try:
                                            bway = referenced.index(
                                                False, 0, hand
                                            )
                                        except ValueError:
                                            for w in range(bways):
                                                referenced[w] = False
                                            bway = hand
                                    state.hand = (
                                        bway + 1 if bway + 1 < bways else 0
                                    )
                                    replaced_addr = base_tags[bway]
                                    was_dirty = base_dirty_col[bway]
                                    if was_dirty:
                                        # Write back so the demoted
                                        # line is clean (Section IV.A).
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(addr, cycles)
                                    replaced_size = base_size_col[bway]
                                    have_replaced = True
                                    del base_lookup[replaced_addr]
                                base_tags[bway] = addr
                                base_valid[bway] = True
                                base_dirty_col[bway] = fill_dirty
                                base_size_col[bway] = fill_size
                                base_lookup[addr] = bway
                                referenced[bway] = True
                                if (
                                    vict_valid[bway]
                                    and fill_size + bcset.vict_size[bway]
                                    > bv_spl
                                ):
                                    # Section IV.B.5: the fill no longer
                                    # shares the physical way.
                                    bv.stat_partner_evictions += 1
                                    del bcset.vict_lookup[
                                        bcset.vict_tags[bway]
                                    ]
                                    bv._victim_resident -= 1
                                    vict_valid[bway] = False
                                    if bcset.vict_dirty[bway]:
                                        bcset.vict_dirty[bway] = False
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(addr, cycles)
                                    else:
                                        silent_evictions_c += 1
                                        bv_silent_c += 1

                                if have_replaced:
                                    # _insert_victim (ECM scan over the
                                    # parallel columns), inlined.
                                    room = bv_spl - replaced_size
                                    way_v = -1
                                    free_way = -1
                                    free_size = -1
                                    occ_size = -1
                                    w = 0
                                    for bvalid, bsize, vvalid in zip(
                                        base_valid,
                                        base_size_col,
                                        vict_valid,
                                    ):
                                        if not bvalid:
                                            bsize = 0
                                        if bsize <= room:
                                            if vvalid:
                                                if bsize > occ_size:
                                                    occ_size = bsize
                                                    way_v = w
                                            elif bsize > free_size:
                                                free_size = bsize
                                                free_way = w
                                        w += 1
                                    if free_way >= 0:
                                        way_v = free_way
                                    if way_v < 0:
                                        bv.stat_demotion_drops += 1
                                    else:
                                        bv_choices_c += 1
                                        if vict_valid[way_v]:
                                            bv_replacements_c += 1
                                            del bcset.vict_lookup[
                                                bcset.vict_tags[way_v]
                                            ]
                                            bv._victim_resident -= 1
                                            vict_valid[way_v] = False
                                            if bcset.vict_dirty[way_v]:
                                                bcset.vict_dirty[
                                                    way_v
                                                ] = False
                                                memory_writes_c += 1
                                                if memory is not None:
                                                    mem_write(addr, cycles)
                                            else:
                                                silent_evictions_c += 1
                                                bv_silent_c += 1
                                        bcset.vict_tags[way_v] = (
                                            replaced_addr
                                        )
                                        vict_valid[way_v] = True
                                        bcset.vict_dirty[way_v] = False
                                        bcset.vict_size[way_v] = (
                                            replaced_size
                                        )
                                        bcset.clock += 1
                                        bcset.vict_stamp[way_v] = (
                                            bcset.clock
                                        )
                                        bcset.vict_lookup[
                                            replaced_addr
                                        ] = way_v
                                        bv._victim_resident += 1
                                        bv_demotions_c += 1
                                        # Migration: read out of the
                                        # base way, write into here.
                                        llc_data_reads_c += 1
                                        llc_data_writes_c += 1
                                        llc_fill_segments_c += (
                                            replaced_size
                                        )

                                llc_data_writes_c += 1
                                llc_fill_segments_c += fill_size
                                if promotion:
                                    bv_promotions_c += 1
                                else:
                                    llc_data_reads_c += 1

                                if have_replaced:
                                    # Back-invalidate the replaced line
                                    # (single-line
                                    # _process_invalidates, inlined).
                                    icset = l1_sets[
                                        replaced_addr & l1_mask
                                    ]
                                    iway = icset.lookup.pop(
                                        replaced_addr, None
                                    )
                                    if iway is None:
                                        present = idirty = False
                                    else:
                                        present = True
                                        islot = icset.base + iway
                                        idirty = l1_dirty[islot]
                                        l1_valid[islot] = False
                                        l1_dirty[islot] = False
                                        icset.valid_count -= 1
                                        l1_stamps[islot] = 0
                                        log.append(islot)
                                    icset = l2_sets[
                                        replaced_addr & l2_mask
                                    ]
                                    iway = icset.lookup.pop(
                                        replaced_addr, None
                                    )
                                    if iway is not None:
                                        present = True
                                        islot = icset.base + iway
                                        idirty = idirty or l2_dirty[islot]
                                        l2_valid[islot] = False
                                        l2_dirty[islot] = False
                                        icset.valid_count -= 1
                                        l2_stamps[islot] = 0
                                    if present:
                                        back_invalidations_c += 1
                                    if idirty and not was_dirty:
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(
                                                replaced_addr, cycles
                                            )
                        else:
                            if uses_sizes:
                                size = memo_get(addr)
                                if size is None:
                                    size = size_fn(addr)
                            else:
                                size = 1
                            result = llc_access(addr, _READ, size)
                            memory_reads_c += result.memory_reads
                            memory_writes_c += result.memory_writes
                            silent_evictions_c += result.silent_evictions
                            llc_data_reads_c += result.data_reads
                            llc_data_writes_c += result.data_writes
                            llc_fill_segments_c += result.fill_segments
                            llc_accesses_c += 1
                            read_latency = 0.0
                            if memory is not None:
                                if result.memory_reads:
                                    read_latency = mem_read(addr, cycles)
                                for _ in range(result.memory_writes):
                                    mem_write(addr, cycles)
                            inv = result.invalidates
                            if inv:
                                if len(inv) == 1:
                                    # hierarchy._process_invalidates,
                                    # inlined for the dominant one-line
                                    # case (a fill drops at most one
                                    # line from the baseline image).
                                    inv_addr, wrote_back = inv[0]
                                    icset = l1_sets[inv_addr & l1_mask]
                                    iway = icset.lookup.pop(inv_addr, None)
                                    if iway is None:
                                        present = idirty = False
                                    else:
                                        present = True
                                        islot = icset.base + iway
                                        idirty = l1_dirty[islot]
                                        l1_valid[islot] = False
                                        l1_dirty[islot] = False
                                        icset.valid_count -= 1
                                        l1_stamps[islot] = 0
                                        log.append(islot)
                                    icset = l2_sets[inv_addr & l2_mask]
                                    iway = icset.lookup.pop(inv_addr, None)
                                    if iway is not None:
                                        present = True
                                        islot = icset.base + iway
                                        idirty = idirty or l2_dirty[islot]
                                        l2_valid[islot] = False
                                        l2_dirty[islot] = False
                                        icset.valid_count -= 1
                                        l2_stamps[islot] = 0
                                    if present:
                                        back_invalidations_c += 1
                                    if idirty and not wrote_back:
                                        # Most-recent data lived
                                        # upstream; it must reach
                                        # memory.
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(inv_addr, cycles)
                                else:
                                    hierarchy.now = cycles
                                    process_invalidates(result)
                            extra = extra_tag_cycles
                            if result.hit:
                                llc_hits_c += 1
                                if result.victim_hit:
                                    llc_victim_hits_c += 1
                                if result.compressed_hit:
                                    compressed_hits_c += 1
                                    extra += decompression_cycles
                                stall = (llc_exposed + extra) / mlp_llc
                            else:
                                llc_misses_c += 1
                                stall = (
                                    llc_exposed + extra + read_latency
                                ) / mlp_memory

                        # Inlined hierarchy._fill_l2(addr) on the miss
                        # path (the L2-hit path fills only the L1).
                        base2 = l2set.base
                        index2 = l2set.index
                        if l2set.valid_count < l2_ways:
                            slot2 = l2_valid.index(False, base2, base2 + l2_ways)
                            l2set.valid_count += 1
                            l2_tags[slot2] = addr
                            l2_valid[slot2] = True
                            l2_dirty[slot2] = False
                            l2set.lookup[addr] = slot2 - base2
                            clock2 = l2_clocks[index2] + 1
                            l2_clocks[index2] = clock2
                            l2_stamps[slot2] = clock2
                        else:
                            seg2 = l2_stamps[base2 : base2 + l2_ways]
                            slot2 = base2 + seg2.index(min(seg2))
                            victim2 = l2_tags[slot2]
                            victim2_dirty = l2_dirty[slot2]
                            del l2set.lookup[victim2]
                            l2_evictions_c += 1
                            if victim2_dirty:
                                l2_writebacks_c += 1
                            l2_tags[slot2] = addr
                            l2_dirty[slot2] = False
                            l2set.lookup[addr] = slot2 - base2
                            clock2 = l2_clocks[index2] + 1
                            l2_clocks[index2] = clock2
                            l2_stamps[slot2] = clock2

                            # L1 must not outlive its L2 copy (inclusive
                            # pair): l1.invalidate, inlined.
                            v1set = l1_sets[victim2 & l1_mask]
                            v1way = v1set.lookup.pop(victim2, None)
                            was_dirty = victim2_dirty
                            if v1way is not None:
                                v1slot = v1set.base + v1way
                                was_dirty = was_dirty or l1_dirty[v1slot]
                                l1_valid[v1slot] = False
                                l1_dirty[v1slot] = False
                                v1set.valid_count -= 1
                                l1_stamps[v1slot] = 0
                                log.append(v1slot)
                            if was_dirty:
                                writebacks_to_llc_c += 1
                                if unc is not None:
                                    # UncompressedLLC WRITEBACK, inlined:
                                    # a hit refreshes and dirties the
                                    # line; a miss bypasses to memory.
                                    ucset = u_sets[victim2 & u_mask]
                                    uway = ucset.lookup.get(victim2)
                                    llc_accesses_c += 1
                                    if uway is not None:
                                        uslot = ucset.base + uway
                                        u_ref[uslot] = True
                                        u_dirty[uslot] = True
                                        unc_hits_c += 1
                                        llc_data_writes_c += 1
                                        llc_fill_segments_c += 1
                                    else:
                                        unc_misses_c += 1
                                        unc_wbmiss_c += 1
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(victim2, cycles)
                                elif bv_fast:
                                    # BaseVictimLLC WRITEBACK: the two
                                    # dominant outcomes (in-place base
                                    # hit, non-resident bypass) inlined
                                    # from the fused fast lane; the rare
                                    # victim-hit promotion keeps the
                                    # method call.
                                    size_v = memo_get(victim2)
                                    if size_v is None:
                                        size_v = size_fn(victim2)
                                    bcset = bv_sets[victim2 & bv_mask]
                                    base_way = bcset.base_lookup.get(
                                        victim2
                                    )
                                    if base_way is not None:
                                        # _base_hit WRITEBACK: the data
                                        # and size change in place.
                                        llc_accesses_c += 1
                                        bv_base_hits_c += 1
                                        bcset.policy_state.referenced[
                                            base_way
                                        ] = True
                                        bcset.base_dirty[base_way] = True
                                        bcset.base_size[base_way] = size_v
                                        llc_data_writes_c += 1
                                        llc_fill_segments_c += size_v
                                        if (
                                            bcset.vict_valid[base_way]
                                            and size_v
                                            + bcset.vict_size[base_way]
                                            > bv_spl
                                        ):
                                            # Section IV.B.5: the grown
                                            # line no longer shares.
                                            bv.stat_partner_evictions += 1
                                            del bcset.vict_lookup[
                                                bcset.vict_tags[base_way]
                                            ]
                                            bv._victim_resident -= 1
                                            bcset.vict_valid[
                                                base_way
                                            ] = False
                                            if bcset.vict_dirty[base_way]:
                                                bcset.vict_dirty[
                                                    base_way
                                                ] = False
                                                memory_writes_c += 1
                                                if memory is not None:
                                                    mem_write(
                                                        victim2, cycles
                                                    )
                                            else:
                                                silent_evictions_c += 1
                                                bv_silent_c += 1
                                    elif victim2 not in bcset.vict_lookup:
                                        # Writeback to a non-resident
                                        # line bypasses to memory.
                                        llc_accesses_c += 1
                                        bv.stat_writeback_misses += 1
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(victim2, cycles)
                                    else:
                                        wb = llc_access(
                                            victim2, _WRITEBACK, size_v
                                        )
                                        memory_reads_c += wb.memory_reads
                                        memory_writes_c += wb.memory_writes
                                        silent_evictions_c += (
                                            wb.silent_evictions
                                        )
                                        llc_data_reads_c += wb.data_reads
                                        llc_data_writes_c += wb.data_writes
                                        llc_fill_segments_c += (
                                            wb.fill_segments
                                        )
                                        llc_accesses_c += 1
                                        if memory is not None:
                                            if wb.memory_reads:
                                                mem_read(victim2, cycles)
                                            for _ in range(
                                                wb.memory_writes
                                            ):
                                                mem_write(victim2, cycles)
                                        if wb.invalidates:
                                            hierarchy.now = cycles
                                            process_invalidates(wb)
                                else:
                                    if uses_sizes:
                                        size_v = memo_get(victim2)
                                        if size_v is None:
                                            size_v = size_fn(victim2)
                                    else:
                                        size_v = 1
                                    wb = llc_access(victim2, _WRITEBACK, size_v)
                                    memory_reads_c += wb.memory_reads
                                    memory_writes_c += wb.memory_writes
                                    silent_evictions_c += wb.silent_evictions
                                    llc_data_reads_c += wb.data_reads
                                    llc_data_writes_c += wb.data_writes
                                    llc_fill_segments_c += wb.fill_segments
                                    llc_accesses_c += 1
                                    if memory is not None:
                                        if wb.memory_reads:
                                            mem_read(victim2, cycles)
                                        for _ in range(wb.memory_writes):
                                            mem_write(victim2, cycles)
                                    if wb.invalidates:
                                        hierarchy.now = cycles
                                        process_invalidates(wb)
                            elif l2_hints:
                                # Clean, unreused L2 eviction: CHAR-style
                                # downgrade hint (hint_downgrade, inlined
                                # for both matrix LLC flavors).
                                if unc is not None:
                                    ucset = u_sets[victim2 & u_mask]
                                    uway = ucset.lookup.get(victim2)
                                    if uway is not None:
                                        u_ref[ucset.base + uway] = False
                                elif bv is not None:
                                    bcset = bv_sets[victim2 & bv_mask]
                                    bway = bcset.base_lookup.get(victim2)
                                    if bway is not None:
                                        bcset.policy_state.referenced[
                                            bway
                                        ] = False
                                else:
                                    llc_hint(victim2)

                    # Inlined hierarchy._fill_l1(addr, is_write) — both
                    # the L2-hit and the L2-miss paths converge here.
                    base1 = cset.base
                    victim1_dirty = False
                    victim1 = 0
                    if cset.valid_count == ways:
                        seg1 = l1_stamps[base1 : base1 + ways]
                        slot1 = base1 + seg1.index(min(seg1))
                        victim1 = l1_tags[slot1]
                        victim1_dirty = l1_dirty[slot1]
                        del cset.lookup[victim1]
                        l1_evictions_c += 1
                        if victim1_dirty:
                            l1_writebacks_c += 1
                    else:
                        slot1 = l1_valid.index(False, base1, base1 + ways)
                        cset.valid_count += 1
                    l1_tags[slot1] = addr
                    l1_valid[slot1] = True
                    l1_dirty[slot1] = is_write
                    cset.lookup[addr] = slot1 - base1
                    index1 = cset.index
                    clock1 = l1_clocks[index1] + 1
                    l1_clocks[index1] = clock1
                    l1_stamps[slot1] = clock1
                    log.append(slot1)
                    if victim1_dirty:
                        # Dirty L1 victim merges into the (inclusive) L2:
                        # l2.probe(victim1, is_write=True), inlined.
                        m2set = l2_sets[victim1 & l2_mask]
                        m2way = m2set.lookup.get(victim1)
                        if m2way is not None:
                            if l2_lru_inline:
                                index = m2set.index
                                clock = l2_clocks[index] + 1
                                l2_clocks[index] = clock
                                l2_stamps[m2set.base + m2way] = clock
                            else:
                                l2_policy.on_hit(m2set.policy_state, m2way)
                            l2_dirty[m2set.base + m2way] = True
                            l2_probe_hits_c += 1
                        else:
                            # Inclusion guarantees presence; refill
                            # defensively if not (rare repair path).
                            l2_probe_misses_c += 1
                            hierarchy.now = cycles
                            fill_l2(victim1, dirty=True)

                    # Hardware prefetches issued by this miss.
                    for target in prefetches:
                        if unc is not None:
                            # contains + PREFETCH access, inlined: after
                            # the residency check the access is always a
                            # fill (prefetch hits are dropped silently).
                            ucset = u_sets[target & u_mask]
                            if target in ucset.lookup:
                                continue
                            llc_accesses_c += 1
                            unc_misses_c += 1
                            memory_reads_c += 1
                            llc_data_writes_c += 1
                            llc_fill_segments_c += 1
                            prefetch_fills_c += 1
                            if memory is not None:
                                mem_read(target, cycles)
                            ubase = ucset.base
                            if ucset.valid_count == u_ways:
                                uindex = ucset.index
                                hand = u_hands[uindex]
                                try:
                                    uway = (
                                        u_ref.index(
                                            False,
                                            ubase + hand,
                                            ubase + u_ways,
                                        )
                                        - ubase
                                    )
                                except ValueError:
                                    try:
                                        uway = (
                                            u_ref.index(
                                                False, ubase, ubase + hand
                                            )
                                            - ubase
                                        )
                                    except ValueError:
                                        for w in range(
                                            ubase, ubase + u_ways
                                        ):
                                            u_ref[w] = False
                                        uway = hand
                                u_hands[uindex] = (
                                    uway + 1 if uway + 1 < u_ways else 0
                                )
                                uslot = ubase + uway
                                uvictim = u_tags[uslot]
                                uvictim_dirty = u_dirty[uslot]
                                del ucset.lookup[uvictim]
                                unc_evictions_c += 1
                                if uvictim_dirty:
                                    unc_writebacks_c += 1
                                    memory_writes_c += 1
                                    if memory is not None:
                                        mem_write(target, cycles)
                                # Back-invalidate the evicted line
                                # (single-line _process_invalidates,
                                # inlined).
                                icset = l1_sets[uvictim & l1_mask]
                                iway = icset.lookup.pop(uvictim, None)
                                if iway is None:
                                    present = idirty = False
                                else:
                                    present = True
                                    islot = icset.base + iway
                                    idirty = l1_dirty[islot]
                                    l1_valid[islot] = False
                                    l1_dirty[islot] = False
                                    icset.valid_count -= 1
                                    l1_stamps[islot] = 0
                                    log.append(islot)
                                icset = l2_sets[uvictim & l2_mask]
                                iway = icset.lookup.pop(uvictim, None)
                                if iway is not None:
                                    present = True
                                    islot = icset.base + iway
                                    idirty = idirty or l2_dirty[islot]
                                    l2_valid[islot] = False
                                    l2_dirty[islot] = False
                                    icset.valid_count -= 1
                                    l2_stamps[islot] = 0
                                if present:
                                    back_invalidations_c += 1
                                if idirty and not uvictim_dirty:
                                    memory_writes_c += 1
                                    if memory is not None:
                                        mem_write(uvictim, cycles)
                            else:
                                uslot = u_valid.index(
                                    False, ubase, ubase + u_ways
                                )
                                uway = uslot - ubase
                                ucset.valid_count += 1
                            u_tags[uslot] = target
                            u_valid[uslot] = True
                            u_dirty[uslot] = False
                            ucset.lookup[target] = uway
                            u_ref[uslot] = True
                            continue
                        if bv is not None:
                            # BaseVictimLLC.contains, inlined.
                            bcset = bv_sets[target & bv_mask]
                            if (
                                target in bcset.base_lookup
                                or target in bcset.vict_lookup
                            ):
                                continue
                            if bv_fast:
                                # PREFETCH to a non-resident line: the
                                # fused fast lane's miss + fill path,
                                # inlined (the residency check above
                                # rules out both hit paths).
                                size_p = memo_get(target)
                                if size_p is None:
                                    size_p = size_fn(target)
                                llc_accesses_c += 1
                                bv_misses_c += 1
                                memory_reads_c += 1
                                prefetch_fills_c += 1
                                if memory is not None:
                                    mem_read(target, cycles)
                                fill_size = size_p

                                # _fill_baseline, inlined.
                                base_lookup = bcset.base_lookup
                                base_valid = bcset.base_valid
                                base_tags = bcset.base_tags
                                base_dirty_col = bcset.base_dirty
                                base_size_col = bcset.base_size
                                vict_valid = bcset.vict_valid
                                state = bcset.policy_state
                                referenced = state.referenced
                                have_replaced = False
                                replaced_addr = 0
                                replaced_size = 0
                                was_dirty = False
                                if bcset.base_valid_count < len(base_valid):
                                    bway = base_valid.index(False)
                                    bcset.base_valid_count += 1
                                else:
                                    hand = state.hand
                                    bways = len(referenced)
                                    try:
                                        bway = referenced.index(False, hand)
                                    except ValueError:
                                        try:
                                            bway = referenced.index(
                                                False, 0, hand
                                            )
                                        except ValueError:
                                            for w in range(bways):
                                                referenced[w] = False
                                            bway = hand
                                    state.hand = (
                                        bway + 1 if bway + 1 < bways else 0
                                    )
                                    replaced_addr = base_tags[bway]
                                    was_dirty = base_dirty_col[bway]
                                    if was_dirty:
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(target, cycles)
                                    replaced_size = base_size_col[bway]
                                    have_replaced = True
                                    del base_lookup[replaced_addr]
                                base_tags[bway] = target
                                base_valid[bway] = True
                                base_dirty_col[bway] = False
                                base_size_col[bway] = fill_size
                                base_lookup[target] = bway
                                referenced[bway] = True
                                if (
                                    vict_valid[bway]
                                    and fill_size + bcset.vict_size[bway]
                                    > bv_spl
                                ):
                                    bv.stat_partner_evictions += 1
                                    del bcset.vict_lookup[
                                        bcset.vict_tags[bway]
                                    ]
                                    bv._victim_resident -= 1
                                    vict_valid[bway] = False
                                    if bcset.vict_dirty[bway]:
                                        bcset.vict_dirty[bway] = False
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(target, cycles)
                                    else:
                                        silent_evictions_c += 1
                                        bv_silent_c += 1

                                if have_replaced:
                                    # _insert_victim (ECM scan), inlined.
                                    room = bv_spl - replaced_size
                                    way_v = -1
                                    free_way = -1
                                    free_size = -1
                                    occ_size = -1
                                    w = 0
                                    for bvalid, bsize, vvalid in zip(
                                        base_valid,
                                        base_size_col,
                                        vict_valid,
                                    ):
                                        if not bvalid:
                                            bsize = 0
                                        if bsize <= room:
                                            if vvalid:
                                                if bsize > occ_size:
                                                    occ_size = bsize
                                                    way_v = w
                                            elif bsize > free_size:
                                                free_size = bsize
                                                free_way = w
                                        w += 1
                                    if free_way >= 0:
                                        way_v = free_way
                                    if way_v < 0:
                                        bv.stat_demotion_drops += 1
                                    else:
                                        bv_choices_c += 1
                                        if vict_valid[way_v]:
                                            bv_replacements_c += 1
                                            del bcset.vict_lookup[
                                                bcset.vict_tags[way_v]
                                            ]
                                            bv._victim_resident -= 1
                                            vict_valid[way_v] = False
                                            if bcset.vict_dirty[way_v]:
                                                bcset.vict_dirty[
                                                    way_v
                                                ] = False
                                                memory_writes_c += 1
                                                if memory is not None:
                                                    mem_write(
                                                        target, cycles
                                                    )
                                            else:
                                                silent_evictions_c += 1
                                                bv_silent_c += 1
                                        bcset.vict_tags[way_v] = (
                                            replaced_addr
                                        )
                                        vict_valid[way_v] = True
                                        bcset.vict_dirty[way_v] = False
                                        bcset.vict_size[way_v] = (
                                            replaced_size
                                        )
                                        bcset.clock += 1
                                        bcset.vict_stamp[way_v] = (
                                            bcset.clock
                                        )
                                        bcset.vict_lookup[
                                            replaced_addr
                                        ] = way_v
                                        bv._victim_resident += 1
                                        bv_demotions_c += 1
                                        llc_data_reads_c += 1
                                        llc_data_writes_c += 1
                                        llc_fill_segments_c += (
                                            replaced_size
                                        )

                                llc_data_writes_c += 1
                                llc_fill_segments_c += fill_size

                                if have_replaced:
                                    # Back-invalidate the replaced line
                                    # (single-line
                                    # _process_invalidates, inlined).
                                    icset = l1_sets[
                                        replaced_addr & l1_mask
                                    ]
                                    iway = icset.lookup.pop(
                                        replaced_addr, None
                                    )
                                    if iway is None:
                                        present = idirty = False
                                    else:
                                        present = True
                                        islot = icset.base + iway
                                        idirty = l1_dirty[islot]
                                        l1_valid[islot] = False
                                        l1_dirty[islot] = False
                                        icset.valid_count -= 1
                                        l1_stamps[islot] = 0
                                        log.append(islot)
                                    icset = l2_sets[
                                        replaced_addr & l2_mask
                                    ]
                                    iway = icset.lookup.pop(
                                        replaced_addr, None
                                    )
                                    if iway is not None:
                                        present = True
                                        islot = icset.base + iway
                                        idirty = idirty or l2_dirty[islot]
                                        l2_valid[islot] = False
                                        l2_dirty[islot] = False
                                        icset.valid_count -= 1
                                        l2_stamps[islot] = 0
                                    if present:
                                        back_invalidations_c += 1
                                    if idirty and not was_dirty:
                                        memory_writes_c += 1
                                        if memory is not None:
                                            mem_write(
                                                replaced_addr, cycles
                                            )
                                continue
                        elif llc_contains(target):
                            continue  # a prefetch hit is dropped silently
                        if uses_sizes:
                            size_p = memo_get(target)
                            if size_p is None:
                                size_p = size_fn(target)
                        else:
                            size_p = 1
                        pf = llc_access(target, _PREFETCH, size_p)
                        memory_reads_c += pf.memory_reads
                        memory_writes_c += pf.memory_writes
                        silent_evictions_c += pf.silent_evictions
                        llc_data_reads_c += pf.data_reads
                        llc_data_writes_c += pf.data_writes
                        llc_fill_segments_c += pf.fill_segments
                        llc_accesses_c += 1
                        if memory is not None:
                            if pf.memory_reads:
                                mem_read(target, cycles)
                            for _ in range(pf.memory_writes):
                                mem_write(target, cycles)
                        if pf.invalidates:
                            hierarchy.now = cycles
                            process_invalidates(pf)
                        if not pf.hit:
                            prefetch_fills_c += 1

                    cycles += stall
                    stall_cycles += stall
                if i == next_sample:
                    samples.append(victim_occupancy())
                    next_sample += sample_every
                i += 1

            lo = scalar_hi if miss else m
    finally:
        hierarchy._l1_log = prev_log

    # Flush the locally batched state, exactly like the fast loop — but
    # across every counter the miss path touches, not just the L1's.
    core.cycles = cycles
    core.instructions = instructions
    core.stall_cycles = stall_cycles
    stats = hierarchy.stats
    stats.accesses += length
    stats.l1_hits += l1_hits
    stats.l2_hits += l2_hits_c
    stats.llc_hits += llc_hits_c
    stats.llc_victim_hits += llc_victim_hits_c
    stats.llc_misses += llc_misses_c
    stats.back_invalidations += back_invalidations_c
    stats.compressed_hits += compressed_hits_c
    stats.memory_reads += memory_reads_c
    stats.memory_writes += memory_writes_c
    stats.silent_evictions += silent_evictions_c
    stats.llc_data_reads += llc_data_reads_c
    stats.llc_data_writes += llc_data_writes_c
    stats.llc_fill_segments += llc_fill_segments_c
    stats.llc_accesses += llc_accesses_c
    stats.writebacks_to_llc += writebacks_to_llc_c
    stats.prefetch_fills += prefetch_fills_c
    l1.stat_hits += l1_hits
    l1.stat_misses += length - l1_hits
    l1.stat_evictions += l1_evictions_c
    l1.stat_writebacks += l1_writebacks_c
    l2.stat_hits += l2_probe_hits_c
    l2.stat_misses += l2_probe_misses_c
    l2.stat_evictions += l2_evictions_c
    l2.stat_writebacks += l2_writebacks_c
    if unc is not None:
        unc.stat_hits += unc_hits_c
        unc.stat_misses += unc_misses_c
        unc.stat_evictions += unc_evictions_c
        unc.stat_writebacks += unc_writebacks_c
        llc.stat_writeback_misses += unc_wbmiss_c
    elif bv_fast:
        bv.stat_base_hits += bv_base_hits_c
        bv.stat_victim_hits += bv_victim_hits_c
        bv.stat_misses += bv_misses_c
        bv.stat_promotions += bv_promotions_c
        bv.stat_demotions += bv_demotions_c
        bv.stat_silent_evictions += bv_silent_c
        bv_vp.stat_choices += bv_choices_c
        bv_vp.stat_replacements += bv_replacements_c
    for value in samples:
        occupancy.observe(value)

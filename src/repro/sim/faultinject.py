"""Deterministic fault injection for the sweep engine.

Proving the fault-tolerance layer works requires *causing* the faults it
defends against, on demand and reproducibly, in both pool workers and
the serial path.  This module is that switchboard: a compact spec in
``$REPRO_FAULTS`` arms faults against specific sweep job indices, and
the sweep engine calls the two hooks (:func:`before_attempt`,
:func:`after_shard_write`) at the right points.

Spec grammar — comma-separated ``kind:job_index:times`` triples::

    REPRO_FAULTS="fail:2:1,hang:0:1,crash:3:1,corrupt:1:1"

* ``fail``    — raise :class:`InjectedFault` on attempts 1..times of the
  job (``times`` large => permanent failure; exercises retry exhaustion).
* ``hang``    — sleep :data:`HANG_SECONDS` on attempts 1..times
  (exercises the per-job timeout watchdog; without a timeout the sweep
  hangs, exactly like a real wedged job).
* ``crash``   — hard-kill the worker process (``os._exit``) before the
  job runs (exercises pool rebuild + shard salvage).
* ``corrupt`` — append a torn JSONL line to the worker's shard right
  after the job's result line (exercises tolerant loading and the
  corrupt-line accounting).
* ``torn-write`` — append a CRC-suffixed line whose checksum does not
  match its payload, simulating a write torn mid-line by a crash or a
  bit flipped at rest (exercises the v5 checksum detection path, which
  must catch it *before* JSON parsing is even attempted).
* ``lock-holder-dies`` — hard-kill the process (``os._exit``) right
  after it acquires a cache lock, while still holding it (exercises
  kernel ``flock`` auto-release plus stale owner-metadata detection in
  :mod:`repro.sim.locking`).
* ``worker-lost`` — make the dispatch coordinator lose remote worker
  ``index`` mid-lease: :func:`dispatch_worker_lost` reports the fault
  armed, and the coordinator severs the connection (and kills the
  subprocess, for locally spawned workers) as if the host vanished
  (exercises worker health tracking and seeded-backoff reassignment in
  :mod:`repro.dist.coordinator`).
* ``remote-torn-merge`` — append a CRC-mismatched v5 line to the staged
  shard pulled back from worker ``index``, right before the coordinator
  folds it into the result cache, simulating a transfer torn mid-line
  (exercises the checksummed fold-in: the line must be rejected on its
  CRC and the entry recovered from the coordinator's in-memory copy).
* ``net-partition`` — sever the coordinator's connection to worker
  ``index`` *without* killing the process: the coordinator abandons the
  lease as if the network dropped, while the worker lives on and may
  keep computing into its own cache (exercises reassignment without the
  kill, and warm-cache answers on a later lease).
* ``slow-worker`` — stall worker ``index`` past the heartbeat deadline
  by ``SIGSTOP``-ing its process: the connection stays open, the kernel
  buffers writes, but no event — and no ``pong`` — ever arrives
  (exercises proactive heartbeat-deadline detection of a hung or
  partitioned worker, as opposed to loss-on-transport-error).
* ``coordinator-crash`` — hard-exit the coordinator (``os._exit``)
  right after its ``index``-th fold-in, journal already written
  (exercises the write-ahead dispatch journal and
  ``repro dispatch --resume``: only un-folded cells may recompute).

``fail`` and ``hang`` count attempts within the executing process, which
is deterministic because retries happen inside one worker.  ``crash``,
``corrupt``, ``torn-write``, ``lock-holder-dies``, ``worker-lost``,
``remote-torn-merge``, ``net-partition``, ``slow-worker`` and
``coordinator-crash`` must fire a bounded number of times *across*
processes (a re-spawned worker must not crash forever, a re-run
coordinator must not re-lose the same worker or re-crash after the same
fold), so they are one-shot through stamp files under
``$REPRO_FAULTS_DIR``; when that directory is unset they stay disarmed
rather than risk an unbounded crash loop.

Everything is driven by environment variables so tests can arm faults
with ``monkeypatch.setenv`` and have pool workers inherit them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

#: Environment variable holding the fault spec (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

#: Directory for cross-process one-shot stamps (crash/corrupt faults).
FAULTS_DIR_ENV = "REPRO_FAULTS_DIR"

#: How long a "hang" fault sleeps; long enough that only the watchdog
#: (or a human) ends it.
HANG_SECONDS = 3600.0

#: Recognised fault kinds.
KINDS = (
    "fail",
    "hang",
    "crash",
    "corrupt",
    "torn-write",
    "lock-holder-dies",
    "worker-lost",
    "remote-torn-merge",
    "net-partition",
    "slow-worker",
    "coordinator-crash",
)

#: The torn line a ``corrupt`` fault appends (no closing brace, so the
#: tolerant loader must skip and count it).
TORN_LINE = '{"key": "torn-by-faultinject", "result": {'

#: The line a ``torn-write`` fault appends: structurally a valid v5
#: CRC-suffixed cache line, but the checksum does not match the payload
#: — the loader must reject it on the CRC alone.
TORN_V5_LINE = '{"key": "torn-by-faultinject", "result": {}}#00000000'

#: Exit code used when a ``lock-holder-dies`` fault kills the process.
LOCK_HOLDER_EXIT = 87

#: Exit code used when a ``coordinator-crash`` fault kills the dispatch
#: coordinator mid-flight (tests and CI assert on it).
COORDINATOR_CRASH_EXIT = 88


class InjectedFault(RuntimeError):
    """The transient error raised by an armed ``fail`` fault."""


@dataclass(frozen=True)
class Fault:
    """One armed fault: ``kind`` against sweep job ``index``, ``times`` shots."""

    kind: str
    index: int
    times: int


def parse_faults(spec: str) -> tuple[Fault, ...]:
    """Parse a ``kind:index:times`` comma list; raises on malformed specs."""
    faults: list[Fault] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) != 3 or pieces[0] not in KINDS:
            raise ValueError(
                f"malformed fault {part!r}; expected kind:job_index:times "
                f"with kind in {KINDS}"
            )
        try:
            index, times = int(pieces[1]), int(pieces[2])
        except ValueError:
            raise ValueError(
                f"malformed fault {part!r}; job_index and times must be integers"
            ) from None
        faults.append(Fault(pieces[0], index, times))
    return tuple(faults)


def active_faults() -> tuple[Fault, ...]:
    """Faults currently armed via ``$REPRO_FAULTS`` (empty when unset).

    Parsed on every call — the spec is tiny and tests flip the variable
    between sweeps with ``monkeypatch``.
    """
    spec = os.environ.get(FAULTS_ENV, "")
    return parse_faults(spec) if spec.strip() else ()


def _one_shot(fault: Fault) -> bool:
    """True exactly ``fault.times`` times across all processes.

    Uses ``O_CREAT|O_EXCL`` stamp files in ``$REPRO_FAULTS_DIR`` as the
    atomic cross-process counter; with no stamp directory configured the
    fault never fires (see module docstring).
    """
    stamp_dir = os.environ.get(FAULTS_DIR_ENV, "").strip()
    if not stamp_dir:
        return False
    directory = Path(stamp_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for shot in range(1, fault.times + 1):
        stamp = directory / f"{fault.kind}-{fault.index}-{shot}"
        try:
            fd = os.open(stamp, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


def before_attempt(index: int, attempt: int) -> None:
    """Hook: called by the sweep engine before each attempt of job ``index``.

    Fires any armed ``crash``, ``hang`` or ``fail`` fault targeting the
    job, in spec order.
    """
    for fault in active_faults():
        if fault.index != index:
            continue
        if fault.kind == "crash" and _one_shot(fault):
            # A real worker crash: no cleanup, no exception, no shard
            # line — the parent sees a broken pool.
            os._exit(86)
        if fault.kind == "hang" and attempt <= fault.times:
            time.sleep(HANG_SECONDS)
        if fault.kind == "fail" and attempt <= fault.times:
            raise InjectedFault(
                f"injected transient failure (job {index}, attempt {attempt})"
            )


def after_shard_write(index: int, shard_path: Path) -> None:
    """Hook: called after job ``index``'s result line reaches its shard.

    An armed ``corrupt`` fault appends a torn JSONL line, simulating a
    worker killed mid-write with the platform's page-cache flushing half
    a record.  An armed ``torn-write`` fault appends a CRC-suffixed line
    whose checksum is wrong, simulating a torn v5 write or at-rest bit
    rot that only the checksum can catch.
    """
    for fault in active_faults():
        if fault.index != index:
            continue
        if fault.kind == "corrupt" and _one_shot(fault):
            with shard_path.open("a") as handle:
                handle.write(TORN_LINE + "\n")
        if fault.kind == "torn-write" and _one_shot(fault):
            with shard_path.open("a") as handle:
                handle.write(TORN_V5_LINE + "\n")


def on_lock_acquired(lock_path: Path) -> None:
    """Hook: called by :mod:`repro.sim.locking` after every acquisition.

    An armed ``lock-holder-dies`` fault hard-kills the process while it
    still holds the lock — the kernel must release the ``flock`` and the
    next acquirer must detect the dead owner's metadata as stale.  The
    spec's job index is ignored (locks are not tied to jobs); firing is
    bounded by the cross-process one-shot stamps.
    """
    del lock_path  # the fault targets whichever lock is taken next
    for fault in active_faults():
        if fault.kind == "lock-holder-dies" and _one_shot(fault):
            os._exit(LOCK_HOLDER_EXIT)


def dispatch_worker_lost(worker_index: int) -> bool:
    """Hook: called by the dispatch coordinator around lease traffic.

    Returns True when an armed ``worker-lost`` fault targets worker
    ``worker_index`` (the fault spec's job-index slot holds the worker
    index); the coordinator then severs the connection — and hard-kills
    the subprocess for locally spawned workers — exactly as if the host
    dropped off the network.  One-shot across processes, like ``crash``.
    """
    for fault in active_faults():
        if (
            fault.kind == "worker-lost"
            and fault.index == worker_index
            and _one_shot(fault)
        ):
            return True
    return False


def after_remote_pull(worker_index: int, shard_path: Path) -> None:
    """Hook: called after worker ``worker_index``'s results reach a staged shard.

    An armed ``remote-torn-merge`` fault overwrites the checksum of the
    shard's last line (falling back to appending :data:`TORN_V5_LINE`
    when the shard is empty), simulating a pull torn mid-line: the fold
    must reject the line on its CRC alone and recover the entry from
    the coordinator's in-memory copy, leaving the final cache bytes
    untouched by the corruption.
    """
    for fault in active_faults():
        if (
            fault.kind == "remote-torn-merge"
            and fault.index == worker_index
            and _one_shot(fault)
        ):
            lines = shard_path.read_text().splitlines() if shard_path.exists() else []
            while lines and not lines[-1].strip():
                lines.pop()
            if lines:
                head, sep, _crc = lines[-1].rpartition("#")
                lines[-1] = f"{head}#00000000" if sep else TORN_V5_LINE
            else:
                lines = [TORN_V5_LINE]
            shard_path.write_text("\n".join(lines) + "\n")


def dispatch_net_partition(worker_index: int) -> bool:
    """Hook: called by the dispatch coordinator around lease traffic.

    Returns True when an armed ``net-partition`` fault targets worker
    ``worker_index``; the coordinator then abandons the connection —
    but, unlike ``worker-lost``, never kills the subprocess — as if the
    route to the host flapped.  The worker may finish the lease into
    its own cache anyway, warming later leases.  One-shot across
    processes, like ``worker-lost``.
    """
    for fault in active_faults():
        if (
            fault.kind == "net-partition"
            and fault.index == worker_index
            and _one_shot(fault)
        ):
            return True
    return False


def dispatch_slow_worker(worker_index: int) -> bool:
    """Hook: called by the dispatch coordinator before leasing to a worker.

    Returns True when an armed ``slow-worker`` fault targets worker
    ``worker_index``; the coordinator then ``SIGSTOP``s the locally
    spawned subprocess and carries on.  Detection is deliberately *not*
    part of the injection: the stalled worker's silence must trip the
    heartbeat deadline on its own, or the test fails.  One-shot across
    processes.
    """
    for fault in active_faults():
        if (
            fault.kind == "slow-worker"
            and fault.index == worker_index
            and _one_shot(fault)
        ):
            return True
    return False


def dispatch_after_fold(fold_number: int) -> None:
    """Hook: called by the dispatch coordinator after each fold-in.

    An armed ``coordinator-crash`` fault hard-kills the coordinator
    once ``fold_number`` reaches the spec's index slot (the N in "crash
    after N fold-ins") — after the fold and its journal record are
    durable, which is the worst surviving state ``--resume`` must
    reconstruct from.  One-shot across processes, so the resumed
    coordinator does not re-crash.
    """
    for fault in active_faults():
        if (
            fault.kind == "coordinator-crash"
            and fold_number >= fault.index
            and _one_shot(fault)
        ):
            os._exit(COORDINATOR_CRASH_EXIT)


def corrupt_file(path: Path, line: str = TORN_LINE) -> None:
    """Append a torn line to ``path`` directly (test helper)."""
    with path.open("a") as handle:
        handle.write(line + "\n")

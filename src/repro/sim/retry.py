"""Retry policies, per-job timeouts and structured failure records.

A multi-hour sweep must not die because one job hit a transient error or
wedged itself: the sweep engine wraps every job in a
:class:`RetryPolicy` — bounded re-attempts with exponential backoff and
*seeded* jitter — and an optional per-attempt watchdog
(:func:`deadline`) that turns a hung job into an ordinary
:class:`JobTimeoutError` the policy can retry.

Determinism rules this module obeys:

* Backoff delays are a pure function of ``(seed, job key, attempt)`` —
  no global RNG state, no wall-clock reads — so two runs of the same
  faulty sweep retry on the same schedule.
* Nothing here ever enters the result cache.  A job that eventually
  succeeds produces exactly the bytes a never-failing run would have
  produced; a job that exhausts its attempts is reported as a
  :class:`FailedCell` (exception type, attempts, elapsed wall time)
  in the sweep report, which is process-local by design.

Configuration mirrors the worker-count plumbing in
:mod:`repro.sim.parallel`: explicit arguments beat the ``$REPRO_RETRIES``
and ``$REPRO_JOB_TIMEOUT`` environment variables, which beat the
defaults (no retries, no timeout).
"""

from __future__ import annotations

import os
import random
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Environment variable: extra attempts per job after the first (int >= 0).
RETRIES_ENV = "REPRO_RETRIES"

#: Environment variable: per-attempt watchdog in seconds (<= 0 disables).
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"


class JobTimeoutError(Exception):
    """A job attempt exceeded its watchdog deadline."""


class SweepFailedError(RuntimeError):
    """A strict sweep had jobs that exhausted their retry budget.

    Carries the structured :class:`FailedCell` records so callers that
    catch it can still account for every cell of the sweep matrix.
    """

    def __init__(self, failures: list["FailedCell"]) -> None:
        self.failures = failures
        cells = ", ".join(f.key for f in failures[:3])
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(
            f"{len(failures)} sweep job(s) failed after retries: {cells}{more}"
        )


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"${name} must be an integer, got {raw!r}") from None


def _env_float(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"${name} must be a number, got {raw!r}") from None


def resolve_retries(retries: int | None = None, default: int = 0) -> int:
    """Retry budget: explicit value > ``$REPRO_RETRIES`` > ``default``.

    Negative values clamp to zero (the first attempt always runs).
    """
    if retries is None:
        retries = _env_int(RETRIES_ENV, default)
    return max(0, retries)


def resolve_job_timeout(
    timeout: float | None = None, default: float | None = None
) -> float | None:
    """Watchdog seconds: explicit value > ``$REPRO_JOB_TIMEOUT`` > default.

    ``None`` or any value <= 0 disables the watchdog.
    """
    if timeout is None:
        timeout = _env_float(JOB_TIMEOUT_ENV, default)
    if timeout is not None and timeout <= 0:
        return None
    return timeout


@dataclass(frozen=True)
class RetryPolicy:
    """How a sweep job is re-attempted after a failure.

    ``retries`` is the number of *extra* attempts after the first (0
    preserves fail-fast behaviour); ``timeout`` is the per-attempt
    watchdog in seconds (``None`` disables it).  Backoff before attempt
    ``n+1`` is ``min(cap, base * 2**(n-1))`` scaled by a jitter factor
    drawn from a :class:`random.Random` seeded with ``(seed, key, n)``,
    so the schedule is deterministic per job without synchronising
    retries across workers.
    """

    retries: int = 0
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    @classmethod
    def from_env(
        cls, retries: int | None = None, timeout: float | None = None
    ) -> "RetryPolicy":
        """Build a policy from explicit values with environment fallback."""
        return cls(
            retries=resolve_retries(retries),
            timeout=resolve_job_timeout(timeout),
        )

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to sleep before re-attempting ``key`` after ``attempt``."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
        rng = random.Random(f"{self.seed}|{key}|{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class FailedCell:
    """One sweep cell that exhausted its retry budget.

    ``error`` is the exception type name (exceptions themselves may not
    pickle across the process pool), ``attempts`` counts every attempt
    made (first try included), and ``elapsed`` is the wall-clock seconds
    the job burned across all attempts — diagnostic only, never cached.
    """

    key: str
    index: int
    error: str
    message: str
    attempts: int
    elapsed: float

    def to_dict(self) -> dict:
        """Serialisable form for reports and ``--json`` payloads."""
        return {
            "key": self.key,
            "index": self.index,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }


@dataclass
class JobOutcome:
    """What one job's execution (with retries) produced.

    Exactly one of ``result`` / ``failure`` is set.  ``retries`` counts
    re-attempts actually performed (0 for a first-try success), so the
    parent can aggregate a ``sweep/retries`` counter without trusting
    wall time.
    """

    index: int
    key: str
    result: dict | None = None
    failure: FailedCell | None = None
    retries: int = 0

    # Results recovered from a crashed worker's shard file are flagged so
    # reports can distinguish "recomputed" from "salvaged".
    from_shard: bool = field(default=False, compare=False)


@contextmanager
def deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`JobTimeoutError` if the body runs past ``seconds``.

    Implemented with ``SIGALRM`` (interval timer), which interrupts even
    a hung ``time.sleep`` or a tight pure-Python loop.  Degrades to a
    no-op when ``seconds`` is falsy, the platform has no ``SIGALRM``
    (Windows), or the caller is not the main thread (signals can only be
    installed there) — pool workers run jobs on their main thread, so
    the watchdog is always armed where it matters.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise JobTimeoutError(f"job attempt exceeded {seconds:g}s watchdog")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

"""Simulation drivers, presets, experiment runner and reporting."""

from repro.sim.config import (
    ARCH_BASE_VICTIM,
    ARCH_TWO_TAG,
    ARCH_TWO_TAG_MODIFIED,
    ARCH_UNCOMPRESSED,
    ARCH_VSC,
    BASE_VICTIM_2MB,
    BASELINE_2MB,
    BENCH,
    MachineConfig,
    PAPER,
    Preset,
    PRESETS,
    TEST,
    TWO_TAG_2MB,
    TWO_TAG_MODIFIED_2MB,
    UNCOMPRESSED_3MB,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.figures import ascii_series_plot, write_rows_csv, write_series_csv
from repro.sim.metrics import (
    bandwidth_ratio,
    count_losers,
    dram_read_ratio,
    dram_write_ratio,
    geomean,
    ipc_ratio,
    weighted_speedup,
)
from repro.sim.multi_core import MixRunResult, simulate_mix
from repro.sim.parallel import JOBS_ENV, SweepJob, resolve_jobs, run_sweep
from repro.sim.single_core import RunResult, simulate_trace

__all__ = [
    "ARCH_BASE_VICTIM",
    "ARCH_TWO_TAG",
    "ARCH_TWO_TAG_MODIFIED",
    "ARCH_UNCOMPRESSED",
    "ARCH_VSC",
    "ascii_series_plot",
    "bandwidth_ratio",
    "BASE_VICTIM_2MB",
    "BASELINE_2MB",
    "BENCH",
    "count_losers",
    "dram_read_ratio",
    "dram_write_ratio",
    "ExperimentRunner",
    "geomean",
    "ipc_ratio",
    "JOBS_ENV",
    "MachineConfig",
    "MixRunResult",
    "PAPER",
    "Preset",
    "PRESETS",
    "resolve_jobs",
    "RunResult",
    "run_sweep",
    "simulate_mix",
    "simulate_trace",
    "SweepJob",
    "TEST",
    "TWO_TAG_2MB",
    "TWO_TAG_MODIFIED_2MB",
    "UNCOMPRESSED_3MB",
    "weighted_speedup",
    "write_rows_csv",
    "write_series_csv",
]

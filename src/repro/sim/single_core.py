"""Single-threaded trace simulation driver.

Glues together one trace, its data model, a machine configuration, the
cache hierarchy, the DRAM model and the analytic core timing model, and
produces a serialisable :class:`RunResult` with every counter the paper's
figures need (IPC, DRAM reads/writes, LLC behaviour, energy inputs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.cache.hierarchy import L1, L2, LLC, CacheHierarchy
from repro.compression.stats import publish_codec_histograms
from repro.sim import batch
from repro.sim.engine import resolve_engine
from repro.memory.dram import DRAMModel
from repro.obs.registry import CounterRegistry
from repro.obs.tracing import TraceRecorder
from repro.sim.config import MachineConfig, Preset
from repro.timing.core_model import CoreParams, CoreTimingModel
from repro.timing.latency import LatencyParams
from repro.workloads.datagen import LineDataModel
from repro.workloads.trace import Trace

#: Victim-cache occupancy is sampled this many times over a run.
OCCUPANCY_SAMPLES = 64


@dataclass
class RunResult:
    """All measurements of one (trace, machine) run."""

    trace: str
    machine: str
    instructions: int = 0
    cycles: float = 0.0
    ipc: float = 0.0
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    llc_victim_hits: int = 0
    llc_misses: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    dram_activates: int = 0
    dram_avg_read_latency: float = 0.0
    compressed_hits: int = 0
    back_invalidations: int = 0
    silent_evictions: int = 0
    llc_accesses: int = 0
    llc_data_reads: int = 0
    llc_data_writes: int = 0
    llc_fill_segments: int = 0
    writebacks_to_llc: int = 0
    prefetch_fills: int = 0
    avg_compressed_fraction: float = 1.0
    extra: dict = field(default_factory=dict)
    #: Serialised observability metrics (see repro.obs): deterministic
    #: counters/histograms only, so cached runs merge across shards.
    obs: dict = field(default_factory=dict)

    @property
    def llc_hit_rate(self) -> float:
        """LLC hits over LLC lookups (demand accesses reaching the LLC)."""
        lookups = self.llc_hits + self.llc_misses
        if lookups == 0:
            return 0.0
        return self.llc_hits / lookups

    def to_dict(self) -> dict:
        """Plain-dict form for JSON caching."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild from the ``to_dict`` representation."""
        return cls(**data)


def core_params_for(trace: Trace, machine: MachineConfig) -> CoreParams:
    """Core timing parameters: trace MLP plus machine latency adders."""
    meta = trace.meta
    latencies = LatencyParams(
        llc_cycles=LatencyParams().llc_cycles + machine.extra_llc_latency
    )
    return CoreParams(
        mlp_l2=meta.mlp_l2,
        mlp_llc=meta.mlp_llc,
        mlp_memory=meta.mlp_memory,
        latencies=latencies,
    )


def simulate_trace(
    trace: Trace,
    data: LineDataModel,
    machine: MachineConfig,
    preset: Preset,
    tracer: TraceRecorder | None = None,
    registry: CounterRegistry | None = None,
    engine: str | None = None,
    chunk_size: int | None = None,
) -> RunResult:
    """Run one trace through one machine configuration.

    ``tracer`` (or ``$REPRO_TRACE``, see :mod:`repro.obs.tracing`)
    records a bounded window of per-access events without affecting any
    simulation state.  ``registry`` lets a caller keep the run's
    :class:`CounterRegistry` afterwards — the perf bench reads the
    ``phase/*`` timers, which never serialise into ``RunResult.obs``.

    ``engine`` picks the inner loop (see :mod:`repro.sim.engine`);
    ``None`` means ``$REPRO_ENGINE`` or the default.  An active tracer
    always forces the traced reference loop.  ``chunk_size`` is the
    batch engine's chunk length (tests exercise boundary cases with it).
    The engine choice never appears in the result: all engines are
    byte-identical, so a cached result is engine-independent.
    """
    llc = machine.build_llc(preset)
    dram = DRAMModel()
    hierarchy = CacheHierarchy(
        llc,
        size_fn=data.size_of,
        config=preset.hierarchy_config(machine.prefetch_degree),
        memory=dram,
        size_memo=getattr(data, "size_memo", None),
    )
    if hierarchy._uses_sizes:
        # Precompute every trace address's current size in one vectorised
        # pass (no-op without NumPy; values identical to size_of, so the
        # engines stay byte-identical with or without priming).
        prime = getattr(data, "prime_size_memo", None)
        if prime is not None:
            prime(trace.addrs)
    core = CoreTimingModel(core_params_for(trace, machine))

    env_tracer = tracer is None
    if env_tracer:
        tracer = TraceRecorder.from_env()
    if tracer is not None:
        tracer.record(event="run", trace=trace.meta.name, machine=machine.label)

    if registry is None:
        registry = CounterRegistry()

    kinds = trace.kinds
    addrs = trace.addrs
    deltas = trace.deltas
    on_write = data.on_write
    access = hierarchy.access
    advance = core.advance
    account = core.account_access

    # Sample victim-cache occupancy on a fixed deterministic grid; LLCs
    # without a Victim Cache (no victim_occupancy) are never sampled.
    length = len(addrs)
    victim_occupancy = getattr(llc, "victim_occupancy", None)
    sample_every = max(1, length // OCCUPANCY_SAMPLES)
    next_sample = sample_every - 1 if victim_occupancy is not None else -1
    occupancy = registry.histogram("llc/victim_occupancy")

    # Three equivalent inner loops (see repro.sim.engine).  The traced
    # loop is the reference: one hierarchy.access per demand access,
    # per-access counter updates, one tracer.record per access.  The
    # fast loop is the profile-guided scalar version of the same
    # computation: the L1 hit path (the overwhelming majority of
    # accesses) is inlined down to a dict lookup plus the LRU timestamp
    # touch, core timing runs on hoisted locals, and per-access counters
    # accumulate in local ints flushed into HierarchyStats and the
    # registry after the loop.  The batch loop (repro.sim.batch)
    # vector-resolves each chunk's leading run of L1 hits and hands the
    # miss tail to the scalar body.  tests/sim/test_engine_equivalence
    # .py and tests/sim/test_batch_equivalence.py prove all three
    # produce byte-identical RunResults and observations.
    l1 = hierarchy.l1
    if tracer is not None:
        engine_name = "traced"
    else:
        engine_name = resolve_engine(engine)
        if engine_name == "batch" and not (l1._lru_inline and batch.available()):
            engine_name = "fast"
        if engine_name == "fast" and not l1._lru_inline:
            engine_name = "traced"

    with registry.timer("phase/simulate"):
        if engine_name == "batch":
            batch.run_batch_loop(
                deltas,
                addrs,
                kinds,
                hierarchy,
                core,
                on_write,
                victim_occupancy,
                sample_every,
                next_sample,
                occupancy,
                chunk_size=chunk_size,
            )
        elif engine_name == "traced":
            for i in range(length):
                advance(deltas[i])
                hierarchy.now = core.cycles
                addr = addrs[i]
                is_write = kinds[i] == 1
                if is_write:
                    on_write(addr)
                outcome = access(addr, is_write)
                if outcome.level != L1:
                    account(outcome, outcome.dram_latency)
                if i == next_sample:
                    occupancy.observe(victim_occupancy())
                    next_sample += sample_every
                if tracer is not None:
                    tracer.record(i=i, addr=addr, write=is_write, level=outcome.level)
        else:
            l1_sets = l1._sets
            l1_mask = l1._set_mask
            l1_stamps = l1.stamps
            l1_clocks = l1.clocks
            l1_dirty = l1.dirty
            after_l1_miss = hierarchy.access_after_l1_miss
            base_cpi = core.base_cpi
            l2_stall = core.l2_stall
            llc_exposed = core.llc_exposed
            mlp_llc = core.mlp_llc
            mlp_memory = core.mlp_memory
            cycles = core.cycles
            instructions = core.instructions
            stall_cycles = core.stall_cycles
            l1_hits = 0
            samples: list[int] = []

            # zip iterates the packed arrays in C instead of one boxed
            # subscript per array per access.
            i = 0
            for delta, addr, kind in zip(deltas, addrs, kinds):
                instructions += delta
                cycles += delta * base_cpi
                is_write = kind == 1
                if is_write:
                    on_write(addr)
                cset = l1_sets[addr & l1_mask]
                way = cset.lookup.get(addr)
                if way is not None:
                    # Inlined l1.probe hit: LRU touch plus the dirty bit,
                    # on the cache's flat columns.
                    index = cset.index
                    clock = l1_clocks[index] + 1
                    l1_clocks[index] = clock
                    l1_stamps[cset.base + way] = clock
                    if is_write:
                        l1_dirty[cset.base + way] = True
                    l1_hits += 1
                else:
                    hierarchy.now = cycles
                    outcome = after_l1_miss(addr, is_write)
                    level = outcome.level
                    if level == L2:
                        stall = l2_stall
                    elif level == LLC:
                        stall = (
                            llc_exposed + outcome.extra_llc_cycles
                        ) / mlp_llc
                    else:
                        stall = (
                            llc_exposed
                            + outcome.extra_llc_cycles
                            + outcome.dram_latency
                        ) / mlp_memory
                    cycles += stall
                    stall_cycles += stall
                if i == next_sample:
                    samples.append(victim_occupancy())
                    next_sample += sample_every
                i += 1

            # Flush the locally batched state back into the models.
            core.cycles = cycles
            core.instructions = instructions
            core.stall_cycles = stall_cycles
            stats = hierarchy.stats
            stats.accesses += length
            stats.l1_hits += l1_hits
            l1.stat_hits += l1_hits
            l1.stat_misses += length - l1_hits
            for value in samples:
                occupancy.observe(value)

    with registry.timer("phase/publish"):
        hierarchy.publish_observations(registry)
        palette = getattr(data, "palette", None)
        if palette:
            publish_codec_histograms(registry, [entry.data for entry in palette])

    if env_tracer and tracer is not None:
        tracer.flush()

    stats = hierarchy.stats
    result = RunResult(
        trace=trace.meta.name,
        machine=machine.label,
        instructions=core.instructions,
        cycles=core.cycles,
        ipc=core.ipc,
        accesses=stats.accesses,
        l1_hits=stats.l1_hits,
        l2_hits=stats.l2_hits,
        llc_hits=stats.llc_hits,
        llc_victim_hits=stats.llc_victim_hits,
        llc_misses=stats.llc_misses,
        memory_reads=stats.memory_reads,
        memory_writes=stats.memory_writes,
        dram_activates=dram.stat_activates,
        dram_avg_read_latency=dram.average_read_latency,
        compressed_hits=stats.compressed_hits,
        back_invalidations=stats.back_invalidations,
        silent_evictions=stats.silent_evictions,
        llc_accesses=stats.llc_accesses,
        llc_data_reads=stats.llc_data_reads,
        llc_data_writes=stats.llc_data_writes,
        llc_fill_segments=stats.llc_fill_segments,
        writebacks_to_llc=stats.writebacks_to_llc,
        prefetch_fills=stats.prefetch_fills,
        avg_compressed_fraction=data.average_size_fraction(),
        obs=registry.as_dict(),
    )
    return result

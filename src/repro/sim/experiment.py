"""Experiment runner with persistent result caching.

Every figure in the paper is a sweep of (machine configuration x trace
set); many machines recur across figures (the 2MB baseline appears in all
of them).  The runner memoises each (preset, machine, trace) run both in
memory and on disk (JSON-lines under ``.repro_cache/``), so the bench
suite shares work across files and across invocations.

Results are invalidated by bumping :data:`CACHE_VERSION` whenever the
simulator's behaviour changes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.sim.config import MachineConfig, Preset
from repro.sim.multi_core import MixRunResult, simulate_mix
from repro.sim.single_core import RunResult, simulate_trace
from repro.workloads.mixes import MixSpec
from repro.workloads.suite import SUITE_VERSION, TraceSuite

#: Bump to invalidate previously cached results when simulator behaviour
#: changes; the workload suite carries its own version
#: (:data:`repro.workloads.suite.SUITE_VERSION`) folded into every key.
CACHE_VERSION = 3

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache location: $REPRO_CACHE_DIR or .repro_cache under the CWD."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.cwd() / ".repro_cache"


class ExperimentRunner:
    """Caches single-trace and mix runs for one preset."""

    def __init__(
        self,
        preset: Preset,
        cache_dir: Path | None = None,
        use_disk_cache: bool = True,
    ) -> None:
        self.preset = preset
        self.suite = TraceSuite(preset.reference_llc_lines, preset.trace_length)
        self.use_disk_cache = use_disk_cache
        self._memory: dict[str, dict] = {}
        self._cache_path: Path | None = None
        if use_disk_cache:
            directory = cache_dir or default_cache_dir()
            directory.mkdir(parents=True, exist_ok=True)
            self._cache_path = directory / f"results-v{CACHE_VERSION}-{preset.name}.jsonl"
            self._load_disk_cache()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _load_disk_cache(self) -> None:
        if self._cache_path is None or not self._cache_path.exists():
            return
        with self._cache_path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from an interrupted run
                self._memory[entry["key"]] = entry["result"]

    def _store(self, key: str, result: dict) -> None:
        self._memory[key] = result
        if self._cache_path is not None:
            with self._cache_path.open("a") as handle:
                handle.write(json.dumps({"key": key, "result": result}) + "\n")

    @staticmethod
    def _single_key(machine: MachineConfig, trace_name: str, length: int) -> str:
        return f"single|s{SUITE_VERSION}|{machine.label}|{trace_name}|{length}"

    @staticmethod
    def _mix_key(machine: MachineConfig, mix: MixSpec, length: int) -> str:
        traces = ",".join(mix.trace_names)
        return f"mix|s{SUITE_VERSION}|{machine.label}|{mix.name}:{traces}|{length}"

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def run_single(self, machine: MachineConfig, trace_name: str) -> RunResult:
        """One (machine, trace) run, cached."""
        key = self._single_key(machine, trace_name, self.preset.trace_length)
        cached = self._memory.get(key)
        if cached is not None:
            return RunResult.from_dict(cached)
        trace = self.suite.trace(trace_name)
        data = self.suite.data_model(trace_name)
        result = simulate_trace(trace, data, machine, self.preset)
        self._store(key, result.to_dict())
        return result

    def run_many(
        self, machine: MachineConfig, trace_names: Iterable[str]
    ) -> list[RunResult]:
        """Run a machine across a list of traces."""
        return [self.run_single(machine, name) for name in trace_names]

    def run_mix(self, machine: MachineConfig, mix: MixSpec) -> MixRunResult:
        """One multi-program mix run, cached."""
        key = self._mix_key(machine, mix, self.preset.trace_length)
        cached = self._memory.get(key)
        if cached is not None:
            return MixRunResult.from_dict(cached)
        result = simulate_mix(mix, machine, self.preset, self.suite)
        self._store(key, result.to_dict())
        return result

    def run_pair(
        self,
        baseline: MachineConfig,
        candidate: MachineConfig,
        trace_names: Sequence[str],
    ) -> list[tuple[RunResult, RunResult]]:
        """(baseline, candidate) runs per trace, for ratio metrics."""
        return [
            (self.run_single(baseline, name), self.run_single(candidate, name))
            for name in trace_names
        ]

"""Experiment runner with persistent result caching and parallel sweeps.

Every figure in the paper is a sweep of (machine configuration x trace
set); many machines recur across figures (the 2MB baseline appears in all
of them).  The runner memoises each (preset, machine, trace) run both in
memory and on disk (JSON-lines under ``.repro_cache/``), so the bench
suite shares work across files and across invocations.

Sweeps fan out across worker processes when ``jobs > 1`` (see
:mod:`repro.sim.parallel`): :meth:`ExperimentRunner.prewarm` collects the
uncached jobs of a sweep, shards them over a process pool, and merges the
per-worker result shards back into the main cache file.  ``jobs=1``
preserves the strictly serial path, and both paths produce bit-identical
results and cache files (enforced by ``tests/sim/test_parallel.py``).

Results are invalidated by bumping :data:`CACHE_VERSION` whenever the
simulator's behaviour changes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.sim.config import MachineConfig, Preset
from repro.sim.multi_core import MixRunResult, simulate_mix
from repro.sim.parallel import (
    MIX,
    SINGLE,
    SweepJob,
    resolve_jobs,
    run_sweep,
    simulate_job,
)
from repro.sim.resultcache import encode_entry, load_cache_entries
from repro.sim.single_core import RunResult, simulate_trace
from repro.workloads.mixes import MixSpec
from repro.workloads.suite import SUITE_VERSION, TraceSuite

#: Bump to invalidate previously cached results when simulator behaviour
#: changes; the workload suite carries its own version
#: (:data:`repro.workloads.suite.SUITE_VERSION`) folded into every key.
CACHE_VERSION = 4

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache location: $REPRO_CACHE_DIR or .repro_cache under the CWD."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.cwd() / ".repro_cache"


class ExperimentRunner:
    """Caches single-trace and mix runs for one preset.

    ``jobs`` controls sweep parallelism: ``None`` falls back to
    ``$REPRO_JOBS`` (default 1 = serial), ``0`` means one worker per CPU,
    ``N > 1`` uses N worker processes.  ``progress`` (if given) is called
    as ``progress(done, total, key)`` while a parallel sweep drains.

    ``cache_hits`` / ``cache_misses`` count, per requested run, whether
    it was served from the (memory or disk) cache or had to be simulated.
    """

    def __init__(
        self,
        preset: Preset,
        cache_dir: Path | None = None,
        use_disk_cache: bool = True,
        jobs: int | None = None,
        progress=None,
    ) -> None:
        self.preset = preset
        self.suite = TraceSuite(preset.reference_llc_lines, preset.trace_length)
        self.use_disk_cache = use_disk_cache
        self.jobs = resolve_jobs(jobs)
        self.progress = progress
        self.cache_hits = 0
        self.cache_misses = 0
        self._memory: dict[str, dict] = {}
        self._cache_path: Path | None = None
        if use_disk_cache:
            directory = cache_dir or default_cache_dir()
            directory.mkdir(parents=True, exist_ok=True)
            self._cache_path = directory / f"results-v{CACHE_VERSION}-{preset.name}.jsonl"
            self._load_disk_cache()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _load_disk_cache(self) -> None:
        if self._cache_path is None:
            return
        # Tolerant load: lines torn by an interrupted worker are skipped
        # (with a CorruptCacheLineWarning) instead of poisoning the cache.
        self._memory.update(load_cache_entries(self._cache_path))

    def _store(self, key: str, result: dict) -> None:
        self._memory[key] = result
        if self._cache_path is not None:
            with self._cache_path.open("a") as handle:
                handle.write(encode_entry(key, result) + "\n")

    @staticmethod
    def _single_key(machine: MachineConfig, trace_name: str, length: int) -> str:
        return f"single|s{SUITE_VERSION}|{machine.label}|{trace_name}|{length}"

    @staticmethod
    def _mix_key(machine: MachineConfig, mix: MixSpec, length: int) -> str:
        traces = ",".join(mix.trace_names)
        return f"mix|s{SUITE_VERSION}|{machine.label}|{mix.name}:{traces}|{length}"

    # ------------------------------------------------------------------
    # Sweep fan-out
    # ------------------------------------------------------------------

    def prewarm(
        self,
        pairs: Iterable[tuple[MachineConfig, str]] = (),
        mixes: Iterable[tuple[MachineConfig, MixSpec]] = (),
    ) -> int:
        """Ensure every requested run is cached; returns runs simulated.

        Cached (or duplicate) requests count as cache hits; the unique
        uncached remainder is simulated — across ``self.jobs`` worker
        processes when more than one job is pending, serially otherwise.
        Pending jobs enter the cache (memory and disk) in request order
        either way, so serial and parallel sweeps produce byte-identical
        cache files.
        """
        length = self.preset.trace_length
        pending: list[SweepJob] = []
        seen: set[str] = set()

        def consider(key: str, job: SweepJob) -> None:
            if key in self._memory or key in seen:
                self.cache_hits += 1
                return
            seen.add(key)
            pending.append(job)

        for machine, trace_name in pairs:
            key = self._single_key(machine, trace_name, length)
            consider(
                key,
                SweepJob(key=key, kind=SINGLE, machine=machine, trace_name=trace_name),
            )
        for machine, mix in mixes:
            key = self._mix_key(machine, mix, length)
            consider(key, SweepJob(key=key, kind=MIX, machine=machine, mix=mix))

        if not pending:
            return 0
        self.cache_misses += len(pending)
        if self.jobs > 1 and len(pending) > 1:
            results = run_sweep(
                self.preset,
                pending,
                jobs=self.jobs,
                cache_path=self._cache_path,
                progress=self.progress,
            )
            for job, result in zip(pending, results):
                self._memory[job.key] = result
        else:
            for job in pending:
                self._store(job.key, simulate_job(job, self.preset, self.suite))
        return len(pending)

    def _single_result(self, machine: MachineConfig, trace_name: str) -> RunResult:
        """Fetch a prewarmed single run from memory (no accounting)."""
        key = self._single_key(machine, trace_name, self.preset.trace_length)
        return RunResult.from_dict(self._memory[key])

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def run_single(self, machine: MachineConfig, trace_name: str) -> RunResult:
        """One (machine, trace) run, cached."""
        key = self._single_key(machine, trace_name, self.preset.trace_length)
        cached = self._memory.get(key)
        if cached is not None:
            self.cache_hits += 1
            return RunResult.from_dict(cached)
        self.cache_misses += 1
        trace = self.suite.trace(trace_name)
        data = self.suite.data_model(trace_name)
        result = simulate_trace(trace, data, machine, self.preset)
        self._store(key, result.to_dict())
        return result

    def run_many(
        self, machine: MachineConfig, trace_names: Iterable[str]
    ) -> list[RunResult]:
        """Run a machine across a list of traces (parallel when jobs > 1)."""
        names = list(trace_names)
        self.prewarm((machine, name) for name in names)
        return [self._single_result(machine, name) for name in names]

    def run_mix(self, machine: MachineConfig, mix: MixSpec) -> MixRunResult:
        """One multi-program mix run, cached."""
        key = self._mix_key(machine, mix, self.preset.trace_length)
        cached = self._memory.get(key)
        if cached is not None:
            self.cache_hits += 1
            return MixRunResult.from_dict(cached)
        self.cache_misses += 1
        result = simulate_mix(mix, machine, self.preset, self.suite)
        self._store(key, result.to_dict())
        return result

    def run_mixes(
        self, machine: MachineConfig, mixes: Sequence[MixSpec]
    ) -> list[MixRunResult]:
        """Run a machine across mixes (parallel when jobs > 1)."""
        self.prewarm(mixes=((machine, mix) for mix in mixes))
        length = self.preset.trace_length
        return [
            MixRunResult.from_dict(self._memory[self._mix_key(machine, mix, length)])
            for mix in mixes
        ]

    def run_pair(
        self,
        baseline: MachineConfig,
        candidate: MachineConfig,
        trace_names: Sequence[str],
    ) -> list[tuple[RunResult, RunResult]]:
        """(baseline, candidate) runs per trace, for ratio metrics."""
        names = list(trace_names)
        self.prewarm(
            [(baseline, name) for name in names]
            + [(candidate, name) for name in names]
        )
        return [
            (self._single_result(baseline, name), self._single_result(candidate, name))
            for name in names
        ]

"""Experiment runner with persistent result caching and parallel sweeps.

Every figure in the paper is a sweep of (machine configuration x trace
set); many machines recur across figures (the 2MB baseline appears in all
of them).  The runner memoises each (preset, machine, trace) run both in
memory and on disk (JSON-lines under ``.repro_cache/``), so the bench
suite shares work across files and across invocations.

Sweeps fan out across worker processes when ``jobs > 1`` (see
:mod:`repro.sim.parallel`): :meth:`ExperimentRunner.prewarm` collects the
uncached jobs of a sweep, shards them over a process pool, and merges the
per-worker result shards back into the main cache file.  ``jobs=1``
preserves the strictly serial path, and both paths produce bit-identical
results and cache files (enforced by ``tests/sim/test_parallel.py``).

Sweeps are *fault tolerant*: per-job retries/timeouts come from a
:class:`~repro.sim.retry.RetryPolicy` (``retries=``/``job_timeout=``
arguments, ``$REPRO_RETRIES``/``$REPRO_JOB_TIMEOUT`` environment
fallbacks), crashed workers are recovered by the sweep engine, and jobs
that exhaust their retries become :class:`~repro.sim.retry.FailedCell`
records — raised as one :class:`~repro.sim.retry.SweepFailedError` in
``strict`` mode (the default, preserving library fail-fast semantics)
or accumulated on :attr:`ExperimentRunner.failed_cells` otherwise.
Sweep-level health counters (``sweep/retries``, ``sweep/failures``,
``sweep/recovered_workers``…) are published to
:attr:`ExperimentRunner.registry`; they are process-local and never
enter the result cache.

Results are invalidated by bumping
:data:`~repro.sim.resultcache.CACHE_VERSION` whenever the simulator's
behaviour (or the on-disk format) changes.  The v4 -> v5 bump was
format-only, so a ``results-v4-*.jsonl`` cache left by an older build
is read transparently (and ``repro cache migrate`` upgrades it).

The persistence layer is multi-process safe: every disk write happens
under the cache's advisory lock (:mod:`repro.sim.locking`), sweep
merges fold into — never clobber — whatever concurrent writers already
persisted, and lock/integrity health is published as ``cache/*``
counters alongside the ``sweep/*`` ones.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.registry import CounterRegistry
from repro.sim import locking
from repro.sim.config import MachineConfig, Preset
from repro.sim.multi_core import MixRunResult, simulate_mix
from repro.sim.parallel import (
    MIX,
    SINGLE,
    SweepJob,
    SweepOutcome,
    execute_job,
    resolve_jobs,
    run_sweep,
)
from repro.sim.resultcache import (
    CACHE_VERSION,
    LEGACY_CACHE_VERSION,
    append_cache_entries,
    cache_file_name,
    corrupt_line_count,
    crc_failure_count,
    iter_cache_entries,
    load_cache_entries,
    merge_cache_entries,
)
from repro.sim.retry import FailedCell, RetryPolicy, SweepFailedError
from repro.sim.single_core import RunResult, simulate_trace
from repro.workloads.mixes import MixSpec
from repro.workloads.suite import SUITE_VERSION, TraceSuite

__all__ = ["CACHE_VERSION", "ExperimentRunner", "default_cache_dir"]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache location: $REPRO_CACHE_DIR or .repro_cache under the CWD."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.cwd() / ".repro_cache"


def _owner_is_alive(shard_dir: Path) -> bool:
    """Whether the process that owns ``<stem>.shards-<pid>`` still runs.

    Shard directories encode their sweep's parent pid; one from a live
    process (including ours) belongs to an in-flight sweep and must not
    be salvaged.  An unparseable suffix is treated as dead — better to
    salvage a stray directory than to leak results forever.
    """
    suffix = shard_dir.name.rsplit("-", 1)[-1]
    try:
        pid = int(suffix)
    except ValueError:
        return False
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


class ExperimentRunner:
    """Caches single-trace and mix runs for one preset.

    ``jobs`` controls sweep parallelism: ``None`` falls back to
    ``$REPRO_JOBS`` (default 1 = serial), ``0`` means one worker per CPU,
    ``N > 1`` uses N worker processes.  ``progress`` (if given) is called
    as ``progress(done, total, key)`` while a parallel sweep drains.

    ``cache_hits`` / ``cache_misses`` count, per requested run, whether
    it was served from the (memory or disk) cache or had to be simulated.

    ``retries`` / ``job_timeout`` configure the per-job
    :class:`~repro.sim.retry.RetryPolicy` (``None`` defers to
    ``$REPRO_RETRIES`` / ``$REPRO_JOB_TIMEOUT``; defaults: no retries,
    no timeout).  With ``strict=True`` (default) a sweep whose jobs
    exhaust their retries raises :class:`~repro.sim.retry
    .SweepFailedError` after caching every successful cell; with
    ``strict=False`` failures accumulate on ``failed_cells`` and the
    sweep completes — the CLI's graceful-degradation mode.

    ``lock_timeout`` bounds how long any cache write waits for the
    advisory cache lock (``None`` defers to ``$REPRO_LOCK_TIMEOUT``;
    exhaustion raises :class:`~repro.sim.locking.LockTimeoutError`).
    """

    def __init__(
        self,
        preset: Preset,
        cache_dir: Path | None = None,
        use_disk_cache: bool = True,
        jobs: int | None = None,
        progress=None,
        retries: int | None = None,
        job_timeout: float | None = None,
        strict: bool = True,
        lock_timeout: float | None = None,
    ) -> None:
        self.preset = preset
        self.suite = TraceSuite(preset.reference_llc_lines, preset.trace_length)
        self.use_disk_cache = use_disk_cache
        self.jobs = resolve_jobs(jobs)
        self.progress = progress
        self.fault_policy = RetryPolicy.from_env(retries, job_timeout)
        self.strict = strict
        self.lock_timeout = lock_timeout
        self.cache_hits = 0
        self.cache_misses = 0
        #: Jobs that exhausted their retry budget (strict=False mode).
        self.failed_cells: list[FailedCell] = []
        #: Process-local sweep health counters (``sweep/*``, ``cache/*``);
        #: never cached.
        self.registry = CounterRegistry()
        #: Corrupt JSONL lines skipped while loading this runner's cache.
        self.corrupt_lines_skipped = 0
        self._memory: dict[str, dict] = {}
        self._cache_path: Path | None = None
        self._lock_waits_seen = locking.lock_wait_total()
        self._lock_timeouts_seen = locking.lock_timeout_total()
        if use_disk_cache:
            directory = cache_dir or default_cache_dir()
            directory.mkdir(parents=True, exist_ok=True)
            self._cache_path = directory / cache_file_name(preset.name)
            self._load_disk_cache()

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------

    def _load_disk_cache(self) -> None:
        if self._cache_path is None:
            return
        # Tolerant load: lines torn by an interrupted worker are skipped
        # (with a CorruptCacheLineWarning) instead of poisoning the cache.
        before = corrupt_line_count(self._cache_path)
        before_crc = crc_failure_count(self._cache_path)
        self._memory.update(load_cache_entries(self._cache_path))
        skipped = corrupt_line_count(self._cache_path) - before
        crc_failed = crc_failure_count(self._cache_path) - before_crc
        if skipped:
            self.corrupt_lines_skipped += skipped
            self.registry.inc("sweep/corrupt_lines", skipped)
        if crc_failed:
            self.registry.inc("cache/crc_failures", crc_failed)
        self._load_legacy_cache()

    def _load_legacy_cache(self) -> None:
        """Fold in a v4-format cache file left by an older build.

        The v4 -> v5 bump changed only the line format, so v4 results
        remain valid: entries not shadowed by the v5 file are read
        straight into memory (``cache/migrated_lines`` counts them) and
        keep working without any operator action.  ``repro cache
        migrate`` performs the durable upgrade.
        """
        assert self._cache_path is not None
        legacy = self._cache_path.parent / cache_file_name(
            self.preset.name, LEGACY_CACHE_VERSION
        )
        if not legacy.exists():
            return
        migrated = 0
        for key, result in iter_cache_entries(legacy):
            if key not in self._memory:
                self._memory[key] = result
                migrated += 1
        if migrated:
            self.registry.inc("cache/migrated_lines", migrated)

    def _sync_lock_stats(self) -> None:
        """Fold new lock contention events into the ``cache/*`` counters."""
        waits = locking.lock_wait_total()
        timeouts = locking.lock_timeout_total()
        if waits > self._lock_waits_seen:
            self.registry.inc("cache/lock_waits", waits - self._lock_waits_seen)
            self._lock_waits_seen = waits
        if timeouts > self._lock_timeouts_seen:
            self.registry.inc(
                "cache/lock_timeouts", timeouts - self._lock_timeouts_seen
            )
            self._lock_timeouts_seen = timeouts

    def resume_orphan_shards(self) -> list[str]:
        """Salvage shard files a killed sweep left behind; returns their keys.

        A parent SIGKILLed mid-sweep never reaches the shard merge, so
        completed cells survive only in ``<cache>.shards-<pid>/`` files.
        This folds every entry from shard directories whose owning
        process is dead into the cache (memory and disk), deletes the
        directories, and reports the recovered keys — the
        ``repro sweep --resume`` path.  Entries already cached are not
        duplicated.
        """
        if self._cache_path is None:
            return []
        recovered: dict[str, dict] = {}
        orphans: list[Path] = []
        pattern = f"{self._cache_path.stem}.shards-*"
        for shard_dir in sorted(self._cache_path.parent.glob(pattern)):
            if _owner_is_alive(shard_dir):
                continue  # an in-flight sweep owns it; not ours to touch
            orphans.append(shard_dir)
            for shard in sorted(shard_dir.glob("shard-*.jsonl")):
                for key, result in iter_cache_entries(shard):
                    if key not in self._memory and key not in recovered:
                        recovered[key] = result
        if recovered:
            # Fold-in merge (not append): if a concurrent process resumed
            # the same orphans first, its entries win and nothing is
            # duplicated.
            merge_cache_entries(
                self._cache_path,
                recovered.items(),
                lock_timeout=self.lock_timeout,
            )
            self._memory.update(recovered)
            self.registry.inc("sweep/resumed_cells", len(recovered))
            self._sync_lock_stats()
        for shard_dir in orphans:
            for shard in shard_dir.glob("shard-*.jsonl"):
                try:
                    shard.unlink()
                except OSError:
                    pass
            try:
                shard_dir.rmdir()
            except OSError:
                pass
        return sorted(recovered)

    def _store(self, key: str, result: dict) -> None:
        self._memory[key] = result
        if self._cache_path is not None:
            # Locked single-line append: serialises against concurrent
            # appenders and sweep merges sharing this cache directory.
            append_cache_entries(
                self._cache_path, [(key, result)], lock_timeout=self.lock_timeout
            )
            self._sync_lock_stats()

    @staticmethod
    def _single_key(machine: MachineConfig, trace_name: str, length: int) -> str:
        return f"single|s{SUITE_VERSION}|{machine.label}|{trace_name}|{length}"

    @staticmethod
    def _mix_key(machine: MachineConfig, mix: MixSpec, length: int) -> str:
        traces = ",".join(mix.trace_names)
        return f"mix|s{SUITE_VERSION}|{machine.label}|{mix.name}:{traces}|{length}"

    # ------------------------------------------------------------------
    # Sweep fan-out
    # ------------------------------------------------------------------

    def prewarm(
        self,
        pairs: Iterable[tuple[MachineConfig, str]] = (),
        mixes: Iterable[tuple[MachineConfig, MixSpec]] = (),
    ) -> int:
        """Ensure every requested run is cached; returns runs simulated.

        Cached (or duplicate) requests count as cache hits; the unique
        uncached remainder is simulated — across ``self.jobs`` worker
        processes when more than one job is pending, serially otherwise.
        Pending jobs enter the cache (memory and disk) in request order
        either way, so serial and parallel sweeps produce byte-identical
        cache files.

        Jobs that exhaust their retry budget are excluded from the
        returned count; in strict mode they raise
        :class:`~repro.sim.retry.SweepFailedError` (after every
        successful cell is cached), otherwise they land on
        ``failed_cells`` and the corresponding runs stay uncached.
        """
        length = self.preset.trace_length
        pending: list[SweepJob] = []
        seen: set[str] = set()

        def consider(key: str, job: SweepJob) -> None:
            """Queue the cell unless memory, disk or this batch has it."""
            if key in self._memory or key in seen:
                self.cache_hits += 1
                return
            seen.add(key)
            pending.append(job)

        for machine, trace_name in pairs:
            key = self._single_key(machine, trace_name, length)
            consider(
                key,
                SweepJob(key=key, kind=SINGLE, machine=machine, trace_name=trace_name),
            )
        for machine, mix in mixes:
            key = self._mix_key(machine, mix, length)
            consider(key, SweepJob(key=key, kind=MIX, machine=machine, mix=mix))

        if not pending:
            return 0
        self.cache_misses += len(pending)
        try:
            if self.jobs > 1 and len(pending) > 1:
                outcome = run_sweep(
                    self.preset,
                    pending,
                    jobs=self.jobs,
                    cache_path=self._cache_path,
                    progress=self.progress,
                    policy=self.fault_policy,
                    lock_timeout=self.lock_timeout,
                )
                for job, result in zip(pending, outcome.results):
                    if result is not None:
                        self._memory[job.key] = result
            else:
                # Serial path: same execution primitive (retries, watchdog,
                # fault hooks) as the workers, one job at a time.
                outcome = SweepOutcome(results=[None] * len(pending))
                for index, job in enumerate(pending):
                    job_outcome = execute_job(
                        index, job, self.preset, self.suite, self.fault_policy
                    )
                    outcome.retries += job_outcome.retries
                    if job_outcome.failure is not None:
                        outcome.failures.append(job_outcome.failure)
                    else:
                        outcome.results[index] = job_outcome.result
                        self._store(job.key, job_outcome.result)
        finally:
            # Even a lock timeout or sweep abort leaves the contention
            # counters truthful for the health report.
            self._sync_lock_stats()
        self._note_outcome(outcome)
        if outcome.failures and self.strict:
            raise SweepFailedError(list(outcome.failures))
        return len(pending) - len(outcome.failures)

    def _note_outcome(self, outcome: SweepOutcome) -> None:
        """Fold one sweep's health counters into the runner's registry."""
        self.failed_cells.extend(outcome.failures)
        for name, amount in (
            ("sweep/retries", outcome.retries),
            ("sweep/failures", len(outcome.failures)),
            ("sweep/recovered_workers", outcome.recovered_workers),
            ("sweep/shard_recovered", outcome.shard_recovered),
            ("sweep/corrupt_lines", outcome.corrupt_lines),
            ("cache/crc_failures", outcome.crc_failures),
        ):
            if amount:
                self.registry.inc(name, amount)
        if outcome.corrupt_lines:
            self.corrupt_lines_skipped += outcome.corrupt_lines

    @property
    def cache_path(self) -> Path | None:
        """The on-disk cache file this runner reads and writes (if any)."""
        return self._cache_path

    def job_key(self, machine: MachineConfig, trace_name: str) -> str:
        """Public cache key for one (machine, trace) run at this preset.

        The key the experiment service dedupes on: identical keys mean
        identical simulations, so a submission matching a cached or
        in-flight key never reaches a worker.
        """
        return self._single_key(machine, trace_name, self.preset.trace_length)

    def cached_payload(self, key: str) -> dict | None:
        """The cached serialised result for ``key``, or ``None`` (no accounting)."""
        return self._memory.get(key)

    def _single_result(self, machine: MachineConfig, trace_name: str) -> RunResult:
        """Fetch a prewarmed single run from memory (no accounting)."""
        key = self._single_key(machine, trace_name, self.preset.trace_length)
        return RunResult.from_dict(self._memory[key])

    def has_cached(self, machine: MachineConfig, trace_name: str) -> bool:
        """Whether a (machine, trace) run is already cached (no accounting)."""
        key = self._single_key(machine, trace_name, self.preset.trace_length)
        return key in self._memory

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def run_single(self, machine: MachineConfig, trace_name: str) -> RunResult:
        """One (machine, trace) run, cached."""
        key = self._single_key(machine, trace_name, self.preset.trace_length)
        cached = self._memory.get(key)
        if cached is not None:
            self.cache_hits += 1
            return RunResult.from_dict(cached)
        self.cache_misses += 1
        trace = self.suite.trace(trace_name)
        data = self.suite.data_model(trace_name)
        result = simulate_trace(trace, data, machine, self.preset)
        self._store(key, result.to_dict())
        return result

    def run_many(
        self, machine: MachineConfig, trace_names: Iterable[str]
    ) -> list[RunResult]:
        """Run a machine across a list of traces (parallel when jobs > 1)."""
        names = list(trace_names)
        self.prewarm((machine, name) for name in names)
        return [self._single_result(machine, name) for name in names]

    def run_mix(self, machine: MachineConfig, mix: MixSpec) -> MixRunResult:
        """One multi-program mix run, cached."""
        key = self._mix_key(machine, mix, self.preset.trace_length)
        cached = self._memory.get(key)
        if cached is not None:
            self.cache_hits += 1
            return MixRunResult.from_dict(cached)
        self.cache_misses += 1
        result = simulate_mix(mix, machine, self.preset, self.suite)
        self._store(key, result.to_dict())
        return result

    def run_mixes(
        self, machine: MachineConfig, mixes: Sequence[MixSpec]
    ) -> list[MixRunResult]:
        """Run a machine across mixes (parallel when jobs > 1)."""
        self.prewarm(mixes=((machine, mix) for mix in mixes))
        length = self.preset.trace_length
        return [
            MixRunResult.from_dict(self._memory[self._mix_key(machine, mix, length)])
            for mix in mixes
        ]

    def run_pair(
        self,
        baseline: MachineConfig,
        candidate: MachineConfig,
        trace_names: Sequence[str],
    ) -> list[tuple[RunResult, RunResult]]:
        """(baseline, candidate) runs per trace, for ratio metrics."""
        names = list(trace_names)
        self.prewarm(
            [(baseline, name) for name in names]
            + [(candidate, name) for name in names]
        )
        return [
            (self._single_result(baseline, name), self._single_result(candidate, name))
            for name in names
        ]

"""Metrics used by the paper's evaluation.

The paper reports single-thread performance as IPC normalised to the
uncompressed 2MB baseline, aggregated with the geometric mean (Section V),
DRAM read traffic as a ratio to baseline, and multi-program performance as
normalised weighted speedup (Section VI.C).
"""

from __future__ import annotations

import math
import warnings
from typing import Iterable, Sequence

from repro.sim.single_core import RunResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean requires positive values, got {value}")
        total += math.log(value)
    return math.exp(total / len(values))


def ipc_ratio(run: RunResult, baseline: RunResult) -> float:
    """IPC of ``run`` normalised to the baseline run of the same trace."""
    if run.trace != baseline.trace:
        raise ValueError(
            f"comparing different traces: {run.trace!r} vs {baseline.trace!r}"
        )
    if baseline.ipc <= 0:
        raise ValueError(f"baseline IPC must be positive, got {baseline.ipc}")
    return run.ipc / baseline.ipc


def dram_read_ratio(run: RunResult, baseline: RunResult) -> float:
    """DRAM reads of ``run`` normalised to baseline (the figures' red line)."""
    if baseline.memory_reads == 0:
        if run.memory_reads == 0:
            return 1.0
        warnings.warn(
            f"dram_read_ratio: trace {run.trace!r} has {run.memory_reads} "
            "DRAM reads but its baseline has none; the ratio is inf and "
            "will poison any aggregate it enters",
            RuntimeWarning,
            stacklevel=2,
        )
        return float("inf")
    return run.memory_reads / baseline.memory_reads


def dram_write_ratio(run: RunResult, baseline: RunResult) -> float:
    """DRAM writes normalised to baseline (Base-Victim does not reduce these)."""
    if baseline.memory_writes == 0:
        if run.memory_writes == 0:
            return 1.0
        warnings.warn(
            f"dram_write_ratio: trace {run.trace!r} has {run.memory_writes} "
            "DRAM writes but its baseline has none; the ratio is inf and "
            "will poison any aggregate it enters",
            RuntimeWarning,
            stacklevel=2,
        )
        return float("inf")
    return run.memory_writes / baseline.memory_writes


def bandwidth_ratio(run: RunResult, baseline: RunResult) -> float:
    """Total DRAM traffic (reads + writes) normalised to baseline."""
    base = baseline.memory_reads + baseline.memory_writes
    if base == 0:
        return 1.0
    return (run.memory_reads + run.memory_writes) / base


def weighted_speedup(
    shared: Sequence[RunResult], alone: Sequence[RunResult]
) -> float:
    """Sum over threads of IPC_shared / IPC_alone (Section VI.C)."""
    if len(shared) != len(alone):
        raise ValueError(
            f"thread count mismatch: {len(shared)} shared vs {len(alone)} alone"
        )
    total = 0.0
    for s, a in zip(shared, alone):
        if s.trace != a.trace:
            raise ValueError(f"thread order mismatch: {s.trace!r} vs {a.trace!r}")
        if a.ipc <= 0:
            raise ValueError(f"alone IPC must be positive for {a.trace!r}")
        total += s.ipc / a.ipc
    return total


def count_losers(ratios: Iterable[float], threshold: float = 1.0) -> int:
    """How many normalised values fall below the threshold."""
    return sum(1 for ratio in ratios if ratio < threshold)

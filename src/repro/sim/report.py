"""Report formatting for experiments.

Turns run results into the paper's presentation units: sorted per-trace
ratio series (the line graphs of Figures 6-8 and 12), per-category
averages (Figures 9-11), and summary rows with loser counts and extreme
outliers — plus the operational side of a sweep: failed-cell tables and
the ``sweep/*`` health counters, so a degraded run accounts for every
cell instead of pretending it was complete.  Everything returns plain
strings so benches can ``print`` and tests can assert on structure.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.sim.metrics import count_losers, geomean
from repro.sim.retry import FailedCell
from repro.sim.single_core import RunResult
from repro.workloads.suite import CATEGORIES, all_specs


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ratio_series_summary(
    title: str,
    ipc_ratios: Mapping[str, float],
    read_ratios: Mapping[str, float] | None = None,
) -> str:
    """Summary of a sorted per-trace ratio series (one paper line graph)."""
    ratios = sorted(ipc_ratios.values())
    lines = [title]
    lines.append(
        f"  traces={len(ratios)}  geomean={geomean(ratios):.4f}  "
        f"min={ratios[0]:.4f}  max={ratios[-1]:.4f}  "
        f"losers(<1.0)={count_losers(ratios)}"
    )
    if read_ratios is not None:
        reads = sorted(read_ratios.values())
        lines.append(
            f"  DRAM read ratio: geomean={geomean(reads):.4f}  "
            f"min={reads[0]:.4f}  max={reads[-1]:.4f}"
        )
    # A compact textual rendering of the sorted series.
    step = max(1, len(ratios) // 12)
    sampled = ", ".join(f"{r:.3f}" for r in ratios[::step])
    lines.append(f"  sorted IPC ratios (sampled): {sampled}")
    return "\n".join(lines)


def category_of(trace_name: str) -> str:
    """Workload category for a trace name."""
    for spec in all_specs():
        if spec.name == trace_name:
            return spec.category
    raise KeyError(f"unknown trace {trace_name!r}")


def per_category_geomeans(ipc_ratios: Mapping[str, float]) -> dict[str, float]:
    """Geomean IPC ratio per workload category plus 'average' overall."""
    groups: dict[str, list[float]] = {cat: [] for cat in CATEGORIES}
    for name, ratio in ipc_ratios.items():
        groups[category_of(name)].append(ratio)
    out = {
        cat: geomean(values) for cat, values in groups.items() if values
    }
    out["average"] = geomean(ipc_ratios.values())
    return out


def category_table(
    series: Mapping[str, Mapping[str, float]], title: str
) -> str:
    """Figure-9-style table: one row per configuration, one column per category."""
    columns = list(CATEGORIES) + ["average"]
    rows = []
    for label, ipc_ratios in series.items():
        means = per_category_geomeans(ipc_ratios)
        rows.append([label] + [f"{means.get(col, float('nan')):.3f}" for col in columns])
    return title + "\n" + format_table(["config"] + columns, rows)


def hit_category_breakdown(obs: Mapping[str, Mapping]) -> dict[str, int]:
    """Where accesses were served, from serialised observability metrics.

    Returns the ``hits/*`` counters (l1, l2, llc_base, llc_victim,
    memory) published by the cache hierarchy — the Figure 9 category
    split — as plain ints, in level order.
    """
    out: dict[str, int] = {}
    for level in ("l1", "l2", "llc_base", "llc_victim", "memory"):
        metric = obs.get(f"hits/{level}")
        if metric is not None and metric.get("kind") == "counter":
            out[level] = metric["value"]
    return out


def histogram_stats(obs: Mapping[str, Mapping], name: str) -> dict[str, float]:
    """min/mean/max/samples of a serialised histogram (empty if absent)."""
    metric = obs.get(name)
    if metric is None or metric.get("kind") != "histogram" or not metric["buckets"]:
        return {}
    values = [(int(bucket), count) for bucket, count in metric["buckets"].items()]
    samples = sum(count for _, count in values)
    weighted = sum(value * count for value, count in values)
    return {
        "min": float(min(value for value, _ in values)),
        "mean": weighted / samples,
        "max": float(max(value for value, _ in values)),
        "samples": float(samples),
    }


def observability_summary(obs: Mapping[str, Mapping]) -> str:
    """Human-readable ``repro stats`` rendering of serialised metrics."""
    lines: list[str] = []
    breakdown = hit_category_breakdown(obs)
    if breakdown:
        total = sum(breakdown.values()) or 1
        lines.append("hit/miss breakdown:")
        for level, count in breakdown.items():
            lines.append(f"  {level:12s} {count:>12d}  ({count / total:6.1%})")
    occupancy = histogram_stats(obs, "llc/victim_occupancy")
    if occupancy:
        lines.append(
            "victim-cache occupancy (lines, sampled): "
            f"min={occupancy['min']:.0f} mean={occupancy['mean']:.1f} "
            f"max={occupancy['max']:.0f} over {occupancy['samples']:.0f} samples"
        )
    partner = obs.get("llc/partner_evictions")
    if partner is not None and partner.get("kind") == "counter":
        lines.append(f"partner victimizations: {partner['value']}")
    codecs = sorted(
        name.split("/")[1]
        for name in obs
        if name.startswith("codec/") and name.endswith("/size_bytes")
    )
    if codecs:
        lines.append("per-codec compressed size (bytes over palette lines):")
        for codec in codecs:
            stats = histogram_stats(obs, f"codec/{codec}/size_bytes")
            lines.append(
                f"  {codec:6s} min={stats['min']:3.0f} "
                f"mean={stats['mean']:5.1f} max={stats['max']:3.0f}"
            )
    if not lines:
        return "(no observability metrics published)"
    return "\n".join(lines)


def failed_cells_table(failures: Sequence[FailedCell]) -> str:
    """Table of sweep cells that exhausted their retry budget.

    One row per :class:`~repro.sim.retry.FailedCell`: the cache key,
    exception type, attempts made and wall time burned — the provenance
    a degraded sweep owes the operator for every missing cell.
    """
    return format_table(
        ["cell", "error", "attempts", "elapsed"],
        [
            [f.key, f.error, str(f.attempts), f"{f.elapsed:.2f}s"]
            for f in failures
        ],
    )


def sweep_health_summary(
    counters: Mapping[str, Mapping], engine: str | None = None
) -> str:
    """One line of sweep/cache health counters from a serialised registry.

    Accepts :meth:`~repro.obs.registry.CounterRegistry.as_dict` output;
    counters that never fired print as 0 so the line's shape is stable.
    Covers the fault-tolerance counters (``sweep/*``) and the
    persistence-layer ones (``cache/*``: lock contention, checksum
    rejections, legacy lines folded in).  ``engine``, if given, is the
    resolved simulation engine name and leads the line, so sweep logs
    record which inner loop produced them.
    """
    names = (
        ("retries", "sweep/retries"),
        ("failures", "sweep/failures"),
        ("recovered workers", "sweep/recovered_workers"),
        ("cells salvaged from shards", "sweep/shard_recovered"),
        ("corrupt cache lines skipped", "sweep/corrupt_lines"),
        ("lock waits", "cache/lock_waits"),
        ("lock timeouts", "cache/lock_timeouts"),
        ("CRC failures", "cache/crc_failures"),
        ("migrated lines", "cache/migrated_lines"),
    )
    values = []
    if engine is not None:
        values.append(f"engine: {engine}")
    for label, name in names:
        metric = counters.get(name)
        value = metric["value"] if metric and metric.get("kind") == "counter" else 0
        values.append(f"{label}: {value}")
    return "  ".join(values)


def dispatch_health_summary(counters: Mapping[str, Mapping]) -> str:
    """One line of dispatch crash-safety counters from a serialised registry.

    The ``dist/*`` companion to :func:`sweep_health_summary`: leases,
    streaming partial folds, heartbeat misses, resumes/salvage and
    stale-shard reclaims — the counters an operator reads after a
    crashy distributed sweep to see what the machinery absorbed.
    Counters that never fired print as 0 so the line's shape is stable.
    """
    names = (
        ("leases", "dist/leases"),
        ("partial folds", "dist/folds_partial"),
        ("heartbeats missed", "dist/heartbeats_missed"),
        ("resumes", "dist/resumes"),
        ("cells salvaged", "dist/jobs_salvaged"),
        ("stale shards reclaimed", "dist/stale_shards_reclaimed"),
        ("workers lost", "dist/workers_lost"),
        ("jobs reassigned", "dist/jobs_reassigned"),
        ("duplicates", "dist/duplicate_results"),
    )
    values = []
    for label, name in names:
        metric = counters.get(name)
        value = metric["value"] if metric and metric.get("kind") == "counter" else 0
        values.append(f"{label}: {value}")
    return "  ".join(values)


def traffic_summary(runs: Sequence[RunResult], baselines: Sequence[RunResult]) -> str:
    """Section VI.D traffic rows: reads, writes, bandwidth, LLC accesses."""
    reads = sum(r.memory_reads for r in runs) / max(
        1, sum(b.memory_reads for b in baselines)
    )
    writes = sum(r.memory_writes for r in runs) / max(
        1, sum(b.memory_writes for b in baselines)
    )
    total = sum(r.memory_reads + r.memory_writes for r in runs) / max(
        1, sum(b.memory_reads + b.memory_writes for b in baselines)
    )
    # The paper's "+31% additional accesses to LLC" counts data-array
    # operations including base<->victim migrations, which our results
    # expose as data_reads/data_writes.
    llc = sum(r.llc_data_reads + r.llc_data_writes for r in runs) / max(
        1, sum(b.llc_data_reads + b.llc_data_writes for b in baselines)
    )
    return (
        f"  DRAM reads ratio:        {reads:.3f}\n"
        f"  DRAM writes ratio:       {writes:.3f}\n"
        f"  DRAM bandwidth ratio:    {total:.3f}\n"
        f"  LLC data-array op ratio: {llc:.3f}"
    )

"""Report formatting for experiments.

Turns run results into the paper's presentation units: sorted per-trace
ratio series (the line graphs of Figures 6-8 and 12), per-category
averages (Figures 9-11), and summary rows with loser counts and extreme
outliers.  Everything returns plain strings so benches can ``print`` and
tests can assert on structure.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.sim.metrics import count_losers, geomean
from repro.sim.single_core import RunResult
from repro.workloads.suite import CATEGORIES, all_specs


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ratio_series_summary(
    title: str,
    ipc_ratios: Mapping[str, float],
    read_ratios: Mapping[str, float] | None = None,
) -> str:
    """Summary of a sorted per-trace ratio series (one paper line graph)."""
    ratios = sorted(ipc_ratios.values())
    lines = [title]
    lines.append(
        f"  traces={len(ratios)}  geomean={geomean(ratios):.4f}  "
        f"min={ratios[0]:.4f}  max={ratios[-1]:.4f}  "
        f"losers(<1.0)={count_losers(ratios)}"
    )
    if read_ratios is not None:
        reads = sorted(read_ratios.values())
        lines.append(
            f"  DRAM read ratio: geomean={geomean(reads):.4f}  "
            f"min={reads[0]:.4f}  max={reads[-1]:.4f}"
        )
    # A compact textual rendering of the sorted series.
    step = max(1, len(ratios) // 12)
    sampled = ", ".join(f"{r:.3f}" for r in ratios[::step])
    lines.append(f"  sorted IPC ratios (sampled): {sampled}")
    return "\n".join(lines)


def category_of(trace_name: str) -> str:
    """Workload category for a trace name."""
    for spec in all_specs():
        if spec.name == trace_name:
            return spec.category
    raise KeyError(f"unknown trace {trace_name!r}")


def per_category_geomeans(ipc_ratios: Mapping[str, float]) -> dict[str, float]:
    """Geomean IPC ratio per workload category plus 'average' overall."""
    groups: dict[str, list[float]] = {cat: [] for cat in CATEGORIES}
    for name, ratio in ipc_ratios.items():
        groups[category_of(name)].append(ratio)
    out = {
        cat: geomean(values) for cat, values in groups.items() if values
    }
    out["average"] = geomean(ipc_ratios.values())
    return out


def category_table(
    series: Mapping[str, Mapping[str, float]], title: str
) -> str:
    """Figure-9-style table: one row per configuration, one column per category."""
    columns = list(CATEGORIES) + ["average"]
    rows = []
    for label, ipc_ratios in series.items():
        means = per_category_geomeans(ipc_ratios)
        rows.append([label] + [f"{means.get(col, float('nan')):.3f}" for col in columns])
    return title + "\n" + format_table(["config"] + columns, rows)


def traffic_summary(runs: Sequence[RunResult], baselines: Sequence[RunResult]) -> str:
    """Section VI.D traffic rows: reads, writes, bandwidth, LLC accesses."""
    reads = sum(r.memory_reads for r in runs) / max(
        1, sum(b.memory_reads for b in baselines)
    )
    writes = sum(r.memory_writes for r in runs) / max(
        1, sum(b.memory_writes for b in baselines)
    )
    total = sum(r.memory_reads + r.memory_writes for r in runs) / max(
        1, sum(b.memory_reads + b.memory_writes for b in baselines)
    )
    # The paper's "+31% additional accesses to LLC" counts data-array
    # operations including base<->victim migrations, which our results
    # expose as data_reads/data_writes.
    llc = sum(r.llc_data_reads + r.llc_data_writes for r in runs) / max(
        1, sum(b.llc_data_reads + b.llc_data_writes for b in baselines)
    )
    return (
        f"  DRAM reads ratio:        {reads:.3f}\n"
        f"  DRAM writes ratio:       {writes:.3f}\n"
        f"  DRAM bandwidth ratio:    {total:.3f}\n"
        f"  LLC data-array op ratio: {llc:.3f}"
    )

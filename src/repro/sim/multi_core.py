"""Multi-program (shared LLC) simulation driver.

Section V: four single-threaded traces share one LLC; each thread runs its
performance-measurement phase once, and threads that finish early *keep
executing* (wrapping around their trace) so shared-LLC contention stays
realistic until the slowest thread completes.  Performance is reported as
weighted speedup against single-program runs on the same machine.

Threads are interleaved by their simulated clocks: at every step the
thread with the smallest accumulated cycle count issues its next access,
so faster threads naturally issue more requests per unit time.  Each
thread gets private L1/L2 caches and a private address-space offset (two
instances of the same trace in one mix must not share lines).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import L1, CacheHierarchy
from repro.memory.dram import DRAMModel
from repro.obs.registry import CounterRegistry
from repro.sim.config import MachineConfig, Preset
from repro.sim.single_core import OCCUPANCY_SAMPLES, RunResult, core_params_for
from repro.timing.core_model import CoreTimingModel
from repro.workloads.datagen import LineDataModel
from repro.workloads.mixes import MixSpec
from repro.workloads.suite import TraceSuite
from repro.workloads.trace import Trace

#: Per-thread address-space offset (lines); far above any trace footprint.
_THREAD_STRIDE = 1 << 44


@dataclass
class MixRunResult:
    """Outcome of one mix on one machine: per-thread results + LLC stats."""

    mix: str
    machine: str
    threads: list[dict] = field(default_factory=list)
    llc_hits: int = 0
    llc_misses: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    #: Mix-level observability (shared-LLC counters + occupancy); each
    #: thread dict carries its private-level metrics in its own "obs".
    obs: dict = field(default_factory=dict)

    @property
    def thread_results(self) -> list[RunResult]:
        """Per-thread results rehydrated as RunResult objects."""
        return [RunResult.from_dict(t) for t in self.threads]

    @property
    def llc_hit_rate(self) -> float:
        """Shared-LLC hit rate over all lookups."""
        lookups = self.llc_hits + self.llc_misses
        if lookups == 0:
            return 0.0
        return self.llc_hits / lookups

    def to_dict(self) -> dict:
        """Plain-dict form for JSON caching."""
        return {
            "mix": self.mix,
            "machine": self.machine,
            "threads": self.threads,
            "llc_hits": self.llc_hits,
            "llc_misses": self.llc_misses,
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "obs": self.obs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MixRunResult":
        """Rebuild from the ``to_dict`` representation."""
        return cls(**data)


class _Thread:
    """One hardware thread's private state."""

    __slots__ = (
        "name",
        "trace",
        "data",
        "hierarchy",
        "core",
        "index",
        "finished_once",
        "offset",
        "measured_instr",
        "measured_cycles",
    )

    def __init__(
        self,
        name: str,
        trace: Trace,
        data: LineDataModel,
        hierarchy: CacheHierarchy,
        core: CoreTimingModel,
        offset: int,
    ) -> None:
        self.name = name
        self.trace = trace
        self.data = data
        self.hierarchy = hierarchy
        self.core = core
        self.index = 0
        self.finished_once = False
        self.offset = offset
        self.measured_instr = 0
        self.measured_cycles = 0.0


def simulate_mix(
    mix: MixSpec,
    machine: MachineConfig,
    preset: Preset,
    suite: TraceSuite,
) -> MixRunResult:
    """Run one four-way mix on one machine configuration."""
    llc = machine.build_llc(preset)
    dram = DRAMModel()
    hierarchy_config = preset.hierarchy_config(machine.prefetch_degree)

    threads: list[_Thread] = []
    for tid, trace_name in enumerate(mix.trace_names):
        trace = suite.trace(trace_name)
        data = suite.data_model(trace_name)
        offset = (tid + 1) * _THREAD_STRIDE

        def size_fn(addr: int, _data=data, _offset=offset) -> int:
            """Compressed size of the line backing ``addr``."""
            return _data.size_of(addr - _offset)

        hierarchy = CacheHierarchy(llc, size_fn, hierarchy_config, memory=dram)
        core = CoreTimingModel(core_params_for(trace, machine))
        threads.append(_Thread(trace_name, trace, data, hierarchy, core, offset))

    registry = CounterRegistry()
    occupancy = registry.histogram("llc/victim_occupancy")
    victim_occupancy = getattr(llc, "victim_occupancy", None)
    sample_every = max(1, len(threads) * preset.trace_length // OCCUPANCY_SAMPLES)
    steps = 0

    unfinished = len(threads)
    while unfinished > 0:
        # The thread with the smallest clock issues next.
        thread = min(threads, key=_thread_clock)
        trace = thread.trace
        i = thread.index
        base_addr = trace.addrs[i]
        is_write = trace.kinds[i] == 1
        if is_write:
            thread.data.on_write(base_addr)
        thread.core.advance(trace.deltas[i])
        thread.hierarchy.now = thread.core.cycles
        outcome = thread.hierarchy.access(base_addr + thread.offset, is_write)
        if outcome.level != L1:
            thread.core.account_access(outcome, outcome.dram_latency)

        steps += 1
        if victim_occupancy is not None and steps % sample_every == 0:
            occupancy.observe(victim_occupancy())

        thread.index += 1
        if thread.index >= len(trace):
            thread.index = 0  # wrap: keep generating contention
            if not thread.finished_once:
                thread.finished_once = True
                thread.measured_instr = thread.core.instructions
                thread.measured_cycles = thread.core.cycles
                unfinished -= 1

    result = MixRunResult(mix=mix.name, machine=machine.label)
    for thread in threads:
        stats = thread.hierarchy.stats
        cycles = thread.measured_cycles
        # Each thread publishes its private levels only; the shared LLC
        # is published once, into the mix-level registry below.
        thread_registry = CounterRegistry()
        thread.hierarchy.publish_observations(thread_registry, include_llc=False)
        run = RunResult(
            trace=thread.name,
            machine=machine.label,
            instructions=thread.measured_instr,
            cycles=cycles,
            ipc=thread.measured_instr / cycles if cycles else 0.0,
            accesses=stats.accesses,
            l1_hits=stats.l1_hits,
            l2_hits=stats.l2_hits,
            llc_hits=stats.llc_hits,
            llc_victim_hits=stats.llc_victim_hits,
            llc_misses=stats.llc_misses,
            memory_reads=stats.memory_reads,
            memory_writes=stats.memory_writes,
            obs=thread_registry.as_dict(),
        )
        result.threads.append(run.to_dict())
        result.llc_hits += stats.llc_hits
        result.llc_misses += stats.llc_misses
        result.memory_reads += stats.memory_reads
        result.memory_writes += stats.memory_writes
    llc.publish_observations(registry)
    result.obs = registry.as_dict()
    return result


def _thread_clock(thread: _Thread) -> float:
    return thread.core.cycles

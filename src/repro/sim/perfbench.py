"""Perf-benchmark subsystem: simulation throughput as a tracked metric.

The ROADMAP's "as fast as the hardware allows" axis needs a number
attached to it: this module measures single-worker engine throughput
(demand accesses simulated per wall-clock second) over a fixed
(machine, trace) matrix, so inner-loop optimisations are observable and
regressions are caught by CI instead of being discovered months later in
a 60-trace sweep that suddenly takes an afternoon.

Three entry points share this engine:

* ``repro perf`` — the CLI subcommand for interactive measurement,
* ``benchmarks/bench_perf.py`` — the standalone script CI runs,
* :func:`check_regression` — the gate comparing a fresh measurement
  against the committed ``BENCH_PERF.json`` baseline.

Throughput is measured around :func:`~repro.sim.single_core
.simulate_trace` only (``--jobs 1`` semantics): the parallel sweep
engine multiplies whatever single-worker speed this reports, so this is
the number every perf PR must move.  Each (machine, trace) cell runs
``repeats`` times on a fresh data model and keeps the *best* run —
wall-clock noise only ever slows a run down, so the minimum is the most
stable estimator.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.obs.registry import CounterRegistry
from repro.sim.config import BASE_VICTIM_2MB, BASELINE_2MB, MachineConfig, Preset
from repro.sim.engine import ENGINE_ENV, ENGINES, resolve_engine
from repro.sim.single_core import simulate_trace
from repro.workloads.suite import TraceSuite

#: Schema version of the BENCH_PERF.json payloads.
SCHEMA_VERSION = 1

#: Default measurement matrix: the two Figure 8 machines over one trace
#: per workload category (the same four traces as the golden fixture).
DEFAULT_MACHINES: tuple[MachineConfig, ...] = (BASELINE_2MB, BASE_VICTIM_2MB)

#: ``--machine`` row names accepted by the CLI.
PERF_MACHINES: dict[str, MachineConfig] = {
    "baseline": BASELINE_2MB,
    "base-victim": BASE_VICTIM_2MB,
}
DEFAULT_TRACES: tuple[str, ...] = ("3dmark.1", "lbm.1", "mcf.1", "sysmark.1")

#: Two-trace slice used by the CI ``perf-smoke`` job (one hit-heavy, one
#: miss-heavy trace, so both engine paths are exercised).
CI_TRACES: tuple[str, ...] = ("mcf.1", "sjeng.1")

#: CI regression gate: fail when throughput drops by more than this
#: fraction versus the committed baseline.  Deliberately generous to
#: absorb shared-runner noise; tighten only with dedicated hardware.
DEFAULT_MAX_REGRESSION = 0.30


def host_meta() -> dict:
    """Host fingerprint recorded next to every measurement."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def measure_matrix(
    preset: Preset,
    machines: Sequence[MachineConfig] = DEFAULT_MACHINES,
    trace_names: Sequence[str] = DEFAULT_TRACES,
    repeats: int = 3,
    progress=None,
    engine: str | None = None,
) -> dict:
    """Measure accesses/sec for every (machine, trace) cell.

    Returns a plain-dict payload (see module docstring) ready for JSON
    serialisation.  ``progress``, if given, is called as
    ``progress(done, total, label)`` after each cell.

    ``engine`` selects the inner loop (``None`` = ``$REPRO_ENGINE`` or
    the default); the *requested* engine name is recorded in the payload
    so :func:`check_regression` can refuse cross-engine comparisons — a
    perf regression must never hide behind an engine switch.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    engine_name = resolve_engine(engine)
    suite = TraceSuite(preset.reference_llc_lines, preset.trace_length)
    entries: list[dict] = []
    total = len(machines) * len(trace_names)
    done = 0
    for machine in machines:
        for name in trace_names:
            trace = suite.trace(name)  # generated once, reused across repeats
            best_seconds = float("inf")
            best_phases: dict[str, float] = {}
            accesses = 0
            for _ in range(repeats):
                # Fresh data model per repeat: stores mutate it, and the
                # measurement must be of identical work every time.
                data = suite.data_model(name)
                registry = CounterRegistry()
                started = time.perf_counter()
                result = simulate_trace(
                    trace, data, machine, preset, registry=registry,
                    engine=engine_name,
                )
                elapsed = time.perf_counter() - started
                accesses = result.accesses
                if elapsed < best_seconds:
                    best_seconds = elapsed
                    best_phases = {
                        key.removeprefix("phase/"): seconds
                        for key, seconds in registry.timers.items()
                        if key.startswith("phase/")
                    }
            entries.append(
                {
                    "machine": machine.label,
                    "trace": name,
                    "accesses": accesses,
                    "best_seconds": best_seconds,
                    "accesses_per_sec": accesses / best_seconds,
                    "phase_seconds": best_phases,
                }
            )
            done += 1
            if progress is not None:
                progress(done, total, f"{machine.label}|{name}")
    total_accesses = sum(entry["accesses"] for entry in entries)
    total_seconds = sum(entry["best_seconds"] for entry in entries)
    return {
        "schema": SCHEMA_VERSION,
        "preset": preset.name,
        "trace_length": preset.trace_length,
        "repeats": repeats,
        "jobs": 1,
        "engine": engine_name,
        "host": host_meta(),
        "entries": entries,
        "aggregate": {
            "accesses": total_accesses,
            "seconds": total_seconds,
            "accesses_per_sec": total_accesses / total_seconds,
        },
    }


def aggregate_rate(payload: dict) -> float:
    """Aggregate accesses/sec of one measurement payload."""
    return float(payload["aggregate"]["accesses_per_sec"])


def payload_engine(payload: dict) -> str:
    """Engine a measurement payload was taken with.

    Payloads written before the engine field existed were all measured
    with the scalar fast loop, so a missing key reads as ``"fast"``.
    """
    return payload.get("engine", "fast")


def check_regression(
    current: dict,
    baseline: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> list[str]:
    """Compare a fresh measurement against a baseline payload.

    Returns a list of human-readable problems (empty = gate passes).
    Only the aggregate rate is gated — per-cell rates are far noisier —
    but cells slower than the allowance are reported as context.

    Payloads measured with different engines are never compared: the
    gate refuses outright, so a regression in one engine cannot hide
    behind a faster engine's baseline (or vice versa).
    """
    problems: list[str] = []
    for label, payload in (("measurement", current), ("baseline", baseline)):
        if payload.get("profiled"):
            problems.append(
                f"{label} was taken under cProfile (--profile); profiled "
                f"timings are not comparable throughput"
            )
    if problems:
        return problems
    current_engine = payload_engine(current)
    baseline_engine = payload_engine(baseline)
    if current_engine != baseline_engine:
        problems.append(
            f"engine mismatch: measurement used {current_engine!r} but the "
            f"baseline was taken with {baseline_engine!r}; re-baseline or "
            f"re-measure with the same engine (cross-engine throughput "
            f"comparisons are refused)"
        )
        return problems
    floor = aggregate_rate(baseline) * (1.0 - max_regression)
    rate = aggregate_rate(current)
    if rate < floor:
        problems.append(
            f"aggregate throughput regressed: {rate:,.0f} accesses/sec vs "
            f"baseline {aggregate_rate(baseline):,.0f} "
            f"(floor {floor:,.0f} at -{max_regression:.0%})"
        )
        baseline_cells = {
            (entry["machine"], entry["trace"]): entry["accesses_per_sec"]
            for entry in baseline.get("entries", ())
        }
        for entry in current.get("entries", ()):
            key = (entry["machine"], entry["trace"])
            reference = baseline_cells.get(key)
            if reference and entry["accesses_per_sec"] < reference * (
                1.0 - max_regression
            ):
                problems.append(
                    f"  cell {key[0]}|{key[1]}: "
                    f"{entry['accesses_per_sec']:,.0f} vs {reference:,.0f}"
                )
    return problems


def load_baseline(path: Path, section: str) -> dict:
    """Load one matrix section of a committed ``BENCH_PERF.json``.

    The committed file records ``{"matrices": {section: {"before": ...,
    "after": ...}}}``; the gate compares against the ``after`` payload
    (the engine as shipped).  A bare measurement payload (no
    ``matrices`` wrapper) is accepted too, for ad-hoc comparisons.
    """
    with path.open() as handle:
        data = json.load(handle)
    if "matrices" in data:
        try:
            return data["matrices"][section]["after"]
        except KeyError:
            known = ", ".join(sorted(data["matrices"]))
            raise KeyError(
                f"{path}: no section {section!r} with an 'after' payload "
                f"(known sections: {known})"
            ) from None
    return data


def format_report(payload: dict) -> str:
    """Human-readable table of one measurement payload."""
    lines = [
        f"preset: {payload['preset']}   trace length: {payload['trace_length']}"
        f"   repeats: {payload['repeats']}   jobs: {payload['jobs']}"
        f"   engine: {payload_engine(payload)}",
        f"{'machine':40s} {'trace':12s} {'acc/sec':>12s} {'seconds':>9s}",
    ]
    for entry in payload["entries"]:
        lines.append(
            f"{entry['machine']:40s} {entry['trace']:12s} "
            f"{entry['accesses_per_sec']:12,.0f} {entry['best_seconds']:9.3f}"
        )
    agg = payload["aggregate"]
    lines.append(
        f"{'aggregate':53s} {agg['accesses_per_sec']:12,.0f} {agg['seconds']:9.3f}"
    )
    return "\n".join(lines)


def add_arguments(parser) -> None:
    """Register the ``repro perf`` arguments on an argparse parser."""
    from repro.sim.config import PRESETS

    parser.add_argument("--preset", default="bench", choices=sorted(PRESETS))
    parser.add_argument(
        "--trace",
        action="append",
        dest="traces",
        metavar="NAME",
        help=f"trace to measure (repeatable; default: {', '.join(DEFAULT_TRACES)})",
    )
    parser.add_argument(
        "--machine",
        action="append",
        dest="machines",
        choices=sorted(PERF_MACHINES),
        metavar="NAME",
        help="machine row to measure (repeatable; default: both)",
    )
    parser.add_argument("--repeats", type=int, default=3, metavar="N")
    parser.add_argument(
        "--profile",
        nargs="?",
        const=25,
        default=None,
        type=int,
        metavar="N",
        help="run the matrix under cProfile and print the top N rows "
        "(default 25); profiled timings are skewed, so --check is refused "
        "and the payload is marked non-comparable",
    )
    parser.add_argument(
        "--profile-sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="cProfile sort key for the printed rows",
    )
    parser.add_argument(
        "--profile-dump",
        metavar="PATH",
        help="save the raw pstats file (snakeviz/pstats spelunking)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=f"inner loop to measure (default: ${ENGINE_ENV} or batch); "
        "recorded in the payload so the gate refuses cross-engine comparisons",
    )
    parser.add_argument(
        "--output", metavar="PATH", help="write the measurement payload as JSON"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH_PERF.json and exit 1 on regression",
    )
    parser.add_argument(
        "--section",
        default="bench",
        metavar="NAME",
        help="matrix section of the baseline file to gate against (default: bench)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        metavar="FRAC",
        help="allowed fractional slowdown before the gate fails (default: 0.30)",
    )


def run(args) -> int:
    """Execute a parsed ``repro perf`` invocation."""
    from repro.sim.config import PRESETS

    preset = PRESETS[args.preset]
    traces = tuple(args.traces) if args.traces else DEFAULT_TRACES
    machines = (
        tuple(PERF_MACHINES[name] for name in args.machines)
        if getattr(args, "machines", None)
        else DEFAULT_MACHINES
    )
    profile_top = getattr(args, "profile", None)
    if profile_top is not None and args.check:
        print(
            "--profile skews every timing; refusing to gate a profiled run",
            file=sys.stderr,
        )
        return 2

    def progress(done: int, total: int, label: str) -> None:
        """Render an in-place progress line on stderr."""
        print(f"\r  measured {done}/{total}  {label[:60]:<60s}", end="",
              file=sys.stderr, flush=True)
        if done == total:
            print(file=sys.stderr)

    profiler = None
    if profile_top is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    payload = measure_matrix(
        preset,
        machines=machines,
        trace_names=traces,
        repeats=args.repeats,
        progress=progress,
        engine=args.engine,
    )
    if profiler is not None:
        profiler.disable()
        # Poisons the payload for check_regression: profiled rates are
        # systematically low and must never become (or beat) a baseline.
        payload["profiled"] = True
    print(format_report(payload))
    if profiler is not None:
        import pstats

        stats = pstats.Stats(profiler)
        stats.sort_stats(args.profile_sort).print_stats(profile_top)
        if args.profile_dump:
            stats.dump_stats(args.profile_dump)
            print(f"raw pstats written to {args.profile_dump}")

    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {args.output}")

    if args.check:
        baseline = load_baseline(Path(args.check), args.section)
        problems = check_regression(payload, baseline, args.max_regression)
        if problems:
            print("PERF REGRESSION:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(
            f"perf gate OK: {aggregate_rate(payload):,.0f} accesses/sec vs "
            f"baseline {aggregate_rate(baseline):,.0f} "
            f"(allowance -{args.max_regression:.0%})"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``benchmarks/bench_perf.py``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_perf",
        description="measure single-worker simulation throughput",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))

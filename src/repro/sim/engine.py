"""Simulation engine selection.

``simulate_trace`` carries three equivalent inner loops (engines):

``traced``
    The reference loop — one ``hierarchy.access`` per demand access,
    per-access counter updates, one tracer record per access.  Always
    used when a tracer is active.
``fast``
    PR 3's profile-guided scalar loop: the L1 hit path inlined to a
    dict lookup plus the LRU touch, counters batched in locals.
``batch``
    PR 6's chunked engine (:mod:`repro.sim.batch`): one vectorised
    probe against an L1 snapshot per chunk resolves the leading run of
    hits with NumPy, then the scalar fast path handles the miss tail.

All three are proven byte-identical — results *and* serialised
observations — by ``tests/sim/test_engine_equivalence.py`` and the
differential fuzz oracle in ``tests/sim/test_batch_equivalence.py``.

Selection order: explicit argument > ``$REPRO_ENGINE`` > ``batch``.
The CLI's ``--engine`` writes the environment variable so parallel
sweep workers (fork or spawn, see :mod:`repro.sim.parallel`) inherit
the choice.  An engine that cannot run in the current configuration
degrades silently (batch -> fast without NumPy or a non-LRU L1;
fast -> traced with a non-LRU L1): the engines are interchangeable by
construction, so degradation affects speed only, never results.
"""

from __future__ import annotations

import os

#: Environment variable selecting the engine for a whole process tree.
ENGINE_ENV = "REPRO_ENGINE"

#: Valid engine names, fastest first.
ENGINES = ("batch", "fast", "traced")

DEFAULT_ENGINE = "batch"


def resolve_engine(explicit: str | None = None) -> str:
    """Resolve the requested engine name: explicit > env > default.

    Raises :class:`ValueError` for unknown names from either source so a
    typo in ``--engine``/``$REPRO_ENGINE`` fails the run instead of
    silently simulating with the default.
    """
    requested = explicit
    if requested is None:
        requested = os.environ.get(ENGINE_ENV, "").strip() or DEFAULT_ENGINE
    if requested not in ENGINES:
        raise ValueError(
            f"unknown engine {requested!r}; expected one of {', '.join(ENGINES)}"
        )
    return requested

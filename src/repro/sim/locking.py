"""Cross-process advisory file locks for the result cache.

Any number of ``repro`` processes (overlapping sweeps, ``repro stats``,
prewarms, CI jobs) may share one ``.repro_cache/`` directory.  Every
read-modify-write of a cache file therefore happens under an advisory
``fcntl.flock`` on a ``<cache>.lock`` sibling, so two writers can never
interleave appends or race an atomic merge.

Design points:

* **flock, not lockfiles** — the kernel releases a ``flock`` the instant
  its holder dies, so a SIGKILLed sweep can never wedge the cache the
  way a stale pidfile would.  The lock file itself carries owner
  metadata (pid, hostname, acquisition time) purely for diagnostics:
  a timeout names the holder, and taking over from a dead owner is
  counted as a stale-lock detection.
* **Bounded, seeded waiting** — acquisition polls with the same seeded
  exponential backoff the sweep retry layer uses
  (:class:`~repro.sim.retry.RetryPolicy`), bounded by a timeout
  (``--lock-timeout`` / ``$REPRO_LOCK_TIMEOUT``, default
  :data:`DEFAULT_LOCK_TIMEOUT` seconds).  Exhausting it raises
  :class:`LockTimeoutError` naming the current owner instead of
  deadlocking the sweep.
* **Accounted contention** — waits, timeouts and stale takeovers are
  tallied per process (:func:`lock_wait_total`,
  :func:`lock_timeout_total`, :func:`stale_lock_total`) so the
  experiment runner can surface ``cache/lock_waits`` and
  ``cache/lock_timeouts`` through its registry.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op:
single-process use stays correct, and the CRC-checked cache format
still *detects* any corruption concurrent writers would cause.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.sim import faultinject
from repro.sim.retry import RetryPolicy, _env_float

#: Environment variable overriding the default lock timeout (seconds).
LOCK_TIMEOUT_ENV = "REPRO_LOCK_TIMEOUT"

#: Default seconds to wait for the cache lock before giving up.  Long
#: enough to ride out another sweep's merge, short enough that a wedged
#: NFS mount surfaces as an error instead of a silent hang.
DEFAULT_LOCK_TIMEOUT = 120.0

#: Suffix appended to the protected file's name to form its lock file.
LOCK_SUFFIX = ".lock"


class LockTimeoutError(RuntimeError):
    """The cache lock could not be acquired within the timeout."""


#: Process-local contention tallies (mirrors the corrupt-line counters
#: in :mod:`repro.sim.resultcache`).
_totals = {"waits": 0, "timeouts": 0, "stale": 0}


def lock_wait_total() -> int:
    """Backoff sleeps performed while waiting for locks (this process)."""
    return _totals["waits"]


def lock_timeout_total() -> int:
    """Lock acquisitions that timed out (this process)."""
    return _totals["timeouts"]


def stale_lock_total() -> int:
    """Locks taken over from a dead owner's metadata (this process)."""
    return _totals["stale"]


def resolve_lock_timeout(
    timeout: float | None = None, default: float = DEFAULT_LOCK_TIMEOUT
) -> float:
    """Lock timeout: explicit value > ``$REPRO_LOCK_TIMEOUT`` > default.

    Zero or negative values mean "do not wait": a contended lock raises
    :class:`LockTimeoutError` on the first failed attempt.
    """
    if timeout is None:
        resolved = _env_float(LOCK_TIMEOUT_ENV, default)
        assert resolved is not None  # default is never None here
        timeout = resolved
    return timeout


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


class FileLock:
    """Advisory exclusive lock on a file, with timeout and diagnostics.

    Usable as a context manager::

        with FileLock.for_target(cache_path, timeout=30):
            ...read-modify-write the cache...

    ``waits`` / ``timeouts`` / ``stale_owners`` count this instance's
    contention events; the module-level totals aggregate across all
    locks in the process.
    """

    def __init__(
        self,
        path: Path,
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.path = Path(path)
        self.timeout = resolve_lock_timeout(timeout)
        # Fast, capped backoff: lock holds are short (one merge), so
        # poll often but never busy-spin.
        self._policy = policy or RetryPolicy(backoff_base=0.005, backoff_cap=0.1)
        self._fd: int | None = None
        self.waits = 0
        self.timeouts = 0
        self.stale_owners = 0

    @classmethod
    def for_target(cls, target: Path, timeout: float | None = None) -> "FileLock":
        """The lock protecting ``target`` (a ``<target>.lock`` sibling)."""
        return cls(target.with_name(target.name + LOCK_SUFFIX), timeout)

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._fd is not None

    def _read_owner(self, fd: int) -> dict | None:
        """Parse the owner metadata currently in the lock file, if any."""
        try:
            os.lseek(fd, 0, os.SEEK_SET)
            raw = os.read(fd, 4096)
            owner = json.loads(raw) if raw.strip() else None
        except (OSError, ValueError):
            return None
        return owner if isinstance(owner, dict) else None

    def _write_owner(self, fd: int) -> None:
        """Stamp this process's identity into the held lock file."""
        payload = json.dumps(
            {"pid": os.getpid(), "host": socket.gethostname(), "acquired": time.time()}
        ).encode()
        try:
            os.ftruncate(fd, 0)
            os.lseek(fd, 0, os.SEEK_SET)
            os.write(fd, payload)
        except OSError:  # diagnostics only; never fail an acquired lock
            pass

    def _describe_owner(self, owner: dict | None) -> str:
        """Human-readable holder description for timeout errors."""
        if not owner:
            return "unknown owner"
        pid = owner.get("pid")
        host = owner.get("host", "?")
        state = ""
        if isinstance(pid, int) and host == socket.gethostname():
            state = " (alive)" if _pid_alive(pid) else " (dead)"
        return f"pid {pid} on {host}{state}"

    def acquire(self) -> "FileLock":
        """Take the lock, waiting up to ``timeout`` seconds.

        Raises :class:`LockTimeoutError` (naming the current holder)
        when the wait budget runs out.  Taking over a lock whose
        recorded owner is a dead same-host process counts as a stale
        detection — with ``flock`` the kernel has already released it,
        so the takeover is immediate and safe.
        """
        assert self._fd is None, "lock is not reentrant"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is None:  # pragma: no cover - non-POSIX degradation
            self._fd = fd
            self._write_owner(fd)
            faultinject.on_lock_acquired(self.path)
            return self
        deadline = time.monotonic() + max(0.0, self.timeout)
        attempt = 0
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                attempt += 1
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    owner = self._describe_owner(self._read_owner(fd))
                    os.close(fd)
                    self.timeouts += 1
                    _totals["timeouts"] += 1
                    raise LockTimeoutError(
                        f"{self.path}: lock held by {owner}; gave up after "
                        f"{self.timeout:g}s (raise --lock-timeout / "
                        f"${LOCK_TIMEOUT_ENV} if the sweep is just slow)"
                    ) from None
                self.waits += 1
                _totals["waits"] += 1
                delay = self._policy.delay(str(self.path), attempt)
                time.sleep(min(delay, remaining))
        previous = self._read_owner(fd)
        if previous is not None:
            pid = previous.get("pid")
            if (
                isinstance(pid, int)
                and previous.get("host") == socket.gethostname()
                and not _pid_alive(pid)
            ):
                self.stale_owners += 1
                _totals["stale"] += 1
        self._fd = fd
        self._write_owner(fd)
        faultinject.on_lock_acquired(self.path)
        return self

    def release(self) -> None:
        """Drop the lock.  Owner metadata is left behind for diagnostics."""
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

"""Base-Victim Compression: an opportunistic cache compression architecture.

Python reproduction of Gaur, Alameldeen and Subramoney (ISCA 2016).

Public API layers:

* :mod:`repro.compression` — BDI (the paper's algorithm), FPC, C-Pack,
  zero-content detection; full lossless codecs.
* :mod:`repro.core` — LLC architectures: the Base-Victim contribution,
  the two-tag strawmen, the uncompressed baseline and the VSC functional
  comparator.
* :mod:`repro.cache` — set-associative substrate, replacement policies,
  inclusive three-level hierarchy, stream prefetcher.
* :mod:`repro.memory` / :mod:`repro.timing` / :mod:`repro.power` — DDR3
  timing+energy, analytic core model, SRAM energy/area models.
* :mod:`repro.workloads` — the Table I synthetic trace suite and mixes.
* :mod:`repro.sim` — drivers, presets, experiment runner, reporting.

Quickstart::

    from repro import ExperimentRunner, BENCH, BASELINE_2MB, BASE_VICTIM_2MB
    runner = ExperimentRunner(BENCH)
    base = runner.run_single(BASELINE_2MB, "mcf.1")
    bv = runner.run_single(BASE_VICTIM_2MB, "mcf.1")
    print(bv.ipc / base.ipc)
"""

from repro.cache.config import CacheGeometry
from repro.compression import (
    BDICompressor,
    SC2Compressor,
    CompressedBlock,
    CompressionAlgorithm,
    CPackCompressor,
    FPCCompressor,
    make_compressor,
    SegmentGeometry,
    ZeroContentCompressor,
)
from repro.core import (
    AccessKind,
    BaseVictimLLC,
    DCCFunctionalLLC,
    LLCAccessResult,
    LLCArchitecture,
    SCCFunctionalLLC,
    TwoTagLLC,
    UncompressedLLC,
    VSCFunctionalLLC,
)
from repro.sim import (
    BASE_VICTIM_2MB,
    BASELINE_2MB,
    BENCH,
    ExperimentRunner,
    MachineConfig,
    PAPER,
    Preset,
    RunResult,
    TEST,
    TWO_TAG_2MB,
    TWO_TAG_MODIFIED_2MB,
    UNCOMPRESSED_3MB,
)
from repro.workloads import TraceSuite, build_mixes

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "BASE_VICTIM_2MB",
    "BASELINE_2MB",
    "BaseVictimLLC",
    "BDICompressor",
    "BENCH",
    "build_mixes",
    "CacheGeometry",
    "CompressedBlock",
    "CompressionAlgorithm",
    "CPackCompressor",
    "DCCFunctionalLLC",
    "ExperimentRunner",
    "FPCCompressor",
    "LLCAccessResult",
    "LLCArchitecture",
    "MachineConfig",
    "make_compressor",
    "PAPER",
    "Preset",
    "RunResult",
    "SC2Compressor",
    "SCCFunctionalLLC",
    "SegmentGeometry",
    "TEST",
    "TraceSuite",
    "TWO_TAG_2MB",
    "TWO_TAG_MODIFIED_2MB",
    "TwoTagLLC",
    "UNCOMPRESSED_3MB",
    "UncompressedLLC",
    "VSCFunctionalLLC",
    "ZeroContentCompressor",
]

"""Multi-stream hardware prefetcher.

Models the "aggressive multi-stream instruction and data prefetchers"
of Section V at the level that matters to the LLC experiments: detecting
sequential/strided streams within 4KB pages and issuing prefetch fills a
configurable degree ahead.  Prefetches are injected into the hierarchy as
:data:`~repro.core.interfaces.AccessKind.PREFETCH` requests, so they
allocate in the LLC (and optionally L2) exactly like the paper's fills.

The detector keeps a small table of recently touched pages.  Two hits to
the same page with a consistent stride train the stream; trained streams
prefetch ``degree`` lines ahead on every subsequent access.
"""

from __future__ import annotations

#: Lines per 4KB page with 64B lines.
_PAGE_LINES = 64
_PAGE_SHIFT = _PAGE_LINES.bit_length() - 1
_PAGE_MASK = _PAGE_LINES - 1


class StreamPrefetcher:
    """Per-page stride stream detector with bounded table."""

    def __init__(self, degree: int = 2, table_size: int = 64) -> None:
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        if table_size <= 0:
            raise ValueError(f"table_size must be positive, got {table_size}")
        self.degree = degree
        self.table_size = table_size
        # page -> (last_line_offset, stride, trained).  A plain dict: the
        # pop-and-reinsert below keeps LRU order through plain insertion
        # ordering, without OrderedDict's per-access overhead.
        self._table: dict[int, tuple[int, int, bool]] = {}
        self.stat_trainings = 0
        self.stat_issued = 0

    def observe(self, line_addr: int) -> list[int]:
        """Record a demand access; return line addresses to prefetch."""
        if self.degree == 0:
            return []
        table = self._table
        page = line_addr >> _PAGE_SHIFT
        offset = line_addr & _PAGE_MASK
        entry = table.pop(page, None)
        prefetches: list[int] = []
        if entry is None:
            table[page] = (offset, 0, False)
        else:
            last_offset, stride, trained = entry
            new_stride = offset - last_offset
            if new_stride == 0:
                # Same line again: keep the entry untouched.
                table[page] = (offset, stride, trained)
            elif trained and new_stride == stride:
                prefetches = self._issue(page, offset, stride)
                table[page] = (offset, stride, True)
            elif not trained and stride != 0 and new_stride == stride:
                # Second consistent stride: train and start prefetching.
                self.stat_trainings += 1
                prefetches = self._issue(page, offset, stride)
                table[page] = (offset, stride, True)
            else:
                table[page] = (offset, new_stride, False)
        while len(table) > self.table_size:
            del table[next(iter(table))]
        return prefetches

    def _issue(self, page: int, offset: int, stride: int) -> list[int]:
        """Prefetch ``degree`` lines ahead along the stream, within the page."""
        out: list[int] = []
        for ahead in range(1, self.degree + 1):
            target = offset + stride * ahead
            if 0 <= target < _PAGE_LINES:
                out.append(page * _PAGE_LINES + target)
        self.stat_issued += len(out)
        return out

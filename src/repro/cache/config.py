"""Cache geometry configuration and validation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.segments import LINE_SIZE_BYTES


class CacheConfigError(ValueError):
    """Raised for inconsistent cache geometry."""


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache.

    Parameters mirror the paper's Section V configuration, e.g. the
    single-thread LLC is ``CacheGeometry(size_bytes=2 * 2**20, associativity=16)``.
    """

    size_bytes: int
    associativity: int
    line_bytes: int = LINE_SIZE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise CacheConfigError(f"size_bytes must be positive, got {self.size_bytes}")
        if self.associativity <= 0:
            raise CacheConfigError(
                f"associativity must be positive, got {self.associativity}"
            )
        if not _is_power_of_two(self.line_bytes):
            raise CacheConfigError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise CacheConfigError(
                f"{self.size_bytes}B does not divide into "
                f"{self.associativity} ways of {self.line_bytes}B lines"
            )
        if not _is_power_of_two(self.num_sets):
            raise CacheConfigError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        """Total physical line slots."""
        return self.num_sets * self.associativity

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return self.num_sets.bit_length() - 1

    @property
    def offset_bits(self) -> int:
        """Number of byte-offset bits within a line."""
        return self.line_bytes.bit_length() - 1

    def set_index(self, line_addr: int) -> int:
        """Set index for a *line-granular* address (byte address >> offset)."""
        return line_addr & (self.num_sets - 1)

    def scaled(self, factor: float) -> CacheGeometry:
        """Shrink/grow capacity by ``factor``, keeping associativity.

        Used by the bench presets: the paper runs a 2MB LLC on 200M
        instructions; the Python benches run the same experiments on a
        geometry scaled down together with the workload footprints, which
        preserves reuse-distance/capacity ratios.
        """
        new_size = int(self.size_bytes * factor)
        min_size = self.associativity * self.line_bytes
        new_size = max(min_size, (new_size // min_size) * min_size)
        # Keep the set count a power of two.
        sets = new_size // min_size
        sets = 1 << (sets.bit_length() - 1)
        return CacheGeometry(sets * min_size, self.associativity, self.line_bytes)

    def __str__(self) -> str:
        if self.size_bytes % (1 << 20) == 0:
            size = f"{self.size_bytes >> 20}MB"
        elif self.size_bytes % (1 << 10) == 0:
            size = f"{self.size_bytes >> 10}KB"
        else:
            size = f"{self.size_bytes}B"
        return f"{size}/{self.associativity}w"

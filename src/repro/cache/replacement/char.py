"""CHAR-style hierarchy-aware replacement (simplified).

Chaudhuri et al., "Introducing Hierarchy-awareness in Replacement and
Bypass Algorithms for Last-level Caches" (PACT 2012).  The Base-Victim
paper evaluates CHAR "with 1 bit ages and not on top of SRRIP" and notes it
"uses set-dueling for learning workload cache behavior and then sends
downgrade hints on L2 cache evictions" (Section VI.B.2).  This module
implements exactly those mechanisms:

* 1-bit ages (NRU-like referenced bits),
* set-dueling between two insertion ages — "recently used" (bit set, hard
  to evict) versus "not recently used" (bit clear, evicted early) — with a
  saturating PSEL counter updated on misses to the leader sets,
* downgrade hints: the hierarchy calls :meth:`CharPolicy.on_hint` when the
  L2 evicts a line that was never re-referenced there, clearing the LLC
  age bit so dead lines are evicted earlier.

The full CHAR classifier (per-class reuse probabilities) is out of scope,
as it was in the paper's own simplified evaluation.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy

_PSEL_BITS = 10
_PSEL_MAX = (1 << _PSEL_BITS) - 1
_PSEL_INIT = _PSEL_MAX // 2
#: One leader set of each flavour per this many sets.
_DUEL_PERIOD = 32


class _CharState:
    __slots__ = ("referenced", "hand", "leader")

    def __init__(self, ways: int, leader: int) -> None:
        self.referenced = [False] * ways
        self.hand = 0
        #: +1 → always-insert-referenced leader, -1 → insert-clear leader,
        #: 0 → follower.
        self.leader = leader


class CharPolicy(ReplacementPolicy):
    """Set-dueling 1-bit-age policy with L2-eviction downgrade hints."""

    name = "char"
    metadata_bits = 1

    def __init__(self) -> None:
        self._psel = _PSEL_INIT

    def make_set_state(self, ways: int, set_index: int) -> _CharState:
        """Create fresh per-set replacement state."""
        phase = set_index % _DUEL_PERIOD
        if phase == 0:
            leader = 1
        elif phase == 1:
            leader = -1
        else:
            leader = 0
        return _CharState(ways, leader)

    def _insert_referenced(self, state: _CharState) -> bool:
        if state.leader == 1:
            return True
        if state.leader == -1:
            return False
        # Follower: low PSEL favours the insert-referenced leader.
        return self._psel <= _PSEL_INIT

    def on_hit(self, state: _CharState, way: int) -> None:
        """Update replacement state after a hit."""
        state.referenced[way] = True

    def on_fill(self, state: _CharState, way: int) -> None:
        # A fill means this set missed: charge the leader responsible.
        """Update replacement state after a fill."""
        if state.leader == 1 and self._psel < _PSEL_MAX:
            self._psel += 1
        elif state.leader == -1 and self._psel > 0:
            self._psel -= 1
        state.referenced[way] = self._insert_referenced(state)

    def choose_victim(self, state: _CharState) -> int:
        """Pick the way to evict for the next fill."""
        referenced = state.referenced
        ways = len(referenced)
        for offset in range(ways):
            way = (state.hand + offset) % ways
            if not referenced[way]:
                state.hand = (way + 1) % ways
                return way
        for way in range(ways):
            referenced[way] = False
        victim = state.hand
        state.hand = (victim + 1) % ways
        return victim

    def eligible_victims(self, state: _CharState) -> list[int]:
        """Ways ordered most-evictable first."""
        referenced = state.referenced
        ways = len(referenced)
        tier = [way for way in range(ways) if not referenced[way]]
        if tier:
            return tier
        for way in range(ways):
            referenced[way] = False
        return list(range(ways))

    def on_invalidate(self, state: _CharState, way: int) -> None:
        """Clear replacement state for an invalidated way."""
        state.referenced[way] = False

    def on_hint(self, state: _CharState, way: int) -> None:
        """Downgrade hint from an L2 eviction: age the line."""
        state.referenced[way] = False

    @property
    def psel(self) -> int:
        """Current set-dueling selector value (exposed for tests)."""
        return self._psel

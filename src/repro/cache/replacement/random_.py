"""Deterministic random replacement."""

from __future__ import annotations

from repro.cache.replacement.base import DeterministicRandom, ReplacementPolicy


class _RandomState:
    __slots__ = ("ways",)

    def __init__(self, ways: int) -> None:
        self.ways = ways


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (deterministic PRNG)."""

    name = "random"
    metadata_bits = 0

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        self._rng = DeterministicRandom(seed)

    def make_set_state(self, ways: int, set_index: int) -> _RandomState:
        """Create fresh per-set replacement state."""
        return _RandomState(ways)

    def on_hit(self, state: _RandomState, way: int) -> None:
        """Update replacement state after a hit."""
        pass

    def on_fill(self, state: _RandomState, way: int) -> None:
        """Update replacement state after a fill."""
        pass

    def choose_victim(self, state: _RandomState) -> int:
        """Pick the way to evict for the next fill."""
        return self._rng.below(state.ways)

    def eligible_victims(self, state: _RandomState) -> list[int]:
        """Random has no preference: every way is an acceptable victim."""
        return list(range(state.ways))

"""CAMP-style compression-aware replacement (simplified).

Pekhimenko et al., "Exploiting Compressed Block Size as an Indicator of
Future Reuse" (HPCA 2015) propose Compression-Aware Management Policies:
compressed block size correlates with data structure identity and hence
with reuse, so insertion priority should depend on size.  The Base-Victim
paper names adopting CAMP in the Baseline Cache as future work
(Section VII.C); this module provides that extension.

The simplification follows CAMP's SIP (Size-based Insertion Policy) idea
on an RRIP substrate with set-dueling:

* leader sets A insert every line at RRPV 2 (plain SRRIP),
* leader sets B insert *small* lines (<= half the physical line) at
  RRPV 2 and large ones at RRPV 3 (evict-soon),
* follower sets use whichever leader wins the PSEL counter.

Size reaches the policy through the
:meth:`~repro.cache.replacement.base.ReplacementPolicy.on_fill_sized`
hook that the compressed-cache architectures call.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy

_RRPV_BITS = 2
_RRPV_MAX = (1 << _RRPV_BITS) - 1
_RRPV_LONG = _RRPV_MAX - 1
_PSEL_BITS = 10
_PSEL_MAX = (1 << _PSEL_BITS) - 1
_PSEL_INIT = _PSEL_MAX // 2
_DUEL_PERIOD = 32

#: Lines at most this many segments (of 16) count as "small".
SMALL_THRESHOLD_SEGMENTS = 8


class _CAMPState:
    __slots__ = ("rrpv", "leader")

    def __init__(self, ways: int, leader: int) -> None:
        self.rrpv = [_RRPV_MAX] * ways
        self.leader = leader


class CAMPPolicy(ReplacementPolicy):
    """Size-aware insertion on an SRRIP substrate with set dueling."""

    name = "camp"
    metadata_bits = _RRPV_BITS

    def __init__(self) -> None:
        self._psel = _PSEL_INIT

    def make_set_state(self, ways: int, set_index: int) -> _CAMPState:
        """Create fresh per-set replacement state."""
        phase = set_index % _DUEL_PERIOD
        leader = 1 if phase == 0 else (-1 if phase == 1 else 0)
        return _CAMPState(ways, leader)

    def _size_aware(self, state: _CAMPState) -> bool:
        if state.leader == 1:
            return False
        if state.leader == -1:
            return True
        return self._psel > _PSEL_INIT

    def on_hit(self, state: _CAMPState, way: int) -> None:
        """Update replacement state after a hit."""
        state.rrpv[way] = 0

    def on_fill(self, state: _CAMPState, way: int) -> None:
        """Update replacement state after a fill."""
        self.on_fill_sized(state, way, None)

    def on_fill_sized(
        self, state: _CAMPState, way: int, size_segments: int | None
    ) -> None:
        """Update replacement state after a size-aware fill."""
        if state.leader == 1 and self._psel < _PSEL_MAX:
            self._psel += 1
        elif state.leader == -1 and self._psel > 0:
            self._psel -= 1
        if (
            self._size_aware(state)
            and size_segments is not None
            and size_segments > SMALL_THRESHOLD_SEGMENTS
        ):
            # Large (poorly compressing) lines: predicted low reuse.
            state.rrpv[way] = _RRPV_MAX
        else:
            state.rrpv[way] = _RRPV_LONG

    def choose_victim(self, state: _CAMPState) -> int:
        """Pick the way to evict for the next fill."""
        rrpv = state.rrpv
        while True:
            for way, value in enumerate(rrpv):
                if value >= _RRPV_MAX:
                    return way
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def eligible_victims(self, state: _CAMPState) -> list[int]:
        """Ways ordered most-evictable first."""
        rrpv = state.rrpv
        while True:
            tier = [way for way, value in enumerate(rrpv) if value >= _RRPV_MAX]
            if tier:
                return tier
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def on_invalidate(self, state: _CAMPState, way: int) -> None:
        """Clear replacement state for an invalidated way."""
        state.rrpv[way] = _RRPV_MAX

    def on_hint(self, state: _CAMPState, way: int) -> None:
        """Apply an architecture-supplied priority hint."""
        state.rrpv[way] = _RRPV_MAX

    @property
    def psel(self) -> int:
        """Current selector value (exposed for tests)."""
        return self._psel

"""Replacement policy interface.

A policy instance is shared by all sets of one cache; per-set state lives in
a small mutable object created by :meth:`ReplacementPolicy.make_set_state`.
The cache calls back into the policy on every hit, fill and invalidation,
and asks it to pick a victim way on replacement.  Invalid ways are always
preferred as victims; ``choose_victim`` is only consulted when the set is
full, exactly as in the paper's baseline cache.

Policies must be deterministic: any randomness comes from an internal
deterministic PRNG seeded at construction so that experiments reproduce
bit-for-bit.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence


class ReplacementPolicy(abc.ABC):
    """Abstract replacement policy for a set-associative cache."""

    #: Short identifier used in configuration and reports.
    name: str = "abstract"

    #: Bits of replacement metadata per line, for area accounting.
    metadata_bits: int = 0

    @abc.abstractmethod
    def make_set_state(self, ways: int, set_index: int) -> Any:
        """Create per-set policy state for a set with ``ways`` ways."""

    @abc.abstractmethod
    def on_hit(self, state: Any, way: int) -> None:
        """Update state after a hit to ``way``."""

    @abc.abstractmethod
    def on_fill(self, state: Any, way: int) -> None:
        """Update state after filling a new line into ``way``."""

    def on_fill_sized(self, state: Any, way: int, size_segments: int | None) -> None:
        """Fill hook carrying the line's compressed size.

        Compressed-cache architectures call this variant so size-aware
        policies (CAMP-style, Section VII.C) can see the size; the default
        ignores it and defers to :meth:`on_fill`.  ``size_segments`` is
        None in uncompressed caches.
        """
        self.on_fill(state, way)

    @abc.abstractmethod
    def choose_victim(self, state: Any) -> int:
        """Pick the victim way in a full set."""

    def on_invalidate(self, state: Any, way: int) -> None:
        """Update state after ``way`` is invalidated (default: no-op)."""

    def on_hint(self, state: Any, way: int) -> None:
        """React to a downgrade hint (CHAR-style); default: no-op."""

    def eligible_victims(self, state: Any) -> list[int]:
        """Ways the policy currently considers acceptable victims.

        Used by the modified two-tag architecture (Section VI.A), which
        searches "for a tag (based on NRU) which does not need to evict its
        partner" — i.e. it intersects the policy's eviction candidates with
        the fit constraint.  The default defers to :meth:`choose_victim`'s
        single answer; age-based policies override this to return their
        whole not-recently-used tier.  Implementations may age internal
        state (as NRU does when every line is referenced).
        """
        return [self.choose_victim(state)]

    def notes(self) -> str:
        """Free-form description used in experiment reports."""
        return self.name


class DeterministicRandom:
    """Tiny xorshift64* PRNG: deterministic, fast, no external state.

    Used wherever the paper says "random replacement" so results are
    reproducible across runs and platforms.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self._state = (seed or 1) & 0xFFFFFFFFFFFFFFFF

    def next(self) -> int:
        """Next 64-bit pseudo-random value."""
        x = self._state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x << 25)) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 27
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF

    def below(self, bound: int) -> int:
        """Uniform-ish integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next() % bound

    def choice(self, items: Sequence[Any]) -> Any:
        """Pick one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.below(len(items))]

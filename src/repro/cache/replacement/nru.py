"""1-bit Not Recently Used (NRU) replacement.

The paper's default LLC policy (Section V): each line has one "referenced"
bit.  Hits and fills set the bit; the victim is the first way whose bit is
clear.  When every bit is set, all bits except the just-touched way's are
cleared (the classic NRU reset) and the search repeats.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy


class _NRUState:
    __slots__ = ("referenced", "hand")

    def __init__(self, ways: int) -> None:
        self.referenced = [False] * ways
        # Rotating start position so victims spread across ways.
        self.hand = 0


class NRUPolicy(ReplacementPolicy):
    """1-bit Not Recently Used."""

    name = "nru"
    metadata_bits = 1

    def make_set_state(self, ways: int, set_index: int) -> _NRUState:
        """Create fresh per-set replacement state."""
        return _NRUState(ways)

    def on_hit(self, state: _NRUState, way: int) -> None:
        """Update replacement state after a hit."""
        state.referenced[way] = True

    def on_fill(self, state: _NRUState, way: int) -> None:
        """Update replacement state after a fill."""
        state.referenced[way] = True

    def choose_victim(self, state: _NRUState) -> int:
        # Equivalent to scanning offsets 0..ways-1 from the hand (mod
        # ways) for the first clear bit, but with C-speed index() calls:
        # first the [hand:] segment, then the wrapped [:hand] prefix.
        """Pick the way to evict for the next fill."""
        referenced = state.referenced
        ways = len(referenced)
        hand = state.hand
        try:
            victim = referenced.index(False, hand)
        except ValueError:
            try:
                victim = referenced.index(False, 0, hand)
            except ValueError:
                # All referenced: age everything and victimize at the hand.
                for way in range(ways):
                    referenced[way] = False
                victim = hand
        state.hand = victim + 1 if victim + 1 < ways else 0
        return victim

    def eligible_victims(self, state: _NRUState) -> list[int]:
        """Ways ordered most-evictable first."""
        referenced = state.referenced
        ways = len(referenced)
        tier = [
            (state.hand + offset) % ways
            for offset in range(ways)
            if not referenced[(state.hand + offset) % ways]
        ]
        if tier:
            return tier
        # Everything referenced: age all lines, then all are eligible.
        for way in range(ways):
            referenced[way] = False
        return [(state.hand + offset) % ways for offset in range(ways)]

    def on_invalidate(self, state: _NRUState, way: int) -> None:
        """Clear replacement state for an invalidated way."""
        state.referenced[way] = False

    def on_hint(self, state: _NRUState, way: int) -> None:
        """A downgrade hint clears the referenced bit (used by CHAR)."""
        state.referenced[way] = False

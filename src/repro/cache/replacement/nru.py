"""1-bit Not Recently Used (NRU) replacement.

The paper's default LLC policy (Section V): each line has one "referenced"
bit.  Hits and fills set the bit; the victim is the first way whose bit is
clear.  When every bit is set, all bits except the just-touched way's are
cleared (the classic NRU reset) and the search repeats.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy


class _NRUState:
    __slots__ = ("referenced", "hand")

    def __init__(self, ways: int) -> None:
        self.referenced = [False] * ways
        # Rotating start position so victims spread across ways.
        self.hand = 0


class NRUPolicy(ReplacementPolicy):
    """1-bit Not Recently Used."""

    name = "nru"
    metadata_bits = 1

    def make_set_state(self, ways: int, set_index: int) -> _NRUState:
        return _NRUState(ways)

    def on_hit(self, state: _NRUState, way: int) -> None:
        state.referenced[way] = True

    def on_fill(self, state: _NRUState, way: int) -> None:
        state.referenced[way] = True

    def choose_victim(self, state: _NRUState) -> int:
        referenced = state.referenced
        ways = len(referenced)
        for offset in range(ways):
            way = (state.hand + offset) % ways
            if not referenced[way]:
                state.hand = (way + 1) % ways
                return way
        # All referenced: age everything and victimize at the hand.
        for way in range(ways):
            referenced[way] = False
        victim = state.hand
        state.hand = (victim + 1) % ways
        return victim

    def eligible_victims(self, state: _NRUState) -> list[int]:
        referenced = state.referenced
        ways = len(referenced)
        tier = [
            (state.hand + offset) % ways
            for offset in range(ways)
            if not referenced[(state.hand + offset) % ways]
        ]
        if tier:
            return tier
        # Everything referenced: age all lines, then all are eligible.
        for way in range(ways):
            referenced[way] = False
        return [(state.hand + offset) % ways for offset in range(ways)]

    def on_invalidate(self, state: _NRUState, way: int) -> None:
        state.referenced[way] = False

    def on_hint(self, state: _NRUState, way: int) -> None:
        """A downgrade hint clears the referenced bit (used by CHAR)."""
        state.referenced[way] = False

"""Static Re-Reference Interval Prediction (SRRIP).

Jaleel et al., ISCA 2010 — evaluated as an advanced baseline policy in the
paper's Section VI.B.2 ("SRRIP that uses 2 bits per cache line for managing
ages").  Lines carry a 2-bit Re-Reference Prediction Value (RRPV):

* fill inserts with RRPV = 2 ("long re-reference interval"),
* a hit promotes to RRPV = 0 (hit-priority variant),
* the victim is any way with RRPV = 3; if none exists all RRPVs are
  incremented until one reaches 3.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy

_RRPV_BITS = 2
_RRPV_MAX = (1 << _RRPV_BITS) - 1  # 3
_RRPV_LONG = _RRPV_MAX - 1  # 2, insertion value


class _SRRIPState:
    __slots__ = ("rrpv",)

    def __init__(self, ways: int) -> None:
        self.rrpv = [_RRPV_MAX] * ways


class SRRIPPolicy(ReplacementPolicy):
    """2-bit SRRIP with hit-priority promotion."""

    name = "srrip"
    metadata_bits = _RRPV_BITS

    def make_set_state(self, ways: int, set_index: int) -> _SRRIPState:
        """Create fresh per-set replacement state."""
        return _SRRIPState(ways)

    def on_hit(self, state: _SRRIPState, way: int) -> None:
        """Update replacement state after a hit."""
        state.rrpv[way] = 0

    def on_fill(self, state: _SRRIPState, way: int) -> None:
        """Update replacement state after a fill."""
        state.rrpv[way] = _RRPV_LONG

    def choose_victim(self, state: _SRRIPState) -> int:
        """Pick the way to evict for the next fill."""
        rrpv = state.rrpv
        while True:
            for way, value in enumerate(rrpv):
                if value >= _RRPV_MAX:
                    return way
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def eligible_victims(self, state: _SRRIPState) -> list[int]:
        """Ways ordered most-evictable first."""
        rrpv = state.rrpv
        while True:
            tier = [way for way, value in enumerate(rrpv) if value >= _RRPV_MAX]
            if tier:
                return tier
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def on_invalidate(self, state: _SRRIPState, way: int) -> None:
        """Clear replacement state for an invalidated way."""
        state.rrpv[way] = _RRPV_MAX

    def on_hint(self, state: _SRRIPState, way: int) -> None:
        """Downgrade hint: age the line to distant re-reference."""
        state.rrpv[way] = _RRPV_MAX

"""Replacement policies for the baseline and victim caches."""

from repro.cache.replacement.base import DeterministicRandom, ReplacementPolicy
from repro.cache.replacement.camp import CAMPPolicy
from repro.cache.replacement.char import CharPolicy
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.nru import NRUPolicy
from repro.cache.replacement.random_ import RandomPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.cache.replacement.victim import (
    ECMStrictVictimPolicy,
    ECMVictimPolicy,
    LRUVictimPolicy,
    MixVictimPolicy,
    RandomVictimPolicy,
    VICTIM_POLICIES,
    VictimCandidate,
    VictimInsertionPolicy,
    make_victim_policy,
)

#: Registry of baseline replacement policies by name.
POLICIES: dict[str, type[ReplacementPolicy]] = {
    LRUPolicy.name: LRUPolicy,
    NRUPolicy.name: NRUPolicy,
    SRRIPPolicy.name: SRRIPPolicy,
    DRRIPPolicy.name: DRRIPPolicy,
    CharPolicy.name: CharPolicy,
    CAMPPolicy.name: CAMPPolicy,
    RandomPolicy.name: RandomPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a registered baseline replacement policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
    return cls()


__all__ = [
    "CAMPPolicy",
    "CharPolicy",
    "DeterministicRandom",
    "DRRIPPolicy",
    "ECMStrictVictimPolicy",
    "ECMVictimPolicy",
    "LRUPolicy",
    "LRUVictimPolicy",
    "make_policy",
    "make_victim_policy",
    "MixVictimPolicy",
    "NRUPolicy",
    "POLICIES",
    "RandomPolicy",
    "RandomVictimPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "VICTIM_POLICIES",
    "VictimCandidate",
    "VictimInsertionPolicy",
]

"""Victim Cache insertion/replacement policies for Base-Victim.

When the Baseline Cache replaces a (now clean) line, Base-Victim tries to
keep it in the Victim Cache: the line may be stored in the victim slot of
any way whose *base* partner leaves enough free segments (Section IV.B.1).
A policy chooses among those candidate ways, possibly silently evicting the
clean victim line already there.

The paper's default is "a replacement policy inspired by ECM [Baek et al.,
HPCA 2013]: we first search for the way that can fit the victim line; then
among all the candidates, we select the way with the largest size of the
base partner line" — i.e. pack the victim next to the fullest base that
still fits, preserving the emptier ways for future, larger victims.
Section VI.B.4 also tries random, LRU and a size/LRU mix; none beat ECM.
"""

from __future__ import annotations

import abc
from typing import NamedTuple, Sequence

from repro.cache.replacement.base import DeterministicRandom


class VictimCandidate(NamedTuple):
    """One way whose victim slot could receive the replaced base line.

    A NamedTuple rather than a dataclass: Base-Victim builds one list of
    these per demotion attempt, deep inside the simulation inner loop,
    and tuple construction is several times cheaper.
    """

    way: int
    base_size: int
    occupied: bool
    victim_size: int
    victim_stamp: int


class VictimInsertionPolicy(abc.ABC):
    """Chooses the victim-slot way for a replaced baseline line."""

    name: str = "abstract"

    #: Decisions made / occupied slots overwritten; bumped by the LLC so
    #: every concrete policy gets the accounting for free.
    stat_choices: int = 0
    stat_replacements: int = 0

    @abc.abstractmethod
    def choose(self, candidates: Sequence[VictimCandidate]) -> int:
        """Pick the way to insert into; ``candidates`` is non-empty."""

    def publish_observations(self, registry) -> None:
        """Publish decision counters under ``victim_policy/<name>/``."""
        scope = registry.scoped(f"victim_policy/{self.name}")
        scope.inc("choices", self.stat_choices)
        scope.inc("replacements", self.stat_replacements)

    def notes(self) -> str:
        """Free-form description used in experiment reports."""
        return self.name


class ECMVictimPolicy(VictimInsertionPolicy):
    """Paper default: prefer free slots, then the largest base partner.

    Among candidates with a free victim slot (no silent eviction needed),
    pick the one with the largest base partner; if every candidate is
    occupied, pick the occupied way with the largest base partner.
    """

    name = "ecm"

    def choose(self, candidates: Sequence[VictimCandidate]) -> int:
        # Hot path: a single pass with explicit tie-breaks instead of
        # list+max+key-tuple allocations.  Same choice as
        # max(pool, key=lambda c: (c.base_size, -c.way)) over the free
        # pool (falling back to all candidates when none are free).
        """Pick which victim-cache line to evict."""
        best_way = -1
        best_size = -1
        for c in candidates:
            if not c.occupied:
                size = c.base_size
                if size > best_size or (size == best_size and c.way < best_way):
                    best_size = size
                    best_way = c.way
        if best_way >= 0:
            return best_way
        for c in candidates:
            size = c.base_size
            if size > best_size or (size == best_size and c.way < best_way):
                best_size = size
                best_way = c.way
        return best_way


class ECMStrictVictimPolicy(VictimInsertionPolicy):
    """Literal reading of Section IV.B.1: largest base partner, full stop.

    Ignores whether the slot is occupied, so it may silently evict a victim
    even when a free slot exists.  Kept for the Section VI.B.4 ablation.
    """

    name = "ecm-strict"

    def choose(self, candidates: Sequence[VictimCandidate]) -> int:
        """Pick which victim-cache line to evict."""
        best = max(candidates, key=lambda c: (c.base_size, -c.way))
        return best.way


class RandomVictimPolicy(VictimInsertionPolicy):
    """Uniform random among fitting ways (Section IV.B's worked examples)."""

    name = "random"

    def __init__(self, seed: int = 0xBADC0DE) -> None:
        self._rng = DeterministicRandom(seed)

    def choose(self, candidates: Sequence[VictimCandidate]) -> int:
        """Pick which victim-cache line to evict."""
        return candidates[self._rng.below(len(candidates))].way


class LRUVictimPolicy(VictimInsertionPolicy):
    """Evict the least-recently-inserted/hit victim among candidates.

    Free slots (stamp 0) naturally win.  One of the Section VI.B.4
    variants; the paper found it no better than ECM.
    """

    name = "lru"

    def choose(self, candidates: Sequence[VictimCandidate]) -> int:
        """Pick which victim-cache line to evict."""
        best = min(
            candidates,
            key=lambda c: (c.victim_stamp if c.occupied else -1, c.way),
        )
        return best.way


class MixVictimPolicy(VictimInsertionPolicy):
    """Size/recency mix from Section VI.B.4.

    Prefer free slots with the largest base partner (capacity packing);
    among occupied slots, evict the stalest small victim first by ranking
    on (victim_stamp, -victim_size).
    """

    name = "mix"

    def choose(self, candidates: Sequence[VictimCandidate]) -> int:
        """Pick which victim-cache line to evict."""
        free = [c for c in candidates if not c.occupied]
        if free:
            return max(free, key=lambda c: (c.base_size, -c.way)).way
        best = min(candidates, key=lambda c: (c.victim_stamp, -c.victim_size, c.way))
        return best.way


#: Registry of victim-cache policies by name.
VICTIM_POLICIES: dict[str, type[VictimInsertionPolicy]] = {
    ECMVictimPolicy.name: ECMVictimPolicy,
    ECMStrictVictimPolicy.name: ECMStrictVictimPolicy,
    RandomVictimPolicy.name: RandomVictimPolicy,
    LRUVictimPolicy.name: LRUVictimPolicy,
    MixVictimPolicy.name: MixVictimPolicy,
}


def make_victim_policy(name: str) -> VictimInsertionPolicy:
    """Instantiate a registered victim-cache policy by name."""
    try:
        cls = VICTIM_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(VICTIM_POLICIES))
        raise ValueError(f"unknown victim policy {name!r}; known: {known}") from None
    return cls()

"""Dynamic Re-Reference Interval Prediction (DRRIP).

Jaleel et al., ISCA 2010 — the set-dueling dynamic variant of SRRIP.
The Base-Victim paper evaluates SRRIP (Section VI.B.2); DRRIP is provided
as a further advanced baseline since the architecture composes with any
policy.  Leader sets run SRRIP (insert at RRPV 2) and BRRIP (insert at
RRPV 3, occasionally 2); follower sets use whichever wins a saturating
PSEL counter updated on leader-set misses.
"""

from __future__ import annotations

from repro.cache.replacement.base import DeterministicRandom, ReplacementPolicy

_RRPV_BITS = 2
_RRPV_MAX = (1 << _RRPV_BITS) - 1  # 3
_RRPV_LONG = _RRPV_MAX - 1  # 2
_PSEL_BITS = 10
_PSEL_MAX = (1 << _PSEL_BITS) - 1
_PSEL_INIT = _PSEL_MAX // 2
_DUEL_PERIOD = 32
#: BRRIP inserts at RRPV 2 once in this many fills ("epsilon").
_BRRIP_PERIOD = 32


class _DRRIPState:
    __slots__ = ("rrpv", "leader")

    def __init__(self, ways: int, leader: int) -> None:
        self.rrpv = [_RRPV_MAX] * ways
        #: +1 -> SRRIP leader, -1 -> BRRIP leader, 0 -> follower.
        self.leader = leader


class DRRIPPolicy(ReplacementPolicy):
    """Set-dueling SRRIP/BRRIP."""

    name = "drrip"
    metadata_bits = _RRPV_BITS

    def __init__(self, seed: int = 0xD121) -> None:
        self._psel = _PSEL_INIT
        self._rng = DeterministicRandom(seed)

    def make_set_state(self, ways: int, set_index: int) -> _DRRIPState:
        """Create fresh per-set replacement state."""
        phase = set_index % _DUEL_PERIOD
        leader = 1 if phase == 0 else (-1 if phase == 1 else 0)
        return _DRRIPState(ways, leader)

    def _use_brrip(self, state: _DRRIPState) -> bool:
        if state.leader == 1:
            return False
        if state.leader == -1:
            return True
        return self._psel > _PSEL_INIT

    def on_hit(self, state: _DRRIPState, way: int) -> None:
        """Update replacement state after a hit."""
        state.rrpv[way] = 0

    def on_fill(self, state: _DRRIPState, way: int) -> None:
        # Leader-set misses steer PSEL: an SRRIP-leader miss votes BRRIP.
        """Update replacement state after a fill."""
        if state.leader == 1 and self._psel < _PSEL_MAX:
            self._psel += 1
        elif state.leader == -1 and self._psel > 0:
            self._psel -= 1
        if self._use_brrip(state):
            long_insert = self._rng.below(_BRRIP_PERIOD) == 0
            state.rrpv[way] = _RRPV_LONG if long_insert else _RRPV_MAX
        else:
            state.rrpv[way] = _RRPV_LONG

    def choose_victim(self, state: _DRRIPState) -> int:
        """Pick the way to evict for the next fill."""
        rrpv = state.rrpv
        while True:
            for way, value in enumerate(rrpv):
                if value >= _RRPV_MAX:
                    return way
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def eligible_victims(self, state: _DRRIPState) -> list[int]:
        """Ways ordered most-evictable first."""
        rrpv = state.rrpv
        while True:
            tier = [way for way, value in enumerate(rrpv) if value >= _RRPV_MAX]
            if tier:
                return tier
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def on_invalidate(self, state: _DRRIPState, way: int) -> None:
        """Clear replacement state for an invalidated way."""
        state.rrpv[way] = _RRPV_MAX

    def on_hint(self, state: _DRRIPState, way: int) -> None:
        """Apply an architecture-supplied priority hint."""
        state.rrpv[way] = _RRPV_MAX

    @property
    def psel(self) -> int:
        """Current selector value (exposed for tests)."""
        return self._psel

"""True LRU replacement.

Used in the paper's Section III/IV worked examples and as a Victim Cache
policy variant in Section VI.B.4.  Per-set state is a monotonically
increasing timestamp per way; the victim is the smallest timestamp.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy


class _LRUState:
    __slots__ = ("stamps", "clock")

    def __init__(self, ways: int) -> None:
        self.stamps = [0] * ways
        self.clock = 0


class LRUPolicy(ReplacementPolicy):
    """Least Recently Used."""

    name = "lru"
    # log2(16) bits per line for a 16-way stack position.
    metadata_bits = 4

    def make_set_state(self, ways: int, set_index: int) -> _LRUState:
        """Create fresh per-set replacement state."""
        return _LRUState(ways)

    # on_hit/on_fill are the single hottest policy calls in a run, so the
    # touch is written out in both rather than shared through a helper.
    def on_hit(self, state: _LRUState, way: int) -> None:
        """Update replacement state after a hit."""
        state.clock += 1
        state.stamps[way] = state.clock

    def on_fill(self, state: _LRUState, way: int) -> None:
        """Update replacement state after a fill."""
        state.clock += 1
        state.stamps[way] = state.clock

    def choose_victim(self, state: _LRUState) -> int:
        # index(min(...)) returns the first way holding the lowest stamp —
        # the same victim as a first-wins linear scan, at C speed.
        """Pick the way to evict for the next fill."""
        stamps = state.stamps
        return stamps.index(min(stamps))

    def eligible_victims(self, state: _LRUState) -> list[int]:
        """Bottom half of the LRU stack, least recent first."""
        order = sorted(range(len(state.stamps)), key=lambda w: state.stamps[w])
        return order[: max(1, len(order) // 2)]

    def on_invalidate(self, state: _LRUState, way: int) -> None:
        """Clear replacement state for an invalidated way."""
        state.stamps[way] = 0

    def stack_order(self, state: _LRUState) -> list[int]:
        """Ways from MRU to LRU — used by the VSC model's multi-evict fill."""
        return sorted(range(len(state.stamps)), key=lambda w: -state.stamps[w])

"""Cache substrate: geometry, replacement, plain caches, hierarchy."""

from repro.cache.config import CacheConfigError, CacheGeometry
from repro.cache.setassoc import EvictedLine, SetAssociativeCache

__all__ = [
    "CacheConfigError",
    "CacheGeometry",
    "EvictedLine",
    "SetAssociativeCache",
]

"""Three-level inclusive cache hierarchy.

Models the paper's per-core hierarchy (Section V): a 32KB 8-way L1 data
cache, a 256KB 8-way unified L2, and a shared last-level cache that is
*inclusive* of the core caches.  The LLC is any
:class:`~repro.core.interfaces.LLCArchitecture`; every line the LLC evicts
from (or demotes out of) its baseline image is back-invalidated from L1 and
L2, and modified upper-level data is written back to memory — the paper's
Section IV.A protocol, and the channel through which bad compressed-cache
replacement decisions (partner line victimization) hurt the core caches.

Writebacks are modelled explicitly: dirty L1 victims merge into the L2,
dirty L2 victims become LLC ``WRITEBACK`` accesses carrying the line's
current compressed size.  A multi-stream prefetcher (Section V) observes
demand L2 misses and injects ``PREFETCH`` fills into the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cache.config import CacheGeometry
from repro.cache.prefetch import _PAGE_MASK, _PAGE_SHIFT, StreamPrefetcher
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.setassoc import SetAssociativeCache
from repro.core.interfaces import AccessKind, LLCArchitecture

#: Levels at which an access can be served.
L1, L2, LLC, MEMORY = 1, 2, 3, 4

#: AccessKind members as plain ints (IntEnum __eq__ dispatch is
#: measurable on the demand path; see repro.core.basevictim).
_READ = int(AccessKind.READ)
_WRITEBACK = int(AccessKind.WRITEBACK)
_PREFETCH = int(AccessKind.PREFETCH)


@dataclass(slots=True)
class HierarchyStats:
    """Counters accumulated over a run."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    llc_victim_hits: int = 0
    llc_misses: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    compressed_hits: int = 0
    back_invalidations: int = 0
    silent_evictions: int = 0
    llc_data_reads: int = 0
    llc_data_writes: int = 0
    llc_fill_segments: int = 0
    llc_accesses: int = 0
    prefetch_fills: int = 0
    writebacks_to_llc: int = 0

    def merge_llc_result(self, result) -> None:
        """Fold one LLC access result into the counters."""
        self.memory_reads += result.memory_reads
        self.memory_writes += result.memory_writes
        self.silent_evictions += result.silent_evictions
        self.llc_data_reads += result.data_reads
        self.llc_data_writes += result.data_writes
        self.llc_fill_segments += result.fill_segments
        self.llc_accesses += 1


class AccessOutcome:
    """Where a demand access was served and what latency adders it incurred."""

    __slots__ = ("level", "extra_llc_cycles", "dram_latency")

    def __init__(
        self, level: int, extra_llc_cycles: int = 0, dram_latency: float = 0.0
    ) -> None:
        self.level = level
        self.extra_llc_cycles = extra_llc_cycles
        self.dram_latency = dram_latency


#: L1/L2 outcomes carry no per-access payload, so the hierarchy hands out
#: these shared instances instead of allocating one per hit.  They are
#: treated as immutable by every consumer.  LLC/MEMORY outcomes do carry
#: per-access payload; each hierarchy reuses one mutable instance per
#: level for them (see __init__), so like the shared hit outcomes an
#: AccessOutcome is only valid until the next access.
_OUTCOME_L1 = AccessOutcome(L1)
_OUTCOME_L2 = AccessOutcome(L2)


@dataclass
class HierarchyConfig:
    """Geometry knobs for the private levels (paper defaults)."""

    l1_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * 1024, 8)
    )
    l2_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * 1024, 8)
    )
    prefetch_degree: int = 2
    #: Deliver CHAR-style downgrade hints to the LLC on L2 evictions.
    l2_eviction_hints: bool = True

    def scaled(self, factor: float) -> "HierarchyConfig":
        """Scale the private caches together with the LLC (bench presets)."""
        return HierarchyConfig(
            l1_geometry=self.l1_geometry.scaled(factor),
            l2_geometry=self.l2_geometry.scaled(factor),
            prefetch_degree=self.prefetch_degree,
            l2_eviction_hints=self.l2_eviction_hints,
        )


class CacheHierarchy:
    """L1 + L2 private caches in front of a pluggable LLC architecture."""

    def __init__(
        self,
        llc: LLCArchitecture,
        size_fn: Callable[[int], int],
        config: HierarchyConfig | None = None,
        memory=None,
        size_memo: dict | None = None,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.llc = llc
        #: Maps a line address to its current compressed size in segments.
        self.size_fn = size_fn
        #: Fast lane for size_fn: a dict of current sizes kept exact by
        #: the data model's write invalidation (see LineDataModel
        #: .size_memo).  A missing address falls back to size_fn, so an
        #: empty dict (the default) simply means "always call size_fn".
        self.size_memo = {} if size_memo is None else size_memo
        #: Size-insensitive architectures (uncompressed LLCs) never read
        #: the size argument, so the miss path skips the lookup for them.
        self._uses_sizes = llc.uses_sizes
        #: Optional :class:`~repro.memory.dram.DRAMModel`; when present the
        #: hierarchy issues its reads/writes so misses get real latencies.
        self.memory = memory
        #: Current CPU cycle, set by the timing driver before each access;
        #: used as the DRAM arrival time.
        self.now = 0.0
        self.l1 = SetAssociativeCache(self.config.l1_geometry, LRUPolicy(), name="l1d")
        self.l2 = SetAssociativeCache(self.config.l2_geometry, LRUPolicy(), name="l2")
        self.prefetcher = StreamPrefetcher(degree=self.config.prefetch_degree)
        self.stats = HierarchyStats()
        self._last_read_latency = 0.0
        # Reused mutable outcomes for the miss paths (see module note on
        # the shared L1/L2 outcome instances).
        self._outcome_llc = AccessOutcome(LLC)
        self._outcome_memory = AccessOutcome(MEMORY)
        #: L1 membership mutation log for the batch engine.  When set (a
        #: list), every flat L1 slot whose tag/valid columns change is
        #: appended, letting the engine patch its probe snapshot instead
        #: of re-snapshotting the whole cache after each miss.  L1 *hits*
        #: never change membership, so only the fill/invalidate paths
        #: below log.  None (the default) disables logging.
        self._l1_log: list[int] | None = None

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """One demand load/store from the core; returns where it was served."""
        stats = self.stats
        stats.accesses += 1

        if self.l1.probe(addr, is_write):
            stats.l1_hits += 1
            return _OUTCOME_L1

        return self.access_after_l1_miss(addr, is_write)

    def access_after_l1_miss(self, addr: int, is_write: bool) -> AccessOutcome:
        """Continue a demand access whose L1 probe already missed.

        The caller is responsible for the L1 probe *and* its accounting
        (``stats.accesses``/``stats.l1_hits`` and the L1's own hit/miss
        counters) — this is the hook the single-core fast loop uses to
        inline the L1 hit path and batch those counters locally.
        """
        stats = self.stats
        l1 = self.l1
        l2 = self.l2
        # Inlined l2.probe (a demand read never dirties the L2 line).
        cset = l2._sets[addr & l2._set_mask]
        way = cset.lookup.get(addr)
        if way is not None:
            if l2._lru_inline:
                index = cset.index
                clock = l2.clocks[index] + 1
                l2.clocks[index] = clock
                l2.stamps[cset.base + way] = clock
            else:
                l2.policy.on_hit(cset.policy_state, way)
            l2.stat_hits += 1
            stats.l2_hits += 1
            self._fill_l1(addr, is_write)
            return _OUTCOME_L2
        l2.stat_misses += 1

        # L2 demand miss: train the prefetcher before the LLC access so the
        # stream runs ahead of the demand stream.  prefetcher.observe,
        # inlined (see StreamPrefetcher.observe for the commented model);
        # the branch structure is reordered but hits every table/counter
        # update in the same order with the same values.
        prefetches: list[int] | tuple[()] = ()
        prefetcher = self.prefetcher
        if prefetcher.degree:
            table = prefetcher._table
            page = addr >> _PAGE_SHIFT
            offset = addr & _PAGE_MASK
            entry = table.pop(page, None)
            if entry is None:
                table[page] = (offset, 0, False)
            else:
                last_offset, stride, trained = entry
                new_stride = offset - last_offset
                if new_stride == 0:
                    # Same line again: keep the entry untouched.
                    table[page] = entry
                elif new_stride == stride and (trained or stride != 0):
                    if not trained:
                        prefetcher.stat_trainings += 1
                    prefetches = prefetcher._issue(page, offset, stride)
                    table[page] = (offset, stride, True)
                else:
                    table[page] = (offset, new_stride, False)
            while len(table) > prefetcher.table_size:
                del table[next(iter(table))]

        if self._uses_sizes:
            # size_memo first (one dict probe); size_fn computes-and-memoises
            # on a miss, so steady state never leaves the dict.
            size = self.size_memo.get(addr)
            if size is None:
                size = self.size_fn(addr)
        else:
            size = 1
        result = self.llc.access(addr, _READ, size)
        # merge_llc_result, unrolled: this is the hottest stats callsite.
        stats.memory_reads += result.memory_reads
        stats.memory_writes += result.memory_writes
        stats.silent_evictions += result.silent_evictions
        stats.llc_data_reads += result.data_reads
        stats.llc_data_writes += result.data_writes
        stats.llc_fill_segments += result.fill_segments
        stats.llc_accesses += 1
        # Inlined _account_memory(demand=True).
        memory = self.memory
        read_latency = 0.0
        if memory is not None:
            now = self.now
            if result.memory_reads:
                read_latency = memory.read(addr, now)
            for _ in range(result.memory_writes):
                memory.write(addr, now)
        self._last_read_latency = read_latency
        if result.invalidates:
            self._process_invalidates(result)
        extra = self.llc.extra_tag_cycles
        if result.hit:
            stats.llc_hits += 1
            if result.victim_hit:
                stats.llc_victim_hits += 1
            if result.compressed_hit:
                stats.compressed_hits += 1
                extra += _decompression_cycles(self.llc)
            outcome = self._outcome_llc
            outcome.extra_llc_cycles = extra
        else:
            stats.llc_misses += 1
            outcome = self._outcome_memory
            outcome.extra_llc_cycles = extra
            outcome.dram_latency = read_latency

        self._fill_l2(addr)
        self._fill_l1(addr, is_write)
        for target in prefetches:
            self._prefetch(target)
        return outcome

    # ------------------------------------------------------------------
    # Fills, writebacks, invalidations
    # ------------------------------------------------------------------

    def _fill_l1(self, addr: int, is_write: bool) -> None:
        # l1.fill, inlined and specialised: the L1 is always LRU (see
        # __init__), every caller has already established the L1 miss (so
        # the fill-of-present-line protocol check cannot fire), and the
        # victim travels as two locals instead of an EvictedLine.
        l1 = self.l1
        cset = l1._sets[addr & l1._set_mask]
        valid = l1.valid
        tags = l1.tags
        dirty_bits = l1.dirty
        stamps = l1.stamps
        base = cset.base
        ways = l1.ways
        victim_dirty = False
        victim_addr = 0
        if cset.valid_count == ways:
            seg = stamps[base : base + ways]
            slot = base + seg.index(min(seg))
            victim_addr = tags[slot]
            victim_dirty = dirty_bits[slot]
            del cset.lookup[victim_addr]
            l1.stat_evictions += 1
            if victim_dirty:
                l1.stat_writebacks += 1
        else:
            slot = valid.index(False, base, base + ways)
            cset.valid_count += 1
        tags[slot] = addr
        valid[slot] = True
        dirty_bits[slot] = is_write
        cset.lookup[addr] = slot - base
        index = cset.index
        clock = l1.clocks[index] + 1
        l1.clocks[index] = clock
        stamps[slot] = clock
        log = self._l1_log
        if log is not None:
            log.append(slot)
        if victim_dirty:
            # Dirty L1 victim merges into the (inclusive) L2.
            if not self.l2.probe(victim_addr, is_write=True):
                # Inclusion guarantees presence; refill defensively if not.
                self._fill_l2(victim_addr, dirty=True)

    def _fill_l2(self, addr: int, dirty: bool = False) -> None:
        # l2.fill, inlined and specialised exactly like _fill_l1 above:
        # always-LRU L2, caller-established miss, victim kept in locals.
        l2 = self.l2
        cset = l2._sets[addr & l2._set_mask]
        valid = l2.valid
        tags = l2.tags
        dirty_bits = l2.dirty
        stamps = l2.stamps
        clocks = l2.clocks
        base = cset.base
        ways = l2.ways
        index = cset.index
        if cset.valid_count < ways:
            slot = valid.index(False, base, base + ways)
            cset.valid_count += 1
            tags[slot] = addr
            valid[slot] = True
            dirty_bits[slot] = dirty
            cset.lookup[addr] = slot - base
            clock = clocks[index] + 1
            clocks[index] = clock
            stamps[slot] = clock
            return
        seg = stamps[base : base + ways]
        slot = base + seg.index(min(seg))
        victim_addr = tags[slot]
        victim_dirty = dirty_bits[slot]
        del cset.lookup[victim_addr]
        l2.stat_evictions += 1
        if victim_dirty:
            l2.stat_writebacks += 1
        tags[slot] = addr
        dirty_bits[slot] = dirty
        cset.lookup[addr] = slot - base
        clock = clocks[index] + 1
        clocks[index] = clock
        stamps[slot] = clock

        # L1 must not outlive its L2 copy (inclusive pair).  l1.invalidate,
        # inlined (always-LRU L1, same as _fill_l1).
        l1 = self.l1
        l1set = l1._sets[victim_addr & l1._set_mask]
        l1way = l1set.lookup.pop(victim_addr, None)
        was_dirty = victim_dirty
        if l1way is not None:
            l1slot = l1set.base + l1way
            was_dirty = was_dirty or l1.dirty[l1slot]
            l1.valid[l1slot] = False
            l1.dirty[l1slot] = False
            l1set.valid_count -= 1
            l1.stamps[l1slot] = 0
            log = self._l1_log
            if log is not None:
                log.append(l1slot)
        if was_dirty:
            stats = self.stats
            stats.writebacks_to_llc += 1
            if self._uses_sizes:
                size = self.size_memo.get(victim_addr)
                if size is None:
                    size = self.size_fn(victim_addr)
            else:
                size = 1
            result = self.llc.access(victim_addr, _WRITEBACK, size)
            # merge_llc_result, unrolled (second-hottest stats callsite).
            stats.memory_reads += result.memory_reads
            stats.memory_writes += result.memory_writes
            stats.silent_evictions += result.silent_evictions
            stats.llc_data_reads += result.data_reads
            stats.llc_data_writes += result.data_writes
            stats.llc_fill_segments += result.fill_segments
            stats.llc_accesses += 1
            # Inlined _account_memory(demand=False).
            self._last_read_latency = 0.0
            memory = self.memory
            if memory is not None:
                now = self.now
                if result.memory_reads:
                    memory.read(victim_addr, now)
                for _ in range(result.memory_writes):
                    memory.write(victim_addr, now)
            if result.invalidates:
                self._process_invalidates(result)
        elif self.config.l2_eviction_hints:
            # Clean, unreused L2 eviction: CHAR-style downgrade hint.
            self.llc.hint_downgrade(victim_addr)

    def _prefetch(self, addr: int) -> None:
        """Inject one hardware prefetch into the LLC."""
        llc = self.llc
        if llc.contains(addr):
            return  # a prefetch hit is dropped without touching any state
        if self._uses_sizes:
            size = self.size_memo.get(addr)
            if size is None:
                size = self.size_fn(addr)
        else:
            size = 1
        result = llc.access(addr, _PREFETCH, size)
        stats = self.stats
        # merge_llc_result, unrolled.
        stats.memory_reads += result.memory_reads
        stats.memory_writes += result.memory_writes
        stats.silent_evictions += result.silent_evictions
        stats.llc_data_reads += result.data_reads
        stats.llc_data_writes += result.data_writes
        stats.llc_fill_segments += result.fill_segments
        stats.llc_accesses += 1
        # Inlined _account_memory(demand=False).
        self._last_read_latency = 0.0
        memory = self.memory
        if memory is not None:
            now = self.now
            if result.memory_reads:
                memory.read(addr, now)
            for _ in range(result.memory_writes):
                memory.write(addr, now)
        if result.invalidates:
            self._process_invalidates(result)
        if not result.hit:
            stats.prefetch_fills += 1

    def _process_invalidates(self, result) -> None:
        """Back-invalidate lines the LLC dropped from its baseline image."""
        l1 = self.l1
        l2 = self.l2
        log = self._l1_log
        # Counters batch in locals and flush once after the loop (the
        # same pattern as the engines' post-loop flush).
        back_invalidations = 0
        memory_writes = 0
        for addr, wrote_back in result.invalidates:
            # l1/l2.invalidate, inlined (both are always LRU; most lines
            # the LLC drops are long gone from the private levels, so the
            # common case is two failed dict pops).
            cset = l1._sets[addr & l1._set_mask]
            way = cset.lookup.pop(addr, None)
            if way is None:
                present = dirty = False
            else:
                present = True
                slot = cset.base + way
                dirty = l1.dirty[slot]
                l1.valid[slot] = False
                l1.dirty[slot] = False
                cset.valid_count -= 1
                l1.stamps[slot] = 0
                if log is not None:
                    log.append(slot)
            cset = l2._sets[addr & l2._set_mask]
            way = cset.lookup.pop(addr, None)
            if way is not None:
                present = True
                slot = cset.base + way
                dirty = dirty or l2.dirty[slot]
                l2.valid[slot] = False
                l2.dirty[slot] = False
                cset.valid_count -= 1
                l2.stamps[slot] = 0
            if present:
                back_invalidations += 1
            if dirty and not wrote_back:
                # Most-recent data lived upstream; it must reach memory.
                memory_writes += 1
                if self.memory is not None:
                    self.memory.write(addr, self.now)
        if back_invalidations or memory_writes:
            stats = self.stats
            stats.back_invalidations += back_invalidations
            stats.memory_writes += memory_writes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def publish_observations(self, registry, include_llc: bool = True) -> None:
        """Publish the hit/miss breakdown and per-level counters.

        ``include_llc=False`` lets multi-program drivers publish each
        thread's private-level counters without double-counting the
        shared LLC, which the mix driver publishes once itself.
        """
        stats = self.stats
        hits = registry.scoped("hits")
        hits.inc("l1", stats.l1_hits)
        hits.inc("l2", stats.l2_hits)
        hits.inc("llc_base", stats.llc_hits - stats.llc_victim_hits)
        hits.inc("llc_victim", stats.llc_victim_hits)
        hits.inc("memory", stats.llc_misses)
        scope = registry.scoped("hierarchy")
        scope.inc("accesses", stats.accesses)
        scope.inc("compressed_hits", stats.compressed_hits)
        scope.inc("back_invalidations", stats.back_invalidations)
        scope.inc("memory_reads", stats.memory_reads)
        scope.inc("memory_writes", stats.memory_writes)
        scope.inc("prefetch_fills", stats.prefetch_fills)
        scope.inc("writebacks_to_llc", stats.writebacks_to_llc)
        self.l1.publish_observations(registry)
        self.l2.publish_observations(registry)
        if include_llc:
            self.llc.publish_observations(registry)

    def check_inclusion(self) -> None:
        """Verify L1 ⊆ L2 ⊆ LLC; used by the integration tests."""
        for addr in self.l1.resident_lines():
            if not self.l2.contains(addr):
                raise AssertionError(f"L1 line {addr:#x} missing from L2")
        for addr in self.l2.resident_lines():
            if not self.llc.contains(addr):
                raise AssertionError(f"L2 line {addr:#x} missing from LLC")


def _decompression_cycles(llc: LLCArchitecture) -> int:
    """Decompression latency adder; BDI costs 2 cycles (Section V)."""
    return 2

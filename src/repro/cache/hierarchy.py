"""Three-level inclusive cache hierarchy.

Models the paper's per-core hierarchy (Section V): a 32KB 8-way L1 data
cache, a 256KB 8-way unified L2, and a shared last-level cache that is
*inclusive* of the core caches.  The LLC is any
:class:`~repro.core.interfaces.LLCArchitecture`; every line the LLC evicts
from (or demotes out of) its baseline image is back-invalidated from L1 and
L2, and modified upper-level data is written back to memory — the paper's
Section IV.A protocol, and the channel through which bad compressed-cache
replacement decisions (partner line victimization) hurt the core caches.

Writebacks are modelled explicitly: dirty L1 victims merge into the L2,
dirty L2 victims become LLC ``WRITEBACK`` accesses carrying the line's
current compressed size.  A multi-stream prefetcher (Section V) observes
demand L2 misses and injects ``PREFETCH`` fills into the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cache.config import CacheGeometry
from repro.cache.prefetch import StreamPrefetcher
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.setassoc import SetAssociativeCache
from repro.core.interfaces import AccessKind, LLCArchitecture

#: Levels at which an access can be served.
L1, L2, LLC, MEMORY = 1, 2, 3, 4


@dataclass
class HierarchyStats:
    """Counters accumulated over a run."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    llc_victim_hits: int = 0
    llc_misses: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    compressed_hits: int = 0
    back_invalidations: int = 0
    silent_evictions: int = 0
    llc_data_reads: int = 0
    llc_data_writes: int = 0
    llc_fill_segments: int = 0
    llc_accesses: int = 0
    prefetch_fills: int = 0
    writebacks_to_llc: int = 0

    def merge_llc_result(self, result) -> None:
        """Fold one LLC access result into the counters."""
        self.memory_reads += result.memory_reads
        self.memory_writes += result.memory_writes
        self.silent_evictions += result.silent_evictions
        self.llc_data_reads += result.data_reads
        self.llc_data_writes += result.data_writes
        self.llc_fill_segments += result.fill_segments
        self.llc_accesses += 1


class AccessOutcome:
    """Where a demand access was served and what latency adders it incurred."""

    __slots__ = ("level", "extra_llc_cycles", "dram_latency")

    def __init__(
        self, level: int, extra_llc_cycles: int = 0, dram_latency: float = 0.0
    ) -> None:
        self.level = level
        self.extra_llc_cycles = extra_llc_cycles
        self.dram_latency = dram_latency


@dataclass
class HierarchyConfig:
    """Geometry knobs for the private levels (paper defaults)."""

    l1_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(32 * 1024, 8)
    )
    l2_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * 1024, 8)
    )
    prefetch_degree: int = 2
    #: Deliver CHAR-style downgrade hints to the LLC on L2 evictions.
    l2_eviction_hints: bool = True

    def scaled(self, factor: float) -> "HierarchyConfig":
        """Scale the private caches together with the LLC (bench presets)."""
        return HierarchyConfig(
            l1_geometry=self.l1_geometry.scaled(factor),
            l2_geometry=self.l2_geometry.scaled(factor),
            prefetch_degree=self.prefetch_degree,
            l2_eviction_hints=self.l2_eviction_hints,
        )


class CacheHierarchy:
    """L1 + L2 private caches in front of a pluggable LLC architecture."""

    def __init__(
        self,
        llc: LLCArchitecture,
        size_fn: Callable[[int], int],
        config: HierarchyConfig | None = None,
        memory=None,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.llc = llc
        #: Maps a line address to its current compressed size in segments.
        self.size_fn = size_fn
        #: Optional :class:`~repro.memory.dram.DRAMModel`; when present the
        #: hierarchy issues its reads/writes so misses get real latencies.
        self.memory = memory
        #: Current CPU cycle, set by the timing driver before each access;
        #: used as the DRAM arrival time.
        self.now = 0.0
        self.l1 = SetAssociativeCache(self.config.l1_geometry, LRUPolicy(), name="l1d")
        self.l2 = SetAssociativeCache(self.config.l2_geometry, LRUPolicy(), name="l2")
        self.prefetcher = StreamPrefetcher(degree=self.config.prefetch_degree)
        self.stats = HierarchyStats()
        self._last_read_latency = 0.0

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """One demand load/store from the core; returns where it was served."""
        stats = self.stats
        stats.accesses += 1

        if self.l1.probe(addr, is_write):
            stats.l1_hits += 1
            return AccessOutcome(L1)

        if self.l2.probe(addr):
            stats.l2_hits += 1
            self._fill_l1(addr, is_write)
            return AccessOutcome(L2)

        # L2 demand miss: train the prefetcher before the LLC access so the
        # stream runs ahead of the demand stream.
        prefetches = self.prefetcher.observe(addr)

        result = self.llc.access(addr, AccessKind.READ, self.size_fn(addr))
        stats.merge_llc_result(result)
        self._account_memory(addr, result, demand=True)
        self._process_invalidates(result)
        extra = self.llc.extra_tag_cycles
        if result.hit:
            stats.llc_hits += 1
            if result.victim_hit:
                stats.llc_victim_hits += 1
            if result.compressed_hit:
                stats.compressed_hits += 1
                extra += _decompression_cycles(self.llc)
            outcome = AccessOutcome(LLC, extra)
        else:
            stats.llc_misses += 1
            outcome = AccessOutcome(MEMORY, extra, self._last_read_latency)

        self._fill_l2(addr)
        self._fill_l1(addr, is_write)
        for target in prefetches:
            self._prefetch(target)
        return outcome

    # ------------------------------------------------------------------
    # Fills, writebacks, invalidations
    # ------------------------------------------------------------------

    def _fill_l1(self, addr: int, is_write: bool) -> None:
        victim = self.l1.fill(addr, dirty=is_write)
        if victim is not None and victim.dirty:
            # Dirty L1 victim merges into the (inclusive) L2.
            if not self.l2.probe(victim.addr, is_write=True):
                # Inclusion guarantees presence; refill defensively if not.
                self._fill_l2(victim.addr, dirty=True)

    def _fill_l2(self, addr: int, dirty: bool = False) -> None:
        victim = self.l2.fill(addr, dirty=dirty)
        if victim is None:
            return
        # L1 must not outlive its L2 copy (inclusive pair).
        present, l1_dirty = self.l1.invalidate(victim.addr)
        was_dirty = victim.dirty or (present and l1_dirty)
        if was_dirty:
            self.stats.writebacks_to_llc += 1
            result = self.llc.access(
                victim.addr, AccessKind.WRITEBACK, self.size_fn(victim.addr)
            )
            self.stats.merge_llc_result(result)
            self._account_memory(victim.addr, result, demand=False)
            self._process_invalidates(result)
        elif self.config.l2_eviction_hints:
            # Clean, unreused L2 eviction: CHAR-style downgrade hint.
            self.llc.hint_downgrade(victim.addr)

    def _prefetch(self, addr: int) -> None:
        """Inject one hardware prefetch into the LLC."""
        if self.llc.contains(addr):
            return  # a prefetch hit is dropped without touching any state
        result = self.llc.access(addr, AccessKind.PREFETCH, self.size_fn(addr))
        self.stats.merge_llc_result(result)
        self._account_memory(addr, result, demand=False)
        self._process_invalidates(result)
        if not result.hit:
            self.stats.prefetch_fills += 1

    def _process_invalidates(self, result) -> None:
        """Back-invalidate lines the LLC dropped from its baseline image."""
        for addr, wrote_back in result.invalidates:
            p1, d1 = self.l1.invalidate(addr)
            p2, d2 = self.l2.invalidate(addr)
            if p1 or p2:
                self.stats.back_invalidations += 1
            if (d1 or d2) and not wrote_back:
                # Most-recent data lived upstream; it must reach memory.
                self.stats.memory_writes += 1
                if self.memory is not None:
                    self.memory.write(addr, self.now)

    def _account_memory(self, addr: int, result, demand: bool) -> None:
        """Issue the DRAM traffic of one LLC access to the memory model."""
        self._last_read_latency = 0.0
        if self.memory is None:
            return
        if result.memory_reads:
            latency = self.memory.read(addr, self.now)
            if demand:
                self._last_read_latency = latency
        for _ in range(result.memory_writes):
            self.memory.write(addr, self.now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def publish_observations(self, registry, include_llc: bool = True) -> None:
        """Publish the hit/miss breakdown and per-level counters.

        ``include_llc=False`` lets multi-program drivers publish each
        thread's private-level counters without double-counting the
        shared LLC, which the mix driver publishes once itself.
        """
        stats = self.stats
        hits = registry.scoped("hits")
        hits.inc("l1", stats.l1_hits)
        hits.inc("l2", stats.l2_hits)
        hits.inc("llc_base", stats.llc_hits - stats.llc_victim_hits)
        hits.inc("llc_victim", stats.llc_victim_hits)
        hits.inc("memory", stats.llc_misses)
        scope = registry.scoped("hierarchy")
        scope.inc("accesses", stats.accesses)
        scope.inc("compressed_hits", stats.compressed_hits)
        scope.inc("back_invalidations", stats.back_invalidations)
        scope.inc("memory_reads", stats.memory_reads)
        scope.inc("memory_writes", stats.memory_writes)
        scope.inc("prefetch_fills", stats.prefetch_fills)
        scope.inc("writebacks_to_llc", stats.writebacks_to_llc)
        self.l1.publish_observations(registry)
        self.l2.publish_observations(registry)
        if include_llc:
            self.llc.publish_observations(registry)

    def check_inclusion(self) -> None:
        """Verify L1 ⊆ L2 ⊆ LLC; used by the integration tests."""
        for addr in self.l1.resident_lines():
            if not self.l2.contains(addr):
                raise AssertionError(f"L1 line {addr:#x} missing from L2")
        for addr in self.l2.resident_lines():
            if not self.llc.contains(addr):
                raise AssertionError(f"L2 line {addr:#x} missing from LLC")


def _decompression_cycles(llc: LLCArchitecture) -> int:
    """Decompression latency adder; BDI costs 2 cycles (Section V)."""
    return 2

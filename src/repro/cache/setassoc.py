"""Uncompressed set-associative cache over flat columnar storage.

This is the substrate used for the private L1/L2 caches, for the
uncompressed-LLC baseline, and as the lockstep *shadow cache* that the test
suite runs next to Base-Victim to check the paper's structural guarantee
(the Baseline Cache always mirrors an uncompressed cache).

The cache is line-granular and trace-driven: addresses are line numbers
(byte address >> log2(line size)).  It separates ``probe`` (lookup + policy
update on hit) from ``fill`` (allocation + victim eviction) so a hierarchy
can thread misses through lower levels before filling.

Storage layout (PR 6): one flat column per field across *all* sets —
``tags``/``valid``/``dirty`` always, plus ``stamps``/``clocks`` for the
inline LRU policy and ``referenced``/``hands`` for the inline NRU policy.
Way ``w`` of set ``s`` lives at index ``s * ways + w``; each
:class:`_Set` handle carries that base offset next to its lookup dict.
The columns are plain Python lists, deliberately: CPython indexes lists
2-4x faster than ``array.array``/NumPy scalars, and the scalar engines
touch these columns on every access, while the batch engine's vectorised
probe snapshots a whole column with a single C call
(``numpy.array(cache.tags)``) once per chunk — see
:mod:`repro.sim.batch`.  Replacement policies outside the two inline
fast paths keep their opaque per-set state objects, unchanged.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.cache.config import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.nru import NRUPolicy


class EvictedLine(NamedTuple):
    """A line pushed out of the cache by a fill or invalidation."""

    addr: int
    dirty: bool


class _Set:
    """Per-set handle: lookup dict plus this set's offset into the columns."""

    __slots__ = ("index", "base", "lookup", "policy_state", "valid_count")

    def __init__(self, index: int, base: int, policy_state: object) -> None:
        self.index = index
        #: Flat-column offset of way 0: ``index * ways``.
        self.base = base
        #: addr -> way, kept in sync with tags/valid for O(1) lookup.
        self.lookup: dict[int, int] = {}
        #: Opaque per-set state for non-inline policies; None for the
        #: inline LRU/NRU paths, whose state lives in the flat columns
        #: (a single source of truth — a stale reader fails loudly).
        self.policy_state = policy_state
        self.valid_count = 0


class SetAssociativeCache:
    """Plain (uncompressed) set-associative, write-back, write-allocate cache."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        name: str = "cache",
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        self.name = name
        ways = geometry.associativity
        num_sets = geometry.num_sets
        self.ways = ways
        self._set_mask = num_sets - 1
        #: The private L1/L2 caches are always LRU and the default LLC
        #: policy is NRU; for exactly those policy classes, probe/fill
        #: apply the touch inline on the flat columns instead of through
        #: a method call per access.  Any other policy (or subclass)
        #: takes the generic path over per-set state objects.
        self._lru_inline = type(policy) is LRUPolicy
        self._nru_inline = type(policy) is NRUPolicy
        inline = self._lru_inline or self._nru_inline

        total = num_sets * ways
        self.tags = [0] * total
        self.valid = [False] * total
        self.dirty = [False] * total
        #: LRU columns (inline path only): per-way timestamps and a
        #: per-set clock.
        self.stamps = [0] * total if self._lru_inline else None
        self.clocks = [0] * num_sets if self._lru_inline else None
        #: NRU columns (inline path only): per-way referenced bits and a
        #: per-set rotating hand.
        self.referenced = [False] * total if self._nru_inline else None
        self.hands = [0] * num_sets if self._nru_inline else None

        self._sets = [
            _Set(
                index,
                index * ways,
                None if inline else policy.make_set_state(ways, index),
            )
            for index in range(num_sets)
        ]
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_evictions = 0
        self.stat_writebacks = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def probe(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; update policy and dirty bit on hit."""
        cset = self._sets[addr & self._set_mask]
        way = cset.lookup.get(addr)
        if way is None:
            self.stat_misses += 1
            return False
        if self._lru_inline:
            index = cset.index
            clock = self.clocks[index] + 1
            self.clocks[index] = clock
            self.stamps[cset.base + way] = clock
        elif self._nru_inline:
            self.referenced[cset.base + way] = True
        else:
            self.policy.on_hit(cset.policy_state, way)
        if is_write:
            self.dirty[cset.base + way] = True
        self.stat_hits += 1
        return True

    def fill(self, addr: int, dirty: bool = False) -> EvictedLine | None:
        """Allocate ``addr``, evicting a victim if the set is full.

        Returns the evicted line (with its dirty state) or None.  Filling
        an address already present is rejected — that indicates a protocol
        bug in the caller.
        """
        cset = self._sets[addr & self._set_mask]
        lookup = cset.lookup
        if addr in lookup:
            raise ValueError(f"{self.name}: fill of already-present line {addr:#x}")
        base = cset.base
        ways = self.ways
        tags = self.tags
        dirty_bits = self.dirty
        valid = self.valid
        victim: EvictedLine | None = None
        if cset.valid_count == ways:
            if self._lru_inline:
                # Inline LRUPolicy.choose_victim: oldest stamp, first
                # way on ties (index() returns the first minimum).
                seg = self.stamps[base : base + ways]
                way = seg.index(min(seg))
            elif self._nru_inline:
                # Inline NRUPolicy.choose_victim: first clear referenced
                # bit from the rotating hand, with the classic reset when
                # every bit is set.
                referenced = self.referenced
                index = cset.index
                hand = self.hands[index]
                try:
                    way = referenced.index(False, base + hand, base + ways) - base
                except ValueError:
                    try:
                        way = referenced.index(False, base, base + hand) - base
                    except ValueError:
                        for w in range(base, base + ways):
                            referenced[w] = False
                        way = hand
                self.hands[index] = way + 1 if way + 1 < ways else 0
            else:
                way = self.policy.choose_victim(cset.policy_state)
            slot = base + way
            victim = EvictedLine(tags[slot], dirty_bits[slot])
            del lookup[tags[slot]]
            self.stat_evictions += 1
            if victim.dirty:
                self.stat_writebacks += 1
        else:
            way = valid.index(False, base, base + ways) - base
            slot = base + way
            cset.valid_count += 1
        tags[slot] = addr
        valid[slot] = True
        dirty_bits[slot] = dirty
        lookup[addr] = way
        if self._lru_inline:
            index = cset.index
            clock = self.clocks[index] + 1
            self.clocks[index] = clock
            self.stamps[slot] = clock
        elif self._nru_inline:
            self.referenced[slot] = True
        else:
            self.policy.on_fill(cset.policy_state, way)
        return victim

    def access(self, addr: int, is_write: bool = False) -> tuple[bool, EvictedLine | None]:
        """Probe-and-allocate convenience for standalone (single-level) use."""
        if self.probe(addr, is_write):
            return True, None
        victim = self.fill(addr, dirty=is_write)
        return False, victim

    def invalidate(self, addr: int) -> tuple[bool, bool]:
        """Remove ``addr`` if present; returns (was_present, was_dirty)."""
        cset = self._sets[addr & self._set_mask]
        way = cset.lookup.pop(addr, None)
        if way is None:
            return False, False
        slot = cset.base + way
        was_dirty = self.dirty[slot]
        self.valid[slot] = False
        self.dirty[slot] = False
        cset.valid_count -= 1
        if self._lru_inline:
            # Inlined LRUPolicy.on_invalidate: free ways age to stamp 0.
            self.stamps[slot] = 0
        elif self._nru_inline:
            # Inlined NRUPolicy.on_invalidate.
            self.referenced[slot] = False
        else:
            self.policy.on_invalidate(cset.policy_state, way)
        return True, was_dirty

    def hint_downgrade(self, addr: int) -> None:
        """Deliver a CHAR-style downgrade hint for ``addr`` if present."""
        cset = self._sets[addr & self._set_mask]
        way = cset.lookup.get(addr)
        if way is not None:
            if self._nru_inline:
                # Inlined NRUPolicy.on_hint: clear the referenced bit.
                self.referenced[cset.base + way] = False
            else:
                self.policy.on_hint(cset.policy_state, way)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def publish_observations(self, registry) -> None:
        """Publish this cache's counters under its own name prefix."""
        scope = registry.scoped(self.name)
        scope.inc("hits", self.stat_hits)
        scope.inc("misses", self.stat_misses)
        scope.inc("evictions", self.stat_evictions)
        scope.inc("writebacks", self.stat_writebacks)

    def contains(self, addr: int) -> bool:
        """True iff ``addr`` is currently cached."""
        return addr in self._sets[addr & self._set_mask].lookup

    def is_dirty(self, addr: int) -> bool:
        """True iff ``addr`` is cached and modified."""
        cset = self._sets[addr & self._set_mask]
        way = cset.lookup.get(addr)
        return way is not None and self.dirty[cset.base + way]

    def resident_lines(self) -> Iterator[int]:
        """All currently cached line addresses."""
        for cset in self._sets:
            yield from cset.lookup

    def set_contents(self, set_index: int) -> list[int]:
        """Valid line addresses in one set (order is way order)."""
        base = set_index * self.ways
        return [
            self.tags[base + w]
            for w in range(self.ways)
            if self.valid[base + w]
        ]

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(len(cset.lookup) for cset in self._sets)

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.name}, {self.geometry}, "
            f"policy={self.policy.name})"
        )

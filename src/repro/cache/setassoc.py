"""Uncompressed set-associative cache.

This is the substrate used for the private L1/L2 caches, for the
uncompressed-LLC baseline, and as the lockstep *shadow cache* that the test
suite runs next to Base-Victim to check the paper's structural guarantee
(the Baseline Cache always mirrors an uncompressed cache).

The cache is line-granular and trace-driven: addresses are line numbers
(byte address >> log2(line size)).  It separates ``probe`` (lookup + policy
update on hit) from ``fill`` (allocation + victim eviction) so a hierarchy
can thread misses through lower levels before filling.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.cache.config import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.nru import NRUPolicy


class EvictedLine(NamedTuple):
    """A line pushed out of the cache by a fill or invalidation."""

    addr: int
    dirty: bool


class _Set:
    """One cache set: per-way tag/valid/dirty plus policy state."""

    __slots__ = ("tags", "valid", "dirty", "policy_state", "lookup", "valid_count")

    def __init__(self, ways: int, policy_state: object) -> None:
        self.tags = [0] * ways
        self.valid = [False] * ways
        self.dirty = [False] * ways
        self.policy_state = policy_state
        #: addr -> way, kept in sync with tags/valid for O(1) lookup.
        self.lookup: dict[int, int] = {}
        self.valid_count = 0


class SetAssociativeCache:
    """Plain (uncompressed) set-associative, write-back, write-allocate cache."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        name: str = "cache",
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        self.name = name
        ways = geometry.associativity
        self._sets = [
            _Set(ways, policy.make_set_state(ways, index))
            for index in range(geometry.num_sets)
        ]
        self._set_mask = geometry.num_sets - 1
        #: The private L1/L2 caches are always LRU and the default LLC
        #: policy is NRU; for exactly those policy classes, probe/fill
        #: apply the touch inline instead of through a method call per
        #: access.  Any other policy (or subclass) takes the generic path.
        self._lru_inline = type(policy) is LRUPolicy
        self._nru_inline = type(policy) is NRUPolicy
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_evictions = 0
        self.stat_writebacks = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def probe(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; update policy and dirty bit on hit."""
        cset = self._sets[addr & self._set_mask]
        way = cset.lookup.get(addr)
        if way is None:
            self.stat_misses += 1
            return False
        if self._lru_inline:
            state = cset.policy_state
            state.clock += 1
            state.stamps[way] = state.clock
        elif self._nru_inline:
            cset.policy_state.referenced[way] = True
        else:
            self.policy.on_hit(cset.policy_state, way)
        if is_write:
            cset.dirty[way] = True
        self.stat_hits += 1
        return True

    def fill(self, addr: int, dirty: bool = False) -> EvictedLine | None:
        """Allocate ``addr``, evicting a victim if the set is full.

        Returns the evicted line (with its dirty state) or None.  Filling
        an address already present is rejected — that indicates a protocol
        bug in the caller.
        """
        cset = self._sets[addr & self._set_mask]
        lookup = cset.lookup
        if addr in lookup:
            raise ValueError(f"{self.name}: fill of already-present line {addr:#x}")
        tags = cset.tags
        dirty_bits = cset.dirty
        victim: EvictedLine | None = None
        valid = cset.valid
        if cset.valid_count == len(valid):
            if self._lru_inline:
                # Inline LRUPolicy.choose_victim: oldest stamp, first
                # way on ties (index() returns the first minimum).
                stamps = cset.policy_state.stamps
                way = stamps.index(min(stamps))
            elif self._nru_inline:
                # Inline NRUPolicy.choose_victim: first clear referenced
                # bit from the rotating hand, with the classic reset when
                # every bit is set.
                state = cset.policy_state
                referenced = state.referenced
                ways = len(referenced)
                hand = state.hand
                try:
                    way = referenced.index(False, hand)
                except ValueError:
                    try:
                        way = referenced.index(False, 0, hand)
                    except ValueError:
                        for w in range(ways):
                            referenced[w] = False
                        way = hand
                state.hand = way + 1 if way + 1 < ways else 0
            else:
                way = self.policy.choose_victim(cset.policy_state)
            victim = EvictedLine(tags[way], dirty_bits[way])
            del lookup[tags[way]]
            self.stat_evictions += 1
            if victim.dirty:
                self.stat_writebacks += 1
        else:
            way = valid.index(False)
            cset.valid_count += 1
        tags[way] = addr
        valid[way] = True
        dirty_bits[way] = dirty
        lookup[addr] = way
        if self._lru_inline:
            state = cset.policy_state
            state.clock += 1
            state.stamps[way] = state.clock
        elif self._nru_inline:
            cset.policy_state.referenced[way] = True
        else:
            self.policy.on_fill(cset.policy_state, way)
        return victim

    def access(self, addr: int, is_write: bool = False) -> tuple[bool, EvictedLine | None]:
        """Probe-and-allocate convenience for standalone (single-level) use."""
        if self.probe(addr, is_write):
            return True, None
        victim = self.fill(addr, dirty=is_write)
        return False, victim

    def invalidate(self, addr: int) -> tuple[bool, bool]:
        """Remove ``addr`` if present; returns (was_present, was_dirty)."""
        cset = self._sets[addr & self._set_mask]
        way = cset.lookup.pop(addr, None)
        if way is None:
            return False, False
        was_dirty = cset.dirty[way]
        cset.valid[way] = False
        cset.dirty[way] = False
        cset.valid_count -= 1
        if self._lru_inline:
            # Inlined LRUPolicy.on_invalidate: free ways age to stamp 0.
            cset.policy_state.stamps[way] = 0
        elif self._nru_inline:
            # Inlined NRUPolicy.on_invalidate.
            cset.policy_state.referenced[way] = False
        else:
            self.policy.on_invalidate(cset.policy_state, way)
        return True, was_dirty

    def hint_downgrade(self, addr: int) -> None:
        """Deliver a CHAR-style downgrade hint for ``addr`` if present."""
        cset = self._sets[addr & self._set_mask]
        way = cset.lookup.get(addr)
        if way is not None:
            if self._nru_inline:
                # Inlined NRUPolicy.on_hint: clear the referenced bit.
                cset.policy_state.referenced[way] = False
            else:
                self.policy.on_hint(cset.policy_state, way)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def publish_observations(self, registry) -> None:
        """Publish this cache's counters under its own name prefix."""
        scope = registry.scoped(self.name)
        scope.inc("hits", self.stat_hits)
        scope.inc("misses", self.stat_misses)
        scope.inc("evictions", self.stat_evictions)
        scope.inc("writebacks", self.stat_writebacks)

    def contains(self, addr: int) -> bool:
        """True iff ``addr`` is currently cached."""
        return addr in self._sets[addr & self._set_mask].lookup

    def is_dirty(self, addr: int) -> bool:
        """True iff ``addr`` is cached and modified."""
        cset = self._sets[addr & self._set_mask]
        way = cset.lookup.get(addr)
        return way is not None and cset.dirty[way]

    def resident_lines(self) -> Iterator[int]:
        """All currently cached line addresses."""
        for cset in self._sets:
            yield from cset.lookup

    def set_contents(self, set_index: int) -> list[int]:
        """Valid line addresses in one set (order is way order)."""
        cset = self._sets[set_index]
        return [cset.tags[w] for w in range(len(cset.tags)) if cset.valid[w]]

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(len(cset.lookup) for cset in self._sets)

    @staticmethod
    def _free_way(cset: _Set) -> int | None:
        valid = cset.valid
        for way in range(len(valid)):
            if not valid[way]:
                return way
        return None

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.name}, {self.geometry}, "
            f"policy={self.policy.name})"
        )

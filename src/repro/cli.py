"""Command-line interface.

Exposes the paper's experiments and some exploration helpers::

    repro list-experiments
    repro list-traces [--sensitive]
    repro run --machine base-victim --trace mcf.1 [--preset bench]
    repro compare --trace mcf.1
    repro stats --trace mcf.1 --trace lbm.1 [--json] [--trace-events]
    repro area
    repro export --csv fig8.csv
    repro sweep [--resume] [--strict] [--retries 2] [--job-timeout 60]
    repro serve [--preset test] [--socket PATH | --tcp HOST:PORT] [--jobs 4]
    repro submit --trace mcf.1 [--sweep] [--wait] [--json]
    repro serve-status [--json]
    repro dispatch [--workers 3 | --worker tcp:HOST:PORT ...] [--strict]
                   [--resume] [--redispatch N] [--fold-every N]
    repro perf [--repeats 3] [--output BENCH_PERF.json]
    repro cache verify [--strict] [--cache-dir DIR]
    repro cache migrate [--cache-dir DIR]
    repro cache canonicalize [--cache-dir DIR]
    repro trace migrate FILE [FILE ...]

The figure/table benches proper live in ``benchmarks/`` and run through
pytest; the CLI is the quick interactive front end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from pathlib import Path

from repro.power.area import paper_headline_area
from repro.sim.engine import ENGINE_ENV, ENGINES, resolve_engine
from repro.sim.config import (
    ARCH_BASE_VICTIM,
    ARCH_CHOICES,
    BASE_VICTIM_2MB,
    BASELINE_2MB,
    MachineConfig,
    PRESETS,
    TWO_TAG_2MB,
    TWO_TAG_MODIFIED_2MB,
    UNCOMPRESSED_3MB,
)
from repro.sim.experiment import ExperimentRunner, default_cache_dir
from repro.sim.locking import LOCK_TIMEOUT_ENV, LockTimeoutError
from repro.sim.metrics import dram_read_ratio, ipc_ratio
from repro.sim.parallel import JOBS_ENV
from repro.sim.retry import JOB_TIMEOUT_ENV, RETRIES_ENV, SweepFailedError
from repro.workloads.suite import all_specs, sensitive_specs


def _cmd_list_experiments(args: argparse.Namespace) -> int:
    rows = [
        ("E1", "Figure 6", "benchmarks/bench_fig06_twotag.py"),
        ("E2", "Figure 7", "benchmarks/bench_fig07_modified_twotag.py"),
        ("E3", "Figure 8", "benchmarks/bench_fig08_basevictim.py"),
        ("E4", "Figure 9", "benchmarks/bench_fig09_categories.py"),
        ("E5", "Figure 10", "benchmarks/bench_fig10_replacement.py"),
        ("E6", "Figure 11", "benchmarks/bench_fig11_llc_size.py"),
        ("E7", "Figure 12", "benchmarks/bench_fig12_all_traces.py"),
        ("E8", "Figure 13", "benchmarks/bench_fig13_multiprogram.py"),
        ("E9", "Figure 14", "benchmarks/bench_fig14_energy.py"),
        ("E10", "Table I", "benchmarks/bench_table1_workloads.py"),
        ("E11", "Sec VI.B.1", "benchmarks/bench_sec6b1_associativity.py"),
        ("E12", "Sec VI.B.4", "benchmarks/bench_sec6b4_victim_policy.py"),
        ("E13", "Sec IV.C", "benchmarks/bench_sec4c_area.py"),
        ("E14", "Sec V/VI.A", "benchmarks/bench_sec5_capacity.py"),
        ("E15", "Sec VI.D", "benchmarks/bench_sec6d_traffic.py"),
        ("EXT", "beyond paper", "benchmarks/bench_ext_policies.py"),
    ]
    for exp_id, artifact, target in rows:
        print(f"{exp_id:5s} {artifact:12s} {target}")
    print("\nRun one with:  pytest <target> --benchmark-only -s")
    return 0


def _cmd_list_traces(args: argparse.Namespace) -> int:
    specs = sensitive_specs() if args.sensitive else list(all_specs())
    for spec in specs:
        flags = []
        if spec.cache_sensitive:
            flags.append("sensitive")
        flags.append(spec.comp_class)
        print(
            f"{spec.name:16s} {spec.category:13s} {spec.pattern:8s} "
            f"ws={spec.ws_factor:<5g} {','.join(flags)}"
        )
    print(f"\n{len(specs)} traces")
    return 0


def _progress_line(done: int, total: int, key: str) -> None:
    """One-line, in-place sweep progress indicator (stderr)."""
    print(f"\r  simulated {done}/{total}  {key[:66]:<66s}", end="", file=sys.stderr, flush=True)
    if done == total:
        print(file=sys.stderr)


def _runner_from_args(
    args: argparse.Namespace, strict: bool = True
) -> ExperimentRunner:
    """Build a runner honouring --jobs/--retries/--job-timeout and envs."""
    return ExperimentRunner(
        PRESETS[args.preset],
        jobs=args.jobs,
        progress=_progress_line,
        retries=getattr(args, "retries", None),
        job_timeout=getattr(args, "job_timeout", None),
        strict=strict,
        lock_timeout=getattr(args, "lock_timeout", None),
    )


def _machine_from_args(args: argparse.Namespace) -> MachineConfig:
    # validate() fires at CLI time: a bad --policy fails here with a
    # structured error instead of deep inside the first simulation.
    return MachineConfig(
        arch=args.machine,
        llc_ways=args.ways,
        llc_sets_mult=args.sets_mult,
        policy=args.policy,
        victim_policy=args.victim_policy,
    ).validate()


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    machine = _machine_from_args(args)
    result = runner.run_single(machine, args.trace)
    print(f"trace:        {result.trace}")
    print(f"machine:      {result.machine}")
    print(f"instructions: {result.instructions}")
    print(f"cycles:       {result.cycles:.0f}")
    print(f"IPC:          {result.ipc:.4f}")
    print(f"LLC hit rate: {result.llc_hit_rate:.4f}")
    print(f"victim hits:  {result.llc_victim_hits}")
    print(f"DRAM reads:   {result.memory_reads}")
    print(f"DRAM writes:  {result.memory_writes}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    machines = [
        BASELINE_2MB,
        BASE_VICTIM_2MB,
        TWO_TAG_2MB,
        TWO_TAG_MODIFIED_2MB,
        UNCOMPRESSED_3MB,
    ]
    runner.prewarm((machine, args.trace) for machine in machines)
    base = runner.run_single(BASELINE_2MB, args.trace)
    print(f"{'machine':40s} {'IPC':>8s} {'ratio':>7s} {'rd-ratio':>8s}")
    for machine in machines:
        run = runner.run_single(machine, args.trace)
        print(
            f"{machine.label:40s} {run.ipc:8.4f} "
            f"{ipc_ratio(run, base):7.3f} {dram_read_ratio(run, base):8.3f}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Observability counters for one or more traces on one machine."""
    from repro.obs.registry import CounterRegistry, merge_observations
    from repro.obs.tracing import TraceRecorder
    from repro.sim.report import observability_summary
    from repro.sim.single_core import simulate_trace
    from repro.workloads.tracecache import process_cache

    registry = CounterRegistry()
    machine = _machine_from_args(args)
    runner = _runner_from_args(args)
    names: list[str] = args.traces

    if args.trace_events:
        # Tracing needs real simulations, so bypass the result cache and
        # run serially; events flush per trace (stderr or $REPRO_TRACE_FILE).
        tracer = TraceRecorder.from_env(force=True)
        assert tracer is not None  # force=True always builds one
        results = []
        with registry.timer("phase/simulate"):
            for name in names:
                trace = runner.suite.trace(name)
                data = runner.suite.data_model(name)
                results.append(
                    simulate_trace(trace, data, machine, runner.preset, tracer=tracer)
                )
                tracer.flush()
    else:
        with registry.timer("phase/simulate"):
            results = runner.run_many(machine, names)

    # Per-cell fixed costs: trace generation / parsing and size-table
    # precompute, accounted by the process-wide trace cache.  Process-
    # local by design — with ``--jobs`` > 1 the loads happen in worker
    # processes and this process's cache stays cold.
    trace_cache = process_cache().snapshot()
    registry.timer("trace/load_seconds").seconds += trace_cache["load_seconds"]

    with registry.timer("phase/report"):
        merged = merge_observations([run.obs for run in results])
        if args.json:
            payload = {
                "preset": args.preset,
                "machine": machine.label,
                "traces": {run.trace: run.obs for run in results},
                "merged": merged,
                # Wall time is process-local and non-deterministic; it is
                # reported here but never enters the result cache.
                "timers": registry.timers,
                # Cache health: corrupt JSONL lines skipped by the
                # tolerant loader — silent data loss made visible — plus
                # the persistence-layer cache/* counters (lock
                # contention, CRC rejections, legacy lines folded in).
                "cache": {
                    "corrupt_lines_skipped": runner.corrupt_lines_skipped,
                    **{
                        name: metric["value"]
                        for name, metric in runner.registry.as_dict().items()
                        if name.startswith("cache/")
                        and metric.get("kind") == "counter"
                    },
                },
                # Trace-load amortization: hits are cells that skipped
                # regeneration because an earlier cell in this process
                # already paid for the trace or its size tables.
                "trace_cache": {
                    f"trace_cache/{key}": value
                    for key, value in trace_cache.items()
                },
            }
            serve_stats = _serve_stats_snapshot()
            if serve_stats is not None:
                payload["serve"] = serve_stats
            dist_stats = _dist_stats_snapshot()
            if dist_stats is not None:
                payload["dist"] = dist_stats
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"machine: {machine.label}")
        print(f"preset:  {args.preset}   traces: {', '.join(names)}")
        print()
        print(observability_summary(merged))
        print()
        print(f"corrupt cache lines skipped: {runner.corrupt_lines_skipped}")
        for name, metric in runner.registry.as_dict().items():
            if name.startswith("cache/") and metric.get("kind") == "counter":
                label = name.removeprefix("cache/").replace("_", " ")
                print(f"cache {label}: {metric['value']}")
        for key in ("hits", "misses", "evictions"):
            print(f"trace cache {key}: {trace_cache[key]}")
        serve_stats = _serve_stats_snapshot()
        if serve_stats is not None:
            for name in sorted(serve_stats.get("counters", {})):
                metric = serve_stats["counters"][name]
                if name.startswith("serve/") and metric.get("kind") == "counter":
                    label = name.removeprefix("serve/").replace("_", " ")
                    print(f"serve {label}: {metric['value']}")
        dist_stats = _dist_stats_snapshot()
        if dist_stats is not None:
            for name in sorted(dist_stats.get("counters", {})):
                metric = dist_stats["counters"][name]
                if name.startswith("dist/") and metric.get("kind") == "counter":
                    label = name.removeprefix("dist/").replace("_", " ")
                    print(f"dist {label}: {metric['value']}")
        print("wall time by phase:")
    for name, seconds in registry.timers.items():
        print(f"  {name:16s} {seconds:8.3f}s")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Export the Figure 8/12 series as CSV and an ASCII plot."""
    from repro.sim.figures import ascii_series_plot, write_series_csv
    from repro.sim.metrics import dram_read_ratio, ipc_ratio
    from repro.workloads.suite import all_specs, sensitive_specs

    runner = _runner_from_args(args)
    specs = all_specs() if args.all_traces else sensitive_specs()
    names = [spec.name for spec in specs]
    if runner.jobs > 1:
        print(
            f"sweeping {2 * len(names)} (machine, trace) runs "
            f"across {runner.jobs} workers",
            file=sys.stderr,
        )
    ipc: dict[str, float] = {}
    reads: dict[str, float] = {}
    for name, (base, bv) in zip(
        names, runner.run_pair(BASELINE_2MB, BASE_VICTIM_2MB, names)
    ):
        ipc[name] = ipc_ratio(bv, base)
        reads[name] = dram_read_ratio(bv, base)
    series = {"ipc_ratio": ipc, "dram_read_ratio": reads}
    if args.csv:
        write_series_csv(args.csv, series)
        print(f"wrote {args.csv}")
    print(ascii_series_plot(series, "Base-Victim vs 2MB uncompressed baseline"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Fault-tolerant Figure-8-style sweep with checkpoint/resume reporting.

    Runs (baseline, base-victim) x traces through the cached runner in
    graceful-degradation mode: transient worker failures retry, crashed
    workers are recovered, and cells that exhaust their retries are
    reported as a failed-cell table instead of aborting the sweep.
    ``--resume`` additionally salvages shard files left by a killed
    sweep and reports exactly which cells were recovered vs recomputed;
    ``--strict`` turns any failed cell into a nonzero exit.
    """
    from repro.sim.report import failed_cells_table, sweep_health_summary

    runner = _runner_from_args(args, strict=False)
    salvaged = runner.resume_orphan_shards() if args.resume else []
    if args.traces:
        names = args.traces
    else:
        specs = all_specs() if args.all_traces else sensitive_specs()
        names = [spec.name for spec in specs]
    machines = [BASELINE_2MB, BASE_VICTIM_2MB]
    cells = [(machine, name) for machine in machines for name in names]
    cached = [
        f"{machine.label}|{name}"
        for machine, name in cells
        if runner.has_cached(machine, name)
    ]
    recomputed = [
        f"{machine.label}|{name}"
        for machine, name in cells
        if not runner.has_cached(machine, name)
    ]
    simulated = runner.prewarm(cells)
    failures = runner.failed_cells

    print(
        f"sweep: {len(cells)} cells ({len(names)} traces x "
        f"{len(machines)} machines), preset={args.preset}, jobs={runner.jobs}"
    )
    print(f"  recovered from cache: {len(cached)} cells")
    if args.resume:
        print(f"    salvaged from orphan shards: {len(salvaged)} cells")
        for key in salvaged:
            print(f"      salvaged   {key}")
    print(f"  recomputed: {simulated} cells")
    if args.resume:
        for cell in recomputed:
            print(f"      recomputed {cell}")
    print(f"  failed: {len(failures)} cells")
    print(
        "  "
        + sweep_health_summary(
            runner.registry.as_dict(), engine=resolve_engine(None)
        )
    )
    if failures:
        print()
        print(failed_cells_table(failures))
        if args.strict:
            return 1
    return 0


def _serve_stats_snapshot() -> dict | None:
    """The last server's ``serve-stats.json`` snapshot, if one exists."""
    from repro.serve.stats import load_serve_stats

    return load_serve_stats(default_cache_dir())


def _dist_stats_snapshot() -> dict | None:
    """The last dispatch's ``dist-stats.json`` snapshot, if one exists."""
    from repro.dist.stats import load_dist_stats

    return load_dist_stats(default_cache_dir())


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived experiment service until SIGTERM/SIGINT drain.

    Clients connect over the unix socket (default: ``serve.sock`` next
    to the result cache, or ``$REPRO_SERVE_SOCKET``) or TCP with
    ``--tcp host:port``, submit (machine, trace) jobs or whole sweeps,
    and stream back progress and results; the scheduler dedupes against
    the result cache and in-flight work and batches the remainder onto
    the worker pool.  Startup errors (a live server already on the
    socket, an unbindable address) exit 2 with a one-line message; a
    stale socket left by a killed server is reclaimed automatically.
    """
    import asyncio

    from repro.serve.server import ExperimentServer, ServeError, parse_tcp

    try:
        server = ExperimentServer(
            args.preset,
            socket_path=Path(args.socket) if args.socket else None,
            tcp=parse_tcp(args.tcp) if args.tcp else None,
            jobs=args.jobs,
            retries=args.retries,
            job_timeout=args.job_timeout,
            lock_timeout=args.lock_timeout,
            max_queue=args.max_queue,
            client_quota=args.client_quota,
            worker=args.worker,
        )
        return asyncio.run(server.run())
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:  # e.g. --tcp port already bound
        print(f"error: cannot start server: {exc.strerror or exc}", file=sys.stderr)
        return 2


def _submit_jobs_from_args(args: argparse.Namespace) -> list[dict]:
    """Wire-format job list for ``repro submit``.

    ``--sweep`` mirrors ``repro sweep``'s matrix — the (baseline,
    base-victim) machine pair per trace — so a served sweep dedupes
    against, and converges with, the classic offline one.  Otherwise
    the single machine described by the ``--machine``/``--ways``/...
    flags runs each trace.
    """
    from repro.serve.protocol import machine_to_wire

    if args.sweep:
        machines = [BASELINE_2MB, BASE_VICTIM_2MB]
    else:
        machines = [_machine_from_args(args)]
    return [
        {"trace": trace, "machine": machine_to_wire(machine)}
        for machine in machines
        for trace in args.traces
    ]


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit jobs to a running server; optionally wait for results.

    Exit codes: 0 all jobs resolved (or accepted, without ``--wait``),
    1 the submission was rejected or any job failed, 2 the server was
    unreachable (missing/stale socket — one clean line, no traceback).
    """
    from repro.serve.client import Address, ServeClient, ServeClientError

    jobs = _submit_jobs_from_args(args)
    request_id = f"submit-{os.getpid()}"
    summary: dict = {"id": request_id, "jobs": len(jobs)}
    results: dict[str, dict] = {}
    failures: list[dict] = []
    try:
        with ServeClient(
            Address.from_args(args.socket, args.tcp), timeout=args.timeout
        ) as client:
            client.request(
                {
                    "op": "submit",
                    "id": request_id,
                    "jobs": jobs,
                    "wait": bool(args.wait),
                }
            )
            for event in client.events():
                kind = event.get("event")
                if kind == "accepted":
                    summary["accepted"] = event
                    if not args.json:
                        print(
                            f"accepted {event['jobs']} job(s): "
                            f"{event['cache_hits']} cache hit(s), "
                            f"{event['deduped']} deduped, "
                            f"{event['enqueued']} enqueued",
                            file=sys.stderr,
                        )
                    if not args.wait:
                        break
                elif kind == "rejected":
                    summary["rejected"] = event
                    print(
                        f"error: submission rejected ({event.get('reason')}): "
                        f"{event.get('detail')}",
                        file=sys.stderr,
                    )
                    if args.json:
                        print(json.dumps(summary, indent=2, sort_keys=True))
                    return 1
                elif kind == "progress":
                    print(
                        f"\r  {event.get('done')}/{event.get('total')} "
                        f"{str(event.get('key'))[:60]:<60s}",
                        end="",
                        file=sys.stderr,
                        flush=True,
                    )
                elif kind == "result":
                    results[event["key"]] = event
                elif kind == "failed":
                    failures.append(event)
                elif kind == "done":
                    summary["done"] = event
                    break
                elif kind == "error":
                    print(f"error: {event.get('message')}", file=sys.stderr)
                    return 1
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.wait and summary.get("done") and not args.json:
        print(file=sys.stderr)  # terminate the progress line
        done = summary["done"]
        print(
            f"done: {done['completed']}/{done['jobs']} job(s) completed, "
            f"{done['failed']} failed"
        )
        for key in sorted(results):
            event = results[key]
            ipc = event["result"].get("ipc")
            ipc_text = f"  IPC={ipc:.4f}" if isinstance(ipc, float) else ""
            print(f"  {event['machine']} x {event['trace']}{ipc_text}")
    if args.json:
        summary["results"] = {
            key: event["result"] for key, event in sorted(results.items())
        }
        summary["failures"] = failures
        print(json.dumps(summary, indent=2, sort_keys=True))
    for failure in failures:
        print(
            f"failed: {failure.get('key')}: {failure.get('error')}: "
            f"{failure.get('message')}",
            file=sys.stderr,
        )
    return 1 if failures else 0


def _cmd_dispatch(args: argparse.Namespace) -> int:
    """Shard a sweep across serve workers; fold results back byte-identically.

    ``--workers N`` spawns N local ``repro serve --worker`` subprocesses
    (the single-box scale-out and test path); repeatable ``--worker``
    flags target running workers by ``tcp:HOST:PORT`` or unix-socket
    path (typically an ``ssh -L`` forward from a remote host).  The
    final cache file is byte-identical to a canonicalized serial
    ``repro sweep`` of the same matrix — worker losses, reassignments
    and duplicate completions included.  ``--resume`` salvages the
    staged results of a coordinator that was killed mid-dispatch (the
    write-ahead journal says which cells those are) and re-leases only
    the remainder; ``--redispatch N`` re-runs resolution up to N extra
    rounds until the matrix saturates.  Exit codes: 0 dispatched (and,
    without ``--strict``, even with failed jobs — they are reported
    structurally, like a sweep), 1 failed jobs under ``--strict``,
    2 configuration or worker-startup errors.
    """
    import time as timelib

    from repro.dist.coordinator import (
        DispatchCoordinator,
        DispatchError,
        sweep_cells,
    )
    from repro.dist.worker import (
        LocalWorkerPool,
        WorkerPoolError,
        parse_worker_spec,
    )
    from repro.sim.report import dispatch_health_summary
    from repro.sim.retry import RetryPolicy

    if args.workers is not None and args.worker_specs:
        print(
            "error: use --workers N (spawn local) or --worker SPEC "
            "(connect to running), not both",
            file=sys.stderr,
        )
        return 2
    if args.traces:
        names = args.traces
    else:
        specs = all_specs() if args.all_traces else sensitive_specs()
        names = [spec.name for spec in specs]

    redispatch = max(0, args.redispatch)
    policy = RetryPolicy.from_env()
    carry: dict[str, int] = {}
    round_index = 0
    while True:
        try:
            coordinator = DispatchCoordinator(
                args.preset,
                sweep_cells(names, [BASELINE_2MB, BASE_VICTIM_2MB]),
                lease_size=args.lease_size,
                worker_retries=args.worker_retries,
                lock_timeout=args.lock_timeout,
                timeout=args.timeout,
                progress=None if args.json else _progress_line,
                fold_every=args.fold_every,
                heartbeat_interval=args.heartbeat,
                heartbeat_deadline=args.heartbeat_deadline,
                # Every redispatch round after the first is a resume of
                # this command's own journal.
                resume=args.resume or round_index > 0,
                carry_counters=carry,
            )
        except DispatchError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"dispatch: {coordinator.total_cells} cells, "
            f"{coordinator.cached_cells} cached, "
            f"{coordinator.pending_jobs} to run, preset={args.preset}"
            + (f" (round {round_index + 1})" if round_index else ""),
            file=sys.stderr,
        )
        try:
            if coordinator.pending_jobs == 0:
                # Nothing to lease: never spawn or contact a worker, and
                # leave the cache file byte-untouched.
                report = coordinator.run(())
            elif args.worker_specs:
                endpoints = [
                    parse_worker_spec(spec, index)
                    for index, spec in enumerate(args.worker_specs)
                ]
                report = coordinator.run(endpoints)
            elif args.workers is not None:
                pool = LocalWorkerPool(
                    args.workers,
                    args.preset,
                    coordinator.cache_dir,
                    jobs=args.jobs,
                    retries=args.retries,
                    job_timeout=args.job_timeout,
                    lock_timeout=args.lock_timeout,
                )
                with pool:
                    endpoints = pool.start()
                    report = coordinator.run(endpoints, pool=pool)
            else:
                print(
                    "error: dispatch has jobs to run but no workers; pass "
                    "--workers N or --worker SPEC",
                    file=sys.stderr,
                )
                return 2
        except (DispatchError, WorkerPoolError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not report.failures or round_index >= redispatch:
            break
        round_index += 1
        carry = _carry_dist_counters(coordinator.registry.as_dict())
        carry["dist/redispatch_rounds"] = (
            carry.get("dist/redispatch_rounds", 0) + 1
        )
        delay = policy.delay("dispatch/redispatch", round_index)
        print(
            f"dispatch: {len(report.failures)} unresolved cell(s); "
            f"redispatch round {round_index + 1}/{redispatch + 1} "
            f"in {delay:.2f}s",
            file=sys.stderr,
        )
        timelib.sleep(delay)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"dispatched {report.dispatched} job(s) over "
            f"{len(report.workers)} worker(s): {report.completed} completed, "
            f"{len(report.failures)} failed, {report.reassigned} reassigned, "
            f"{report.workers_lost} worker loss(es), "
            f"{report.duplicates} duplicate result(s)"
        )
        print(
            f"  folded in: {report.merged_new} new, "
            f"{report.merged_existing} existing; cache canonical at "
            f"{report.canonical_entries} entries"
        )
        print("  " + dispatch_health_summary(coordinator.registry.as_dict()))
        for failure in report.failures:
            print(
                f"failed: {failure.get('key')}: {failure.get('error')}: "
                f"{failure.get('message')}",
                file=sys.stderr,
            )
    return 1 if (report.failures and args.strict) else 0


def _carry_dist_counters(counters: dict) -> dict[str, int]:
    """History ``dist/*`` counters one redispatch round hands the next.

    Matrix-resolution counters (totals, cached, dispatched) are
    per-round by design and excluded; everything else accumulates so
    the final stats snapshot covers the whole saturation loop.
    """
    skip = {"dist/jobs_total", "dist/jobs_cached", "dist/jobs_dispatched"}
    return {
        name: int(metric["value"])
        for name, metric in counters.items()
        if (
            name.startswith("dist/")
            and name not in skip
            and metric.get("kind") == "counter"
        )
    }


def _cmd_serve_status(args: argparse.Namespace) -> int:
    """Query a running server's live counters and queue state."""
    from repro.serve.client import Address, ServeClient, ServeClientError

    try:
        with ServeClient(
            Address.from_args(args.socket, args.tcp), timeout=args.timeout
        ) as client:
            client.request({"op": "status"})
            status = client.next_event()
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(
        f"server pid {status.get('pid')}  preset={status.get('preset')}  "
        f"jobs={status.get('jobs')}  draining={status.get('draining')}"
    )
    print(
        f"queue depth: {status.get('queue_depth')}  "
        f"in-flight jobs: {status.get('inflight_jobs')}"
    )
    for name in sorted(status.get("counters", {})):
        label = name.removeprefix("serve/").replace("_", " ")
        print(f"  {label:24s} {status['counters'][name]}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    """Measure single-worker engine throughput (see repro.sim.perfbench)."""
    from repro.sim.perfbench import run

    return run(args)


def _cmd_area(args: argparse.Namespace) -> int:
    report = paper_headline_area()
    print("Section IV.C area accounting (2MB 16-way, 48-bit addresses):")
    print(f"  tag bits per way:            {report.tag_bits}")
    print(f"  added bits per way:          {report.added_bits}")
    print(f"  tag+metadata overhead:       {report.tag_metadata_overhead:.1%}")
    print(f"  compression logic overhead:  {report.compression_logic_overhead:.1%}")
    print(f"  total overhead:              {report.total_overhead:.1%}")
    return 0


def _cache_dir_from_args(args: argparse.Namespace) -> Path:
    """The cache directory a ``repro cache`` subcommand operates on."""
    if args.cache_dir is not None:
        return Path(args.cache_dir)
    return default_cache_dir()


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    """Integrity census of every cache file (CRC, structure, duplicates).

    Prints one row per ``results-v*.jsonl`` file: total lines, valid
    entries, legacy (un-checksummed) lines, CRC rejections, corrupt
    lines and duplicate keys.  With ``--strict`` any rejected line makes
    the exit code nonzero — the CI tripwire for silent cache rot.
    """
    from repro.obs.registry import CounterRegistry
    from repro.sim.resultcache import verify_cache_dir

    directory = _cache_dir_from_args(args)
    reports = verify_cache_dir(directory)
    if not reports:
        print(f"no cache files under {directory}")
        return 0
    registry = CounterRegistry()
    print(
        f"{'file':34s} {'lines':>7s} {'entries':>7s} {'legacy':>6s} "
        f"{'crc':>5s} {'corrupt':>7s} {'dups':>5s}"
    )
    dirty = 0
    for report in reports:
        registry.inc("cache/verified_lines", report.lines)
        registry.inc("cache/crc_failures", report.crc_failures)
        registry.inc("cache/corrupt_lines", report.corrupt_lines)
        if not report.clean:
            dirty += 1
        print(
            f"{report.path.name:34s} {report.lines:7d} {report.entries:7d} "
            f"{report.plain_lines:6d} {report.crc_failures:5d} "
            f"{report.corrupt_lines:7d} {report.duplicate_keys:5d}"
        )
    counters = registry.as_dict()
    print(
        f"\n{len(reports)} file(s), {dirty} with rejected lines "
        f"(crc failures: {counters['cache/crc_failures']['value']}, "
        f"corrupt: {counters['cache/corrupt_lines']['value']})"
    )
    if dirty and args.strict:
        print("error: cache verification failed (--strict)", file=sys.stderr)
        return 1
    return 0


def _cmd_cache_migrate(args: argparse.Namespace) -> int:
    """Upgrade cache files to the current checksummed format, atomically.

    v4 files fold into their v5 siblings (existing v5 entries win) and
    are removed only once the replacement is durable; v5 files with
    legacy or corrupt lines are rewritten in place; clean files are left
    byte-untouched; pre-v4 files are reported stale and never touched.
    """
    from repro.sim.resultcache import migrate_cache_dir

    directory = _cache_dir_from_args(args)
    results = migrate_cache_dir(directory, lock_timeout=args.lock_timeout)
    if not results:
        print(f"no cache files under {directory}")
        return 0
    for result in results:
        if result.action == "migrated":
            print(
                f"{result.source.name} -> {result.target.name}: "
                f"{result.migrated_lines} line(s) migrated "
                f"({result.entries} total entries)"
            )
        elif result.action == "rewritten":
            print(
                f"{result.source.name}: rewritten in place "
                f"({result.migrated_lines} legacy line(s) upgraded, "
                f"{result.entries} entries)"
            )
        elif result.action == "stale":
            print(
                f"{result.source.name}: stale pre-v4 format, left untouched "
                "(results predate simulator behaviour changes)"
            )
        else:
            print(f"{result.source.name}: already clean ({result.entries} entries)")
    return 0


def _cmd_cache_canonicalize(args: argparse.Namespace) -> int:
    """Rewrite cache files into their canonical (key-sorted) form.

    Canonicalization makes cache bytes a pure function of the entry
    set, independent of write order — the normal form every dispatch
    fold ends in.  Run it on a serially-produced cache before comparing
    it byte-for-byte against a distributed one (the differential test
    and the CI dist-smoke job do exactly that).  Idempotent; already-
    canonical files are rewritten to identical bytes.
    """
    from repro.sim.resultcache import canonicalize_cache_file

    directory = _cache_dir_from_args(args)
    files = sorted(directory.glob("results-v*.jsonl"))
    if not files:
        print(f"no cache files under {directory}")
        return 0
    for path in files:
        entries = canonicalize_cache_file(path, lock_timeout=args.lock_timeout)
        print(f"{path.name}: canonical ({entries} entries)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Dispatch ``repro cache <action>``."""
    handlers = {
        "verify": _cmd_cache_verify,
        "migrate": _cmd_cache_migrate,
        "canonicalize": _cmd_cache_canonicalize,
    }
    return handlers[args.cache_command](args)


def _cmd_trace_migrate(args: argparse.Namespace) -> int:
    """Upgrade trace files to the columnar v3 format, atomically.

    Each file is verified under its own format before the in-place
    rewrite; already-v3 files are reported and left untouched.  A
    malformed file stops the run with a structured error (exit 2 via the
    TraceFormatError -> ValueError path), leaving every original intact.
    """
    from repro.workloads.traceio import migrate_trace

    for path in args.paths:
        try:
            report = migrate_trace(path)
        except OSError as exc:
            print(f"error: {path}: {exc.strerror or exc}", file=sys.stderr)
            return 2
        if report.migrated:
            print(
                f"{report.path}: v{report.from_version} -> v3 "
                f"({report.records} records)"
            )
        else:
            print(f"{report.path}: already v3 ({report.records} records)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Dispatch ``repro trace <action>``."""
    handlers = {"migrate": _cmd_trace_migrate}
    return handlers[args.trace_command](args)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Base-Victim compressed cache reproduction (ISCA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments", help="map figures/tables to bench targets")

    p_traces = sub.add_parser("list-traces", help="show the 100-trace suite")
    p_traces.add_argument("--sensitive", action="store_true")

    for name, helptext in (
        ("run", "run one trace on one machine"),
        ("compare", "compare all architectures on one trace"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--trace", required=True)
        p.add_argument("--preset", default="bench", choices=sorted(PRESETS))
        p.add_argument("--machine", default=ARCH_BASE_VICTIM, choices=ARCH_CHOICES)
        p.add_argument("--ways", type=int, default=16)
        p.add_argument("--sets-mult", type=float, default=1.0)
        p.add_argument("--policy", default="nru")
        p.add_argument("--victim-policy", default="ecm")
        _add_jobs_argument(p)

    p_stats = sub.add_parser(
        "stats", help="observability counters (victim occupancy, hit categories…)"
    )
    p_stats.add_argument(
        "--trace",
        action="append",
        required=True,
        dest="traces",
        metavar="NAME",
        help="trace to report on (repeatable; counters merge across traces)",
    )
    p_stats.add_argument("--preset", default="bench", choices=sorted(PRESETS))
    p_stats.add_argument("--machine", default=ARCH_BASE_VICTIM, choices=ARCH_CHOICES)
    p_stats.add_argument("--ways", type=int, default=16)
    p_stats.add_argument("--sets-mult", type=float, default=1.0)
    p_stats.add_argument("--policy", default="nru")
    p_stats.add_argument("--victim-policy", default="ecm")
    p_stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_stats.add_argument(
        "--trace-events",
        action="store_true",
        help="record per-access events (uncached serial runs; "
        "window size via $REPRO_TRACE_LIMIT)",
    )
    _add_jobs_argument(p_stats)

    sub.add_parser("area", help="print the Section IV.C area overheads")

    p_perf = sub.add_parser(
        "perf", help="measure engine throughput (accesses/sec, phase times)"
    )
    from repro.sim.perfbench import add_arguments as _add_perf_arguments

    _add_perf_arguments(p_perf)

    p_export = sub.add_parser(
        "export", help="export the Base-Victim ratio series (CSV + ASCII plot)"
    )
    p_export.add_argument("--preset", default="bench", choices=sorted(PRESETS))
    p_export.add_argument("--all-traces", action="store_true")
    p_export.add_argument("--csv", help="CSV output path")
    _add_jobs_argument(p_export)

    p_sweep = sub.add_parser(
        "sweep",
        help="fault-tolerant (machine x trace) sweep with checkpoint/resume",
    )
    p_sweep.add_argument("--preset", default="bench", choices=sorted(PRESETS))
    p_sweep.add_argument(
        "--trace",
        action="append",
        dest="traces",
        metavar="NAME",
        help="trace subset (repeatable; default: the cache-sensitive suite)",
    )
    p_sweep.add_argument("--all-traces", action="store_true")
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="salvage shards left by a killed sweep; report recovered vs "
        "recomputed cells",
    )
    p_sweep.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero if any cell failed after exhausting retries",
    )
    _add_jobs_argument(p_sweep)

    p_cache = sub.add_parser(
        "cache", help="inspect and maintain the on-disk result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_verify = cache_sub.add_parser(
        "verify", help="integrity census: CRC, structure, duplicates"
    )
    p_verify.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero if any file contains rejected lines",
    )
    p_migrate = cache_sub.add_parser(
        "migrate", help="upgrade cache files to the checksummed v5 format"
    )
    p_canonicalize = cache_sub.add_parser(
        "canonicalize",
        help="rewrite cache files key-sorted (byte-comparable normal form)",
    )
    for p in (p_migrate, p_canonicalize):
        p.add_argument(
            "--lock-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help=(
                "max seconds to wait for a cache file's lock "
                f"(default ${LOCK_TIMEOUT_ENV} or 120)"
            ),
        )
    for p in (p_verify, p_migrate, p_canonicalize):
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="cache directory (default: $REPRO_CACHE_DIR or ./.repro_cache)",
        )

    p_trace = sub.add_parser(
        "trace", help="inspect and maintain on-disk trace files"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_migrate = trace_sub.add_parser(
        "migrate",
        help="upgrade trace files in place to the columnar v3 format",
    )
    p_trace_migrate.add_argument(
        "paths",
        nargs="+",
        metavar="FILE",
        help="trace files to upgrade (verified, rewritten atomically)",
    )

    from repro.serve.scheduler import DEFAULT_CLIENT_QUOTA, DEFAULT_MAX_QUEUE
    from repro.serve.server import SOCKET_ENV

    p_serve = sub.add_parser(
        "serve",
        help="run the experiment service (deduplicating job scheduler)",
    )
    p_serve.add_argument("--preset", default="bench", choices=sorted(PRESETS))
    p_serve.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help=(
            "unix socket to listen on "
            f"(default ${SOCKET_ENV} or serve.sock in the cache directory)"
        ),
    )
    p_serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="listen on TCP instead of a unix socket",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        metavar="N",
        help=(
            "admission control: reject submissions once this many jobs "
            f"are queued (default {DEFAULT_MAX_QUEUE})"
        ),
    )
    p_serve.add_argument(
        "--client-quota",
        type=int,
        default=DEFAULT_CLIENT_QUOTA,
        metavar="N",
        help=(
            "max unresolved jobs per client connection "
            f"(default {DEFAULT_CLIENT_QUOTA})"
        ),
    )
    p_serve.add_argument(
        "--worker",
        action="store_true",
        help=(
            "run as a dispatch worker: widen the per-connection quota so "
            "one coordinator connection may lease the whole queue"
        ),
    )
    _add_jobs_argument(p_serve)

    p_submit = sub.add_parser(
        "submit", help="submit jobs to a running `repro serve` server"
    )
    p_submit.add_argument(
        "--trace",
        action="append",
        required=True,
        dest="traces",
        metavar="NAME",
        help="trace to run (repeatable)",
    )
    p_submit.add_argument(
        "--sweep",
        action="store_true",
        help="run the sweep machine pair (baseline + base-victim) per trace",
    )
    p_submit.add_argument(
        "--machine", default=ARCH_BASE_VICTIM, choices=ARCH_CHOICES
    )
    p_submit.add_argument("--ways", type=int, default=16)
    p_submit.add_argument("--sets-mult", type=float, default=1.0)
    p_submit.add_argument("--policy", default="nru")
    p_submit.add_argument("--victim-policy", default="ecm")
    p_submit.add_argument(
        "--wait",
        action="store_true",
        help="stream progress and block until every job resolves",
    )
    p_submit.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )

    p_serve_status = sub.add_parser(
        "serve-status", help="query a running server's counters and queue"
    )
    p_serve_status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    for p in (p_submit, p_serve_status):
        p.add_argument(
            "--socket",
            default=None,
            metavar="PATH",
            help=(
                "server unix socket "
                f"(default ${SOCKET_ENV} or serve.sock in the cache directory)"
            ),
        )
        p.add_argument(
            "--tcp",
            default=None,
            metavar="HOST:PORT",
            help="connect over TCP instead of a unix socket",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="socket timeout while talking to the server (default: none)",
        )

    from repro.dist.coordinator import (
        DEFAULT_FOLD_EVERY,
        DEFAULT_HEARTBEAT_INTERVAL,
        DEFAULT_LEASE_SIZE,
        DEFAULT_WORKER_RETRIES,
    )

    p_dispatch = sub.add_parser(
        "dispatch",
        help="shard a sweep across serve workers (multi-host or spawned)",
    )
    p_dispatch.add_argument(
        "--preset", default="bench", choices=sorted(PRESETS)
    )
    p_dispatch.add_argument(
        "--trace",
        action="append",
        dest="traces",
        metavar="NAME",
        help="trace subset (repeatable; default: the cache-sensitive suite)",
    )
    p_dispatch.add_argument("--all-traces", action="store_true")
    p_dispatch.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="spawn N local `repro serve --worker` subprocesses",
    )
    p_dispatch.add_argument(
        "--worker",
        action="append",
        dest="worker_specs",
        default=[],
        metavar="SPEC",
        help=(
            "a running worker endpoint: tcp:HOST:PORT or a unix-socket "
            "path (repeatable; e.g. an ssh -L forward of a remote worker)"
        ),
    )
    p_dispatch.add_argument(
        "--lease-size",
        type=int,
        default=DEFAULT_LEASE_SIZE,
        metavar="N",
        help=(
            "jobs per batch lease; smaller leases lose less work per "
            f"dead worker (default {DEFAULT_LEASE_SIZE})"
        ),
    )
    p_dispatch.add_argument(
        "--worker-retries",
        type=int,
        default=DEFAULT_WORKER_RETRIES,
        metavar="N",
        help=(
            "losses a worker survives before the coordinator retires it "
            f"(default {DEFAULT_WORKER_RETRIES})"
        ),
    )
    p_dispatch.add_argument(
        "--fold-every",
        type=int,
        default=DEFAULT_FOLD_EVERY,
        metavar="N",
        help=(
            "fold staged results into the cache every N completed "
            "leases; 0 folds only at the end "
            f"(default {DEFAULT_FOLD_EVERY})"
        ),
    )
    p_dispatch.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_HEARTBEAT_INTERVAL,
        metavar="SECONDS",
        help=(
            "seconds of mid-lease silence before pinging a v3 worker; "
            f"0 disables heartbeats (default {DEFAULT_HEARTBEAT_INTERVAL})"
        ),
    )
    p_dispatch.add_argument(
        "--heartbeat-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "total silence before a worker is declared lost "
            "(default: 3x the heartbeat interval)"
        ),
    )
    p_dispatch.add_argument(
        "--resume",
        action="store_true",
        help=(
            "salvage the staged results of a crashed coordinator (from "
            "its write-ahead journal) before re-leasing the remainder"
        ),
    )
    p_dispatch.add_argument(
        "--redispatch",
        type=int,
        default=0,
        metavar="N",
        help=(
            "re-run matrix resolution up to N extra rounds while cells "
            "remain unresolved (default 0)"
        ),
    )
    p_dispatch.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero if any job failed on every eligible worker",
    )
    p_dispatch.add_argument(
        "--json", action="store_true", help="machine-readable dispatch report"
    )
    p_dispatch.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="socket timeout per lease conversation (default: none)",
    )
    _add_jobs_argument(p_dispatch)
    return parser


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the sweep-execution flags (--jobs/--retries/--job-timeout)."""
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=(
            "simulation inner loop; exported as $"
            f"{ENGINE_ENV} so sweep workers inherit it "
            f"(default ${ENGINE_ENV} or batch; results are engine-independent)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for sweeps (0 = one per CPU; "
            f"default ${JOBS_ENV} or 1)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "extra attempts per sweep job after a failure or timeout "
            f"(default ${RETRIES_ENV} or 0)"
        ),
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-attempt watchdog; a hung job fails and retries "
            f"(default ${JOB_TIMEOUT_ENV} or no timeout)"
        ),
    )
    parser.add_argument(
        "--lock-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "max seconds any cache write waits for the cache lock "
            f"(default ${LOCK_TIMEOUT_ENV} or 120; 0 = fail fast)"
        ),
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # --engine is exported to the environment (not threaded through call
    # signatures) so parallel sweep workers — fork or spawn — inherit it.
    engine = getattr(args, "engine", None)
    if engine is not None:
        os.environ[ENGINE_ENV] = engine
    handlers = {
        "list-experiments": _cmd_list_experiments,
        "list-traces": _cmd_list_traces,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "stats": _cmd_stats,
        "area": _cmd_area,
        "perf": _cmd_perf,
        "export": _cmd_export,
        "sweep": _cmd_sweep,
        "cache": _cmd_cache,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "serve-status": _cmd_serve_status,
        "dispatch": _cmd_dispatch,
    }
    try:
        return handlers[args.command](args)
    except LockTimeoutError as exc:  # another process wedged the cache lock
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:  # e.g. a malformed $REPRO_JOBS or machine config
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepFailedError as exc:  # strict-mode sweep with failed cells
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

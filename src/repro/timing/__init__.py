"""Analytic core timing model and latency parameters."""

from repro.timing.core_model import CoreParams, CoreTimingModel
from repro.timing.latency import LatencyParams

__all__ = ["CoreParams", "CoreTimingModel", "LatencyParams"]

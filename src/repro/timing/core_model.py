"""Analytic out-of-order core timing model.

The paper evaluates on a cycle-accurate, execution-driven x86 simulator of
a 4 GHz, 4-wide out-of-order core (Section V).  Reproducing that in Python
is infeasible (and unnecessary: the architectures under study differ only
in LLC hit/miss behaviour), so this module provides the standard analytic
substitute:

    cycles = instructions x base CPI
           + sum over memory accesses of exposed_latency(level) / MLP(level)

An access served at level L exposes ``latency(L) - latency(L1)`` cycles
(the L1 latency hides in the base CPI), divided by a memory-level-
parallelism factor that models how much of that latency an out-of-order
window overlaps.  LLC hits to compressed lines pay the paper's adders: one
extra tag cycle (doubled tags) and two decompression cycles, delivered by
the hierarchy as ``extra_llc_cycles``.  DRAM latencies come per-access
from :class:`~repro.memory.dram.DRAMModel`, so queueing under heavy miss
traffic lengthens stalls exactly as in the paper's Figures 6-8.

The model is *relative*, not absolute: IPC ratios between two LLC
architectures track their miss-count and latency differences, which is
what every figure in the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import L1, L2, LLC, MEMORY, AccessOutcome
from repro.timing.latency import LatencyParams


@dataclass(frozen=True)
class CoreParams:
    """Analytic core parameters.

    ``base_cpi`` is the CPI of the core when every access hits the L1;
    ``mlp_*`` are the average number of outstanding misses that overlap a
    stall at each level (workload-dependent; trace metadata supplies
    them).
    """

    width: int = 4
    base_cpi: float = 0.45
    mlp_l2: float = 1.5
    mlp_llc: float = 1.8
    mlp_memory: float = 2.0
    latencies: LatencyParams = LatencyParams()


class CoreTimingModel:
    """Accumulates cycles for one hardware thread."""

    __slots__ = (
        "params",
        "cycles",
        "instructions",
        "stall_cycles",
        "base_cpi",
        "l2_stall",
        "llc_exposed",
        "mlp_llc",
        "mlp_memory",
    )

    def __init__(self, params: CoreParams | None = None) -> None:
        self.params = params or CoreParams()
        self.cycles = 0.0
        self.instructions = 0
        self.stall_cycles = 0.0
        # Per-access constants, hoisted out of the inner loop.  The L2
        # stall is a full constant; LLC/MEMORY stalls keep the original
        # expression shape (and hence bit-identical float results), only
        # the parameter loads are precomputed.
        params = self.params
        lat = params.latencies
        self.base_cpi = params.base_cpi
        self.l2_stall = lat.l2_exposed / params.mlp_l2
        self.llc_exposed = lat.llc_exposed
        self.mlp_llc = params.mlp_llc
        self.mlp_memory = params.mlp_memory

    def advance(self, instructions: int) -> None:
        """Retire ``instructions`` non-stalling instructions."""
        self.instructions += instructions
        self.cycles += instructions * self.base_cpi

    def account_access(self, outcome: AccessOutcome, dram_latency: float) -> None:
        """Add the exposed stall of one demand access.

        ``dram_latency`` is the CPU-cycle latency returned by the DRAM
        model for accesses served at MEMORY (0 otherwise).
        """
        level = outcome.level
        if level == L1:
            return
        if level == L2:
            stall = self.l2_stall
        elif level == LLC:
            stall = (self.llc_exposed + outcome.extra_llc_cycles) / self.mlp_llc
        elif level == MEMORY:
            exposed = self.llc_exposed + outcome.extra_llc_cycles + dram_latency
            stall = exposed / self.mlp_memory
        else:
            raise ValueError(f"unknown service level {level}")
        self.cycles += stall
        self.stall_cycles += stall

    @property
    def ipc(self) -> float:
        """Instructions per cycle so far."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

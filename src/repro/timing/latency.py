"""Load-to-use latency parameters (paper Section V)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyParams:
    """Cycle latencies of the cache hierarchy at 4 GHz."""

    l1_cycles: int = 3
    l2_cycles: int = 10
    llc_cycles: int = 24

    @property
    def l2_exposed(self) -> int:
        """Extra cycles an L2 hit adds beyond the pipelined L1 latency."""
        return self.l2_cycles - self.l1_cycles

    @property
    def llc_exposed(self) -> int:
        """Extra cycles an LLC hit adds beyond the pipelined L1 latency."""
        return self.llc_cycles - self.l1_cycles

"""Segment arithmetic for compressed cache lines.

Compressed cache architectures do not track line sizes at byte granularity.
Instead, a line's compressed size is rounded up to a fixed *segment*
boundary, and the tag metadata stores the size in segments.  The paper's
examples (Section III and IV.B) use 8-byte segments for clarity, while the
evaluation (Section IV.C and V) aligns compressed data to 4-byte segments so
that a 4-bit size field can describe all 16 possible sizes of a 64-byte
line.  Both granularities are supported here.

All Base-Victim fit decisions reduce to segment arithmetic: two logical
lines may share one physical way iff the sum of their sizes in segments is
at most the number of segments in a physical line.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cache line size used throughout the paper and this reproduction.
LINE_SIZE_BYTES = 64

#: Segment granularity used by the paper's evaluation (Section IV.C).
EVAL_SEGMENT_BYTES = 4

#: Segment granularity used by the paper's illustrative examples.
EXAMPLE_SEGMENT_BYTES = 8


class SegmentError(ValueError):
    """Raised for invalid segment geometry or sizes."""


@dataclass(frozen=True)
class SegmentGeometry:
    """Describes how a physical cache line is divided into segments.

    Parameters
    ----------
    line_bytes:
        Physical line size in bytes (64 in the paper).
    segment_bytes:
        Alignment granularity for compressed lines (4 in the paper's
        evaluation, 8 in its worked examples).
    """

    line_bytes: int = LINE_SIZE_BYTES
    segment_bytes: int = EVAL_SEGMENT_BYTES

    def __post_init__(self) -> None:
        if self.line_bytes <= 0:
            raise SegmentError(f"line_bytes must be positive, got {self.line_bytes}")
        if self.segment_bytes <= 0:
            raise SegmentError(
                f"segment_bytes must be positive, got {self.segment_bytes}"
            )
        if self.line_bytes % self.segment_bytes != 0:
            raise SegmentError(
                "line_bytes must be a multiple of segment_bytes: "
                f"{self.line_bytes} % {self.segment_bytes} != 0"
            )

    @property
    def segments_per_line(self) -> int:
        """Number of segments in one physical line (16 for 64B/4B)."""
        return self.line_bytes // self.segment_bytes

    def size_in_segments(self, size_bytes: int) -> int:
        """Round a compressed byte size up to whole segments.

        A size of zero (an all-zero block whose data requires no storage
        beyond the tag metadata) rounds to zero segments.
        """
        if size_bytes < 0:
            raise SegmentError(f"size_bytes must be non-negative, got {size_bytes}")
        if size_bytes > self.line_bytes:
            raise SegmentError(
                f"compressed size {size_bytes}B exceeds line size {self.line_bytes}B"
            )
        return -(-size_bytes // self.segment_bytes)

    def fits_together(self, *segment_sizes: int) -> bool:
        """True iff lines of the given segment sizes share one physical line."""
        total = 0
        for size in segment_sizes:
            if size < 0 or size > self.segments_per_line:
                raise SegmentError(
                    f"segment size {size} out of range 0..{self.segments_per_line}"
                )
            total += size
        return total <= self.segments_per_line

    def free_segments(self, *segment_sizes: int) -> int:
        """Segments left in a physical line already holding the given sizes."""
        used = sum(segment_sizes)
        if used > self.segments_per_line:
            raise SegmentError(
                f"lines of sizes {segment_sizes} overflow a "
                f"{self.segments_per_line}-segment physical line"
            )
        return self.segments_per_line - used


#: Geometry used by the paper's evaluation: 64B lines, 4B segments, 16 segments.
EVAL_GEOMETRY = SegmentGeometry(LINE_SIZE_BYTES, EVAL_SEGMENT_BYTES)

#: Geometry used by the paper's Section III/IV examples: 64B lines, 8B segments.
EXAMPLE_GEOMETRY = SegmentGeometry(LINE_SIZE_BYTES, EXAMPLE_SEGMENT_BYTES)

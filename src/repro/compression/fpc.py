"""Frequent Pattern Compression (FPC).

Implements the significance-based algorithm of Alameldeen and Wood,
"Adaptive Cache Compression for High-Performance Processors" (ISCA 2004),
cited by the Base-Victim paper as related work (Section VII).  FPC scans a
line as 32-bit words and encodes each with a 3-bit prefix naming one of
seven frequent patterns (or the uncompressed fallback):

====  ===========================================  ============
code  pattern                                       payload bits
====  ===========================================  ============
000   zero run (1-8 consecutive zero words)         3
001   4-bit sign-extended                           4
010   8-bit sign-extended                           8
011   16-bit sign-extended                          16
100   16-bit padded with zeros (low half zero)      16
101   two 16-bit halves, each 8-bit sign-extended   16
110   word of repeated bytes                        8
111   uncompressed word                             32
====  ===========================================  ============

The compressed size is the total of prefix and payload bits, rounded up to
bytes.  Decompression reverses the per-word encoding exactly.
"""

from __future__ import annotations

from repro.compression.base import (
    CompressedBlock,
    CompressionAlgorithm,
    CompressionError,
)

_WORD_BYTES = 4
_WORD_BITS = 32
_PREFIX_BITS = 3
_MAX_ZERO_RUN = 8


def _sign_extend_fits(word: int, bits: int) -> bool:
    """True iff the 32-bit word is a sign-extended ``bits``-bit value."""
    signed = word - (1 << 32) if word >= (1 << 31) else word
    bound = 1 << (bits - 1)
    return -bound <= signed < bound


def _encode_word(word: int) -> tuple[str, int, int]:
    """Classify one 32-bit word: (pattern, payload_bits, payload_value)."""
    if _sign_extend_fits(word, 4):
        return "sext4", 4, word & 0xF
    if _sign_extend_fits(word, 8):
        return "sext8", 8, word & 0xFF
    if _sign_extend_fits(word, 16):
        return "sext16", 16, word & 0xFFFF
    if word & 0xFFFF == 0:
        return "padded16", 16, word >> 16
    high, low = word >> 16, word & 0xFFFF
    if _sign_extend_fits_16(high) and _sign_extend_fits_16(low):
        return "halfwords", 16, (high & 0xFF) << 8 | (low & 0xFF)
    b = word & 0xFF
    if word == b | b << 8 | b << 16 | b << 24:
        return "repbytes", 8, b
    return "uncompressed", _WORD_BITS, word


def _sign_extend_fits_16(half: int) -> bool:
    """True iff a 16-bit half is a sign-extended 8-bit value."""
    signed = half - (1 << 16) if half >= (1 << 15) else half
    return -128 <= signed < 128


class FPCCompressor(CompressionAlgorithm):
    """Frequent Pattern Compression codec."""

    name = "fpc"
    decompression_cycles = 5

    def compress(self, data: bytes) -> CompressedBlock:
        """Compress one cache line of raw bytes."""
        self._check_line(data)
        data = bytes(data)
        words = [
            int.from_bytes(data[i : i + _WORD_BYTES], "little")
            for i in range(0, self.line_size, _WORD_BYTES)
        ]

        entries: list[tuple[str, int, int]] = []
        bits = 0
        i = 0
        while i < len(words):
            if words[i] == 0:
                run = 1
                while (
                    i + run < len(words)
                    and words[i + run] == 0
                    and run < _MAX_ZERO_RUN
                ):
                    run += 1
                entries.append(("zerorun", 3, run - 1))
                bits += _PREFIX_BITS + 3
                i += run
                continue
            pattern, payload_bits, payload = _encode_word(words[i])
            entries.append((pattern, payload_bits, payload))
            bits += _PREFIX_BITS + payload_bits
            i += 1

        size = -(-bits // 8)
        if size >= self.line_size:
            return self._uncompressed(data)
        if all(p == "zerorun" for p, _, _ in entries) and data == b"\x00" * self.line_size:
            return CompressedBlock(self.name, "zeros", size, tuple(entries))
        return CompressedBlock(self.name, "fpc", size, tuple(entries))

    def decompress(self, block: CompressedBlock) -> bytes:
        """Reconstruct the original line bytes."""
        if block.algorithm != self.name:
            raise CompressionError(
                f"block was produced by {block.algorithm!r}, not {self.name!r}"
            )
        if block.encoding == "uncompressed":
            payload = block.payload
            if not isinstance(payload, bytes) or len(payload) != self.line_size:
                raise CompressionError("uncompressed payload must be the raw line")
            return payload
        entries = block.payload
        if not isinstance(entries, tuple):
            raise CompressionError(f"unknown FPC encoding {block.encoding!r}")

        words: list[int] = []
        for pattern, _, payload in entries:
            words.extend(_decode_entry(pattern, payload))
        if len(words) != self.line_size // _WORD_BYTES:
            raise CompressionError(
                f"decoded {len(words)} words, expected {self.line_size // _WORD_BYTES}"
            )
        return b"".join(word.to_bytes(_WORD_BYTES, "little") for word in words)


def _decode_entry(pattern: str, payload: int) -> list[int]:
    """Expand one FPC entry back to its 32-bit word(s)."""
    if pattern == "zerorun":
        return [0] * (payload + 1)
    if pattern == "sext4":
        return [_sign_extend(payload, 4)]
    if pattern == "sext8":
        return [_sign_extend(payload, 8)]
    if pattern == "sext16":
        return [_sign_extend(payload, 16)]
    if pattern == "padded16":
        return [payload << 16]
    if pattern == "halfwords":
        high = _sign_extend(payload >> 8, 8) & 0xFFFF
        low = _sign_extend(payload & 0xFF, 8) & 0xFFFF
        return [high << 16 | low]
    if pattern == "repbytes":
        return [payload | payload << 8 | payload << 16 | payload << 24]
    if pattern == "uncompressed":
        return [payload]
    raise CompressionError(f"unknown FPC pattern {pattern!r}")


def _sign_extend(value: int, bits: int) -> int:
    """Sign-extend a ``bits``-bit value to an unsigned 32-bit word."""
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & 0xFFFFFFFF

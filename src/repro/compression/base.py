"""Common interface for cache compression algorithms.

Every algorithm consumes a 64-byte cache line (as ``bytes``) and produces a
:class:`CompressedBlock` describing the encoding chosen, the compressed size
in bytes, and enough information to reconstruct the original line exactly.
Decompression must be lossless; this is checked by round-trip tests and by
property-based tests in ``tests/compression``.

The simulators never store compressed payloads — only sizes matter for hit
rates — but the algorithms here are complete codecs so that compressibility
numbers are *measured*, not assumed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.compression.segments import LINE_SIZE_BYTES, SegmentGeometry


class CompressionError(ValueError):
    """Raised on malformed input to a compressor or decompressor."""


@dataclass(frozen=True)
class CompressedBlock:
    """Result of compressing one cache line.

    Attributes
    ----------
    algorithm:
        Short name of the producing algorithm (e.g. ``"bdi"``).
    encoding:
        Algorithm-specific encoding label (e.g. ``"base8-delta1"``); the
        label ``"uncompressed"`` means the line did not compress and
        ``size_bytes`` equals the line size.
    size_bytes:
        Compressed size in bytes, *including* any bases/dictionaries but
        excluding tag metadata (the encoding id lives in tag metadata per
        Section IV.C of the paper).
    payload:
        Opaque encoded representation sufficient for decompression.
    """

    algorithm: str
    encoding: str
    size_bytes: int
    payload: object

    @property
    def is_compressed(self) -> bool:
        """True when the encoding actually saved space."""
        return self.size_bytes < LINE_SIZE_BYTES

    @property
    def is_zero(self) -> bool:
        """True for all-zero blocks, which skip decompression (Section V)."""
        return self.encoding == "zeros"

    def size_in_segments(self, geometry: SegmentGeometry) -> int:
        """Compressed size rounded up to the geometry's segment granularity."""
        return geometry.size_in_segments(self.size_bytes)


class CompressionAlgorithm(abc.ABC):
    """Abstract lossless compressor for fixed-size cache lines."""

    #: Short identifier, used in reports and configuration files.
    name: str = "abstract"

    #: Decompression latency in cycles for compressed (non-zero) blocks.
    #: The paper charges 2 cycles for BDI (Section V).
    decompression_cycles: int = 2

    def __init__(self, line_size: int = LINE_SIZE_BYTES) -> None:
        if line_size <= 0 or line_size % 8 != 0:
            raise CompressionError(
                f"line_size must be a positive multiple of 8, got {line_size}"
            )
        self.line_size = line_size

    def _check_line(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise CompressionError(f"expected bytes, got {type(data).__name__}")
        if len(data) != self.line_size:
            raise CompressionError(
                f"expected a {self.line_size}-byte line, got {len(data)} bytes"
            )

    @abc.abstractmethod
    def compress(self, data: bytes) -> CompressedBlock:
        """Compress one cache line; never fails, falls back to uncompressed."""

    @abc.abstractmethod
    def decompress(self, block: CompressedBlock) -> bytes:
        """Reconstruct the original line exactly."""

    def compressed_size(self, data: bytes) -> int:
        """Convenience: compressed size in bytes of one line."""
        return self.compress(data).size_bytes

    def compression_ratio(self, data: bytes) -> float:
        """Original size divided by compressed size (>= 1.0).

        All-zero blocks, which compress to zero payload bytes, are reported
        with the conventional ratio of ``line_size`` (one metadata byte of
        effective storage) to keep the ratio finite.
        """
        size = self.compressed_size(data)
        if size == 0:
            return float(self.line_size)
        return self.line_size / size

    def _uncompressed(self, data: bytes) -> CompressedBlock:
        """Fallback block representing the line stored verbatim."""
        return CompressedBlock(
            algorithm=self.name,
            encoding="uncompressed",
            size_bytes=self.line_size,
            payload=bytes(data),
        )

"""Zero-content detection.

A trivial "compressor" that only recognises all-zero lines, modelling the
zero-content caches of Dusser et al. (ICS 2009) discussed in the paper's
related work, and the zero-block fast path of Section V: zero blocks are
identified from the tag-metadata size field and skip decompression
entirely.
"""

from __future__ import annotations

from repro.compression.base import (
    CompressedBlock,
    CompressionAlgorithm,
    CompressionError,
)


class ZeroContentCompressor(CompressionAlgorithm):
    """Detects all-zero lines; everything else is stored verbatim."""

    name = "zero"
    decompression_cycles = 0

    def compress(self, data: bytes) -> CompressedBlock:
        """Compress one cache line of raw bytes."""
        self._check_line(data)
        if bytes(data) == b"\x00" * self.line_size:
            return CompressedBlock(self.name, "zeros", 1, None)
        return self._uncompressed(bytes(data))

    def decompress(self, block: CompressedBlock) -> bytes:
        """Reconstruct the original line bytes."""
        if block.algorithm != self.name:
            raise CompressionError(
                f"block was produced by {block.algorithm!r}, not {self.name!r}"
            )
        if block.encoding == "zeros":
            return b"\x00" * self.line_size
        payload = block.payload
        if not isinstance(payload, bytes) or len(payload) != self.line_size:
            raise CompressionError("uncompressed payload must be the raw line")
        return payload

"""SC2: statistical cache compression with Huffman coding.

Implements the scheme of Arelakis and Stenstrom, "SC2: A Statistical
Compression Cache Scheme" (ISCA 2014), cited by the Base-Victim paper as
related work (Section VII).  SC2 samples the value distribution of cache
data, builds a Huffman code over the most frequent 32-bit words, and
encodes each word either with its Huffman code or with an escape prefix
followed by the verbatim word.

The hardware scheme trains periodically on cache contents; this
implementation exposes the same life cycle:

* :meth:`SC2Compressor.train` — build the codebook from sample lines,
* :meth:`SC2Compressor.compress` / :meth:`SC2Compressor.decompress` —
  use the current codebook (an untrained compressor knows only the
  always-present zero symbol).

Code lengths follow a canonical Huffman construction over observed
frequencies, capped at :data:`MAX_CODE_BITS` as real designs do.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter

from repro.compression.base import (
    CompressedBlock,
    CompressionAlgorithm,
    CompressionError,
)

_WORD_BYTES = 4

#: Number of frequent values the codebook may hold (SC2 uses O(water) —
#: a few hundred entries in the paper's design).
DEFAULT_CODEBOOK_SIZE = 256

#: Hardware decoders bound code length; longer codes are escape-coded.
MAX_CODE_BITS = 14

#: Escape prefix bits preceding a verbatim 32-bit word.
ESCAPE_BITS = 4


def _huffman_code_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Code length per symbol via the classic two-queue Huffman build."""
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        return {symbol: 1 for symbol in frequencies}
    counter = itertools.count()
    heap = [
        (freq, next(counter), {symbol: 0})
        for symbol, freq in frequencies.items()
    ]
    heapq.heapify(heap)
    while len(heap) > 1:
        freq_a, _, lengths_a = heapq.heappop(heap)
        freq_b, _, lengths_b = heapq.heappop(heap)
        merged = {s: n + 1 for s, n in lengths_a.items()}
        merged.update({s: n + 1 for s, n in lengths_b.items()})
        heapq.heappush(heap, (freq_a + freq_b, next(counter), merged))
    return heap[0][2]


class SC2Compressor(CompressionAlgorithm):
    """Huffman-based statistical compressor with explicit training."""

    name = "sc2"
    decompression_cycles = 8

    def __init__(
        self,
        line_size: int = 64,
        codebook_size: int = DEFAULT_CODEBOOK_SIZE,
    ) -> None:
        super().__init__(line_size)
        if codebook_size <= 0:
            raise CompressionError(
                f"codebook_size must be positive, got {codebook_size}"
            )
        self.codebook_size = codebook_size
        #: word -> code length in bits.  Untrained: zero is 1 bit (the
        #: overwhelmingly frequent value in any cache).
        self._code_bits: dict[int, int] = {0: 1}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self, sample_lines: list[bytes]) -> None:
        """Rebuild the codebook from sampled cache lines."""
        counts: Counter[int] = Counter()
        for line in sample_lines:
            self._check_line(line)
            for i in range(0, self.line_size, _WORD_BYTES):
                counts[int.from_bytes(line[i : i + _WORD_BYTES], "little")] += 1
        if not counts:
            raise CompressionError("cannot train on an empty sample")
        frequent = dict(counts.most_common(self.codebook_size))
        lengths = _huffman_code_lengths(frequent)
        self._code_bits = {
            symbol: min(length, MAX_CODE_BITS)
            for symbol, length in lengths.items()
        }
        # Zero always stays encodable even if absent from the sample.
        self._code_bits.setdefault(0, MAX_CODE_BITS)

    @property
    def codebook(self) -> dict[int, int]:
        """Current word -> code-length table (copied)."""
        return dict(self._code_bits)

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------

    def compress(self, data: bytes) -> CompressedBlock:
        """Compress one cache line of raw bytes."""
        self._check_line(data)
        data = bytes(data)
        words = [
            int.from_bytes(data[i : i + _WORD_BYTES], "little")
            for i in range(0, self.line_size, _WORD_BYTES)
        ]
        bits = 0
        for word in words:
            code = self._code_bits.get(word)
            if code is not None:
                bits += code
            else:
                bits += ESCAPE_BITS + 32
        size = -(-bits // 8)
        if size >= self.line_size:
            return self._uncompressed(data)
        encoding = "zeros" if data == b"\x00" * self.line_size else "sc2"
        return CompressedBlock(self.name, encoding, size, tuple(words))

    def decompress(self, block: CompressedBlock) -> bytes:
        """Reconstruct the original line bytes."""
        if block.algorithm != self.name:
            raise CompressionError(
                f"block was produced by {block.algorithm!r}, not {self.name!r}"
            )
        if block.encoding == "uncompressed":
            payload = block.payload
            if not isinstance(payload, bytes) or len(payload) != self.line_size:
                raise CompressionError("uncompressed payload must be the raw line")
            return payload
        words = block.payload
        if not isinstance(words, tuple):
            raise CompressionError(f"unknown SC2 encoding {block.encoding!r}")
        return b"".join(word.to_bytes(_WORD_BYTES, "little") for word in words)

"""Vectorised miss-path size kernels (NumPy).

The Base-Victim LLC asks for a line's compressed size on every fill
(Section IV.B), and the palette machinery in
:mod:`repro.workloads.datagen` compresses hundreds of synthesised lines
per trace with the scalar codecs.  Both costs are pure functions of the
line bytes, so — following the "take compression off the critical path"
argument of Pekhimenko et al. — this module recomputes them in bulk:

* :func:`bdi_size_bytes` / :func:`fpc_size_bytes` /
  :func:`cpack_size_bytes` compute compressed sizes for a whole matrix
  of 64-byte lines in one vectorised pass, byte-identical to the scalar
  codecs in :mod:`repro.compression.bdi`/``fpc``/``cpack`` (enforced by
  ``tests/compression/test_kernels.py``);
* :func:`ring_bases` evaluates the data model's address hash over the
  distinct addresses of a trace's v3 columnar address array, so the
  per-address size memo can be primed in one pass at load time.

NumPy is an optional dependency: every consumer checks
:func:`available` and degrades to the scalar path without it.  The
kernels are *size* kernels only — they never build payloads, so
decompression still goes through the scalar codecs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

try:  # NumPy is optional; consumers degrade to the scalar codecs without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None  # type: ignore[assignment]

#: Line size the kernels are specialised for (the paper's 64B lines).
LINE_BYTES = 64

#: Knuth multiplicative hash constant (mirrors repro.workloads.datagen).
_HASH_MULT = 0x9E3779B97F4A7C15

#: BDI delta-encoding sizes: (base_size, delta_size) -> size_bytes, via
#: ``base + n_words * delta + ceil(n_words / 8)`` with n_words = 64/base.
_BDI_ENCODING_SIZES: tuple[tuple[int, int, int], ...] = (
    (8, 1, 17),
    (8, 2, 25),
    (8, 4, 41),
    (4, 1, 22),
    (4, 2, 38),
    (2, 1, 38),
)


def available() -> bool:
    """True when the vectorised kernels can run in this interpreter."""
    return np is not None


def lines_matrix(lines: Iterable[bytes]) -> "np.ndarray":
    """Stack 64-byte lines into one contiguous ``[N, 64]`` uint8 matrix."""
    joined = b"".join(lines)
    if len(joined) % LINE_BYTES:
        raise ValueError(
            f"lines must all be {LINE_BYTES} bytes (got {len(joined)} total)"
        )
    return np.frombuffer(joined, dtype=np.uint8).reshape(-1, LINE_BYTES)


# ----------------------------------------------------------------------
# BDI (repro.compression.bdi.BDICompressor)
# ----------------------------------------------------------------------


def _bdi_encoding_applies(
    lines: "np.ndarray", base_size: int, delta_size: int
) -> "np.ndarray":
    """Per-row: does BDI encoding (base_size, delta_size) apply?"""
    unsigned = lines.view(f"<u{base_size}")
    signed = lines.view(f"<i{base_size}")
    bound = 1 << (8 * delta_size - 1)
    # The signed view *is* the scalar code's "signed distance from the
    # implicit zero base" (word - modulus when word >= half).
    from_zero = (signed >= -bound) & (signed < bound)
    # Base = first word not within delta range of zero (argmax finds the
    # first True; rows where every word is from-zero never read it).
    base_col = np.argmax(~from_zero, axis=1)
    base = np.take_along_axis(unsigned, base_col[:, None], axis=1)
    # Wrapped unsigned subtraction viewed as signed == the scalar code's
    # representative of (word - base) mod 2^(8*base_size) in [-half, half).
    delta = (unsigned - base).view(f"<i{base_size}")
    fits = (delta >= -bound) & (delta < bound)
    return (from_zero | fits).all(axis=1)


def bdi_size_bytes(lines: "np.ndarray") -> "np.ndarray":
    """BDI compressed size in bytes per row of a ``[N, 64]`` uint8 matrix."""
    n = lines.shape[0]
    best = np.full(n, LINE_BYTES, dtype=np.int64)
    for base_size, delta_size, size in _BDI_ENCODING_SIZES:
        applies = _bdi_encoding_applies(lines, base_size, delta_size)
        np.minimum(best, np.where(applies, size, LINE_BYTES), out=best)
    # Special cases override the delta encodings (checked first scalar-side).
    words8 = lines.view("<u8")
    repeated = (words8 == words8[:, :1]).all(axis=1)
    best[repeated] = 8
    best[~lines.any(axis=1)] = 1
    return best


# ----------------------------------------------------------------------
# FPC (repro.compression.fpc.FPCCompressor)
# ----------------------------------------------------------------------


def fpc_size_bytes(lines: "np.ndarray") -> "np.ndarray":
    """FPC compressed size in bytes per row of a ``[N, 64]`` uint8 matrix."""
    unsigned = lines.view("<u4")
    signed = lines.view("<i4")
    zero = unsigned == 0

    # Non-zero word payload bits, first-match order as in fpc._encode_word.
    high = (unsigned >> 16).astype(np.int64)
    low = (unsigned & 0xFFFF).astype(np.int64)
    high_signed = np.where(high >= 1 << 15, high - (1 << 16), high)
    low_signed = np.where(low >= 1 << 15, low - (1 << 16), low)
    byte0 = unsigned & 0xFF
    payload_bits = np.select(
        [
            (signed >= -8) & (signed < 8),
            (signed >= -128) & (signed < 128),
            (signed >= -(1 << 15)) & (signed < 1 << 15),
            low == 0,
            (high_signed >= -128)
            & (high_signed < 128)
            & (low_signed >= -128)
            & (low_signed < 128),
            unsigned == byte0 * np.uint32(0x01010101),
        ],
        [4, 8, 16, 16, 16, 8],
        default=32,
    )
    bits = np.where(zero, 0, 3 + payload_bits).sum(axis=1)

    # Zero runs: one 6-bit (prefix + length) chunk per <= 8 consecutive
    # zero words.  A chunk starts wherever a zero word's position within
    # its run is a multiple of 8.
    cols = np.arange(unsigned.shape[1], dtype=np.int64)
    run_start = zero.copy()
    run_start[:, 1:] &= ~zero[:, :-1]
    start_col = np.maximum.accumulate(np.where(run_start, cols, -1), axis=1)
    run_pos = cols - start_col
    chunk_start = zero & (run_pos % 8 == 0)
    bits = bits + 6 * chunk_start.sum(axis=1)

    size = (bits + 7) // 8
    return np.where(size >= LINE_BYTES, LINE_BYTES, size)


# ----------------------------------------------------------------------
# C-Pack (repro.compression.cpack.CPackCompressor)
# ----------------------------------------------------------------------


def cpack_size_bytes(lines: "np.ndarray") -> "np.ndarray":
    """C-Pack compressed size in bytes per row of a ``[N, 64]`` uint8 matrix."""
    words = lines.view(">u4").astype(np.uint32)  # big-endian, as scalar
    n, n_words = words.shape
    # 16-word lines push at most 16 entries, so the FIFO never pops and
    # the dictionary is insert-only: entry i is the i-th pushed word.
    dictionary = np.zeros((n, n_words), dtype=np.uint32)
    dict_valid = np.zeros((n, n_words), dtype=bool)
    dict_count = np.zeros(n, dtype=np.int64)
    bits = np.zeros(n, dtype=np.int64)
    rows = np.arange(n)
    for col in range(n_words):
        word = words[:, col]
        is_zero = word == 0
        full = ((dictionary == word[:, None]) & dict_valid).any(axis=1)
        high3 = (
            ((dictionary >> np.uint32(8)) == (word >> np.uint32(8))[:, None])
            & dict_valid
        ).any(axis=1)
        high2 = (
            ((dictionary >> np.uint32(16)) == (word >> np.uint32(16))[:, None])
            & dict_valid
        ).any(axis=1)
        # Priority mirrors cpack._encode_word: zero, full match, byte
        # zero-extension, then partial dictionary matches by cost (an
        # mmmb match at 16 bits always beats mmbb at 24).
        bits += np.select(
            [is_zero, full, word <= 0xFF, high3, high2],
            [2, 6, 12, 16, 24],
            default=34,
        )
        push = ~(is_zero | full)
        push_rows = rows[push]
        push_slots = dict_count[push]
        dictionary[push_rows, push_slots] = word[push]
        dict_valid[push_rows, push_slots] = True
        dict_count[push] += 1
    size = (bits + 7) // 8
    return np.where(size >= LINE_BYTES, LINE_BYTES, size)


#: Codec name -> vectorised size kernel, for the codecs that have one
#: (SC2 trains on cache contents and the zero codec is trivial; both
#: stay scalar in repro.compression.stats).
SIZE_KERNELS = {
    "bdi": bdi_size_bytes,
    "fpc": fpc_size_bytes,
    "cpack": cpack_size_bytes,
}


def size_histogram(kernel, lines: Sequence[bytes]) -> tuple[tuple[int, int], ...]:
    """((size_bytes, count), ...) over ``lines``, sorted by size."""
    sizes, counts = np.unique(kernel(lines_matrix(lines)), return_counts=True)
    return tuple(zip(sizes.tolist(), counts.tolist()))


# ----------------------------------------------------------------------
# Address-hash kernel (repro.workloads.datagen.LineDataModel)
# ----------------------------------------------------------------------


def ring_bases(addrs, seed: int, ring_size: int) -> "tuple[np.ndarray, np.ndarray]":
    """(distinct addresses, ``_mix(addr ^ seed) % ring_size``) for a trace.

    ``addrs`` is anything the buffer protocol exposes as int64 (the v3
    columnar address array).  One vectorised pass replaces millions of
    scalar hash evaluations with one per *distinct* line address.
    """
    unique = np.unique(np.frombuffer(addrs, dtype=np.int64))
    mixed = unique.astype(np.uint64) ^ np.uint64(seed & 0xFFFF_FFFF_FFFF_FFFF)
    mixed = mixed * np.uint64(_HASH_MULT)  # wraps mod 2^64, like the scalar mask
    mixed ^= mixed >> np.uint64(29)
    return unique, (mixed % np.uint64(ring_size)).astype(np.int64)

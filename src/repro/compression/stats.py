"""Per-codec compressed-size statistics for observability.

Pekhimenko-style analyses (and Section VI.A of the Base-Victim paper)
explain capacity results through the *distribution* of compressed block
sizes, not just its mean.  This module compresses a workload's palette
lines with every registered algorithm and publishes one size histogram
per codec into a :class:`~repro.obs.registry.CounterRegistry`.

The histograms depend only on the palette bytes, which are a pure
function of (category, compressibility class, seed) — so results are
memoised per palette and identical across worker processes, keeping the
parallel engine's byte-identity guarantee intact.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

from repro.compression import ALGORITHMS, kernels, make_compressor


@lru_cache(maxsize=256)
def _size_histograms(lines: tuple[bytes, ...]) -> tuple[tuple[str, tuple[tuple[int, int], ...]], ...]:
    """(codec name, ((size_bytes, count), ...)) per registered algorithm.

    Codecs with a vectorised size kernel (BDI/FPC/C-Pack) reconstruct
    their histogram from one kernel pass; SC2 (which trains on the line
    set) and the zero codec stay scalar.  Kernel and scalar sizes are
    byte-identical (tests/compression/test_kernels.py), so the published
    observations never depend on NumPy's presence.
    """
    vectorised = kernels.available()
    out = []
    for name in sorted(ALGORITHMS):
        kernel = kernels.SIZE_KERNELS.get(name) if vectorised else None
        if kernel is not None:
            out.append((name, kernels.size_histogram(kernel, lines)))
            continue
        compressor = make_compressor(name)
        train = getattr(compressor, "train", None)
        if callable(train):
            # SC2-style codecs train on cache contents before compressing.
            train(list(lines))
        counts: dict[int, int] = {}
        for data in lines:
            size = compressor.compress(data).size_bytes
            counts[size] = counts.get(size, 0) + 1
        out.append((name, tuple(sorted(counts.items()))))
    return tuple(out)


def codec_size_histograms(lines: Iterable[bytes]) -> dict[str, dict[int, int]]:
    """Compressed-size histogram (bytes -> line count) per codec."""
    return {
        name: dict(buckets)
        for name, buckets in _size_histograms(tuple(lines))
    }


def publish_codec_histograms(registry, lines: Sequence[bytes]) -> None:
    """Publish per-codec size histograms under ``codec/<name>/size_bytes``."""
    if not lines:
        return
    for name, buckets in _size_histograms(tuple(lines)):
        histogram = registry.histogram(f"codec/{name}/size_bytes")
        for size, count in buckets:
            histogram.observe(size, count)

"""Cache compression algorithms.

The Base-Victim paper uses BDI (Section V); FPC, C-Pack and zero-content
detection are provided as drop-in alternatives since the architecture is
algorithm-agnostic (Section VII.A: "we can use any of the previously
proposed compression algorithms").
"""

from repro.compression.base import (
    CompressedBlock,
    CompressionAlgorithm,
    CompressionError,
)
from repro.compression.bdi import BDI_ENCODINGS, BDICompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.fpc import FPCCompressor
from repro.compression.sc2 import SC2Compressor
from repro.compression.segments import (
    EVAL_GEOMETRY,
    EVAL_SEGMENT_BYTES,
    EXAMPLE_GEOMETRY,
    EXAMPLE_SEGMENT_BYTES,
    LINE_SIZE_BYTES,
    SegmentError,
    SegmentGeometry,
)
from repro.compression.zero import ZeroContentCompressor

#: Registry of available algorithms by name, for configuration files.
ALGORITHMS: dict[str, type[CompressionAlgorithm]] = {
    BDICompressor.name: BDICompressor,
    FPCCompressor.name: FPCCompressor,
    CPackCompressor.name: CPackCompressor,
    SC2Compressor.name: SC2Compressor,
    ZeroContentCompressor.name: ZeroContentCompressor,
}


def make_compressor(name: str, line_size: int = LINE_SIZE_BYTES) -> CompressionAlgorithm:
    """Instantiate a registered compression algorithm by name."""
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise CompressionError(f"unknown algorithm {name!r}; known: {known}") from None
    return cls(line_size)


__all__ = [
    "ALGORITHMS",
    "BDI_ENCODINGS",
    "BDICompressor",
    "CompressedBlock",
    "CompressionAlgorithm",
    "CompressionError",
    "CPackCompressor",
    "EVAL_GEOMETRY",
    "EVAL_SEGMENT_BYTES",
    "EXAMPLE_GEOMETRY",
    "EXAMPLE_SEGMENT_BYTES",
    "FPCCompressor",
    "LINE_SIZE_BYTES",
    "make_compressor",
    "SC2Compressor",
    "SegmentError",
    "SegmentGeometry",
    "ZeroContentCompressor",
]

"""C-Pack (Cache Packer) compression.

Implements the dictionary-based algorithm of Chen et al., "C-Pack: A High-
Performance Microprocessor Cache Compression Algorithm" (IEEE TVLSI 2010),
cited as related work by the Base-Victim paper (Section VII).  The line is
scanned as 32-bit words; each word is encoded by the cheapest of:

====  =================================  =========================
code  meaning                            encoded bits (incl. code)
====  =================================  =========================
00    zero word                           2
01    full match with a dictionary entry  2 + 4 (dictionary index)
10    word stored verbatim                2 + 32
1100  zero-extended byte (000B)           4 + 8
1101  match high 3 bytes (mmmB)           4 + 4 + 8
1110  match high 2 bytes (mmBB)           4 + 4 + 16
====  =================================  =========================

The dictionary is a 16-entry FIFO of previously seen words, updated with
every word that was not a zero or full match (as in the original design).
Decompression replays the same dictionary updates, so the codec is
self-contained and lossless.
"""

from __future__ import annotations

from repro.compression.base import (
    CompressedBlock,
    CompressionAlgorithm,
    CompressionError,
)

_WORD_BYTES = 4
_DICT_ENTRIES = 16
_INDEX_BITS = 4


class CPackCompressor(CompressionAlgorithm):
    """C-Pack dictionary codec."""

    name = "cpack"
    decompression_cycles = 8

    def compress(self, data: bytes) -> CompressedBlock:
        """Compress one cache line of raw bytes."""
        self._check_line(data)
        data = bytes(data)
        words = [
            int.from_bytes(data[i : i + _WORD_BYTES], "big")
            for i in range(0, self.line_size, _WORD_BYTES)
        ]

        dictionary: list[int] = []
        entries: list[tuple[str, int, int]] = []
        bits = 0
        for word in words:
            kind, payload, cost = self._encode_word(word, dictionary)
            entries.append((kind, payload, cost))
            bits += cost
            if kind not in ("zero", "full"):
                self._push(dictionary, word)

        size = -(-bits // 8)
        if size >= self.line_size:
            return self._uncompressed(data)
        if data == b"\x00" * self.line_size:
            return CompressedBlock(self.name, "zeros", size, tuple(entries))
        return CompressedBlock(self.name, "cpack", size, tuple(entries))

    @staticmethod
    def _push(dictionary: list[int], word: int) -> None:
        """FIFO insert, bounded at 16 entries."""
        dictionary.append(word)
        if len(dictionary) > _DICT_ENTRIES:
            dictionary.pop(0)

    @staticmethod
    def _encode_word(word: int, dictionary: list[int]) -> tuple[str, int, int]:
        """Pick the cheapest encoding for ``word`` given the dictionary."""
        if word == 0:
            return "zero", 0, 2
        if word in dictionary:
            return "full", dictionary.index(word), 2 + _INDEX_BITS
        if word <= 0xFF:
            return "zzzb", word, 4 + 8
        best: tuple[str, int, int] | None = None
        for index, entry in enumerate(dictionary):
            if entry >> 8 == word >> 8:
                candidate = ("mmmb", (index << 8) | (word & 0xFF), 4 + _INDEX_BITS + 8)
                if best is None or candidate[2] < best[2]:
                    best = candidate
            elif entry >> 16 == word >> 16:
                candidate = (
                    "mmbb",
                    (index << 16) | (word & 0xFFFF),
                    4 + _INDEX_BITS + 16,
                )
                if best is None or candidate[2] < best[2]:
                    best = candidate
        if best is not None:
            return best
        return "verbatim", word, 2 + 32

    def decompress(self, block: CompressedBlock) -> bytes:
        """Reconstruct the original line bytes."""
        if block.algorithm != self.name:
            raise CompressionError(
                f"block was produced by {block.algorithm!r}, not {self.name!r}"
            )
        if block.encoding == "uncompressed":
            payload = block.payload
            if not isinstance(payload, bytes) or len(payload) != self.line_size:
                raise CompressionError("uncompressed payload must be the raw line")
            return payload
        entries = block.payload
        if not isinstance(entries, tuple):
            raise CompressionError(f"unknown C-Pack encoding {block.encoding!r}")

        dictionary: list[int] = []
        words: list[int] = []
        for kind, payload, _ in entries:
            word = self._decode_word(kind, payload, dictionary)
            words.append(word)
            if kind not in ("zero", "full"):
                self._push(dictionary, word)
        if len(words) != self.line_size // _WORD_BYTES:
            raise CompressionError(
                f"decoded {len(words)} words, expected {self.line_size // _WORD_BYTES}"
            )
        return b"".join(word.to_bytes(_WORD_BYTES, "big") for word in words)

    @staticmethod
    def _decode_word(kind: str, payload: int, dictionary: list[int]) -> int:
        """Expand one C-Pack entry back to a 32-bit word."""
        if kind == "zero":
            return 0
        if kind == "full":
            return dictionary[payload]
        if kind == "zzzb":
            return payload
        if kind == "mmmb":
            index, low = payload >> 8, payload & 0xFF
            return (dictionary[index] >> 8) << 8 | low
        if kind == "mmbb":
            index, low = payload >> 16, payload & 0xFFFF
            return (dictionary[index] >> 16) << 16 | low
        if kind == "verbatim":
            return payload
        raise CompressionError(f"unknown C-Pack entry kind {kind!r}")

"""Base-Delta-Immediate (BDI) compression.

Implements the cache compression algorithm of Pekhimenko et al., "Base-
Delta-Immediate Compression: Practical Data Compression for On-Chip Caches"
(PACT 2012), which the Base-Victim paper adopts as its LLC compression
algorithm (Section V) for its fast two-cycle decompression.

A 64-byte line is viewed as an array of ``base_size``-byte words.  The line
compresses under encoding ``(base_size, delta_size)`` when every word is
within a narrow ``delta_size``-byte signed delta of either (a) a single
arbitrary base value — the first word that is not close to zero — or (b) an
implicit zero base (the "immediate" case).  A per-word bitmask records which
base each word used.

Special cases checked first, cheapest encodings preferred:

* ``zeros``     — the whole line is zero; 1 byte.
* ``repeated``  — one 8-byte value repeated; 8 bytes.

The compressed size charged for a delta encoding is
``base_size + n_words * delta_size + ceil(n_words / 8)`` (the last term is
the base-selection bitmask).  Among all applicable encodings the smallest
is chosen; if none beats the uncompressed size the line is stored verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import (
    CompressedBlock,
    CompressionAlgorithm,
    CompressionError,
)

#: The (base_size, delta_size) pairs evaluated by the BDI paper, in bytes.
BDI_ENCODINGS: tuple[tuple[int, int], ...] = (
    (8, 1),
    (8, 2),
    (8, 4),
    (4, 1),
    (4, 2),
    (2, 1),
)


@dataclass(frozen=True)
class _DeltaPayload:
    """Internal payload for a base+delta encoding."""

    base_size: int
    delta_size: int
    base: int
    deltas: tuple[int, ...]
    from_zero: tuple[bool, ...]


def _words(data: bytes, word_size: int) -> list[int]:
    """Split a line into little-endian unsigned words of ``word_size`` bytes."""
    return [
        int.from_bytes(data[i : i + word_size], "little")
        for i in range(0, len(data), word_size)
    ]


def _signed_fits(delta: int, delta_size: int) -> bool:
    """True iff ``delta`` fits in a signed ``delta_size``-byte integer."""
    bound = 1 << (8 * delta_size - 1)
    return -bound <= delta < bound


class BDICompressor(CompressionAlgorithm):
    """Base-Delta-Immediate codec for fixed-size cache lines."""

    name = "bdi"
    decompression_cycles = 2

    def compress(self, data: bytes) -> CompressedBlock:
        """Compress one cache line of raw bytes."""
        self._check_line(data)
        data = bytes(data)

        if data == b"\x00" * self.line_size:
            return CompressedBlock(self.name, "zeros", 1, None)

        first_word = data[:8]
        if data == first_word * (self.line_size // 8):
            return CompressedBlock(
                self.name, "repeated", 8, int.from_bytes(first_word, "little")
            )

        best: CompressedBlock | None = None
        for base_size, delta_size in BDI_ENCODINGS:
            block = self._try_delta_encoding(data, base_size, delta_size)
            if block is not None and (best is None or block.size_bytes < best.size_bytes):
                best = block

        if best is not None and best.size_bytes < self.line_size:
            return best
        return self._uncompressed(data)

    def _try_delta_encoding(
        self, data: bytes, base_size: int, delta_size: int
    ) -> CompressedBlock | None:
        """Attempt one (base, delta) pair; None when any word does not fit."""
        words = _words(data, base_size)
        n_words = len(words)
        half = 1 << (8 * base_size - 1)
        modulus = 1 << (8 * base_size)

        base: int | None = None
        deltas: list[int] = []
        from_zero: list[bool] = []
        for word in words:
            # Signed distance from the implicit zero base.
            signed_word = word - modulus if word >= half else word
            if _signed_fits(signed_word, delta_size):
                deltas.append(signed_word)
                from_zero.append(True)
                continue
            if base is None:
                base = word
            delta = word - base
            # Deltas wrap modulo the word size; take the representative
            # closest to zero so e.g. 0xFF..FF - 0 compresses as -1 would.
            if delta >= half:
                delta -= modulus
            elif delta < -half:
                delta += modulus
            if not _signed_fits(delta, delta_size):
                return None
            deltas.append(delta)
            from_zero.append(False)

        mask_bytes = -(-n_words // 8)
        size = base_size + n_words * delta_size + mask_bytes
        payload = _DeltaPayload(
            base_size=base_size,
            delta_size=delta_size,
            base=base if base is not None else 0,
            deltas=tuple(deltas),
            from_zero=tuple(from_zero),
        )
        encoding = f"base{base_size}-delta{delta_size}"
        return CompressedBlock(self.name, encoding, size, payload)

    def decompress(self, block: CompressedBlock) -> bytes:
        """Reconstruct the original line bytes."""
        if block.algorithm != self.name:
            raise CompressionError(
                f"block was produced by {block.algorithm!r}, not {self.name!r}"
            )
        if block.encoding == "zeros":
            return b"\x00" * self.line_size
        if block.encoding == "repeated":
            value = block.payload
            if not isinstance(value, int):
                raise CompressionError("repeated-value payload must be an int")
            return value.to_bytes(8, "little") * (self.line_size // 8)
        if block.encoding == "uncompressed":
            payload = block.payload
            if not isinstance(payload, bytes) or len(payload) != self.line_size:
                raise CompressionError("uncompressed payload must be the raw line")
            return payload

        payload = block.payload
        if not isinstance(payload, _DeltaPayload):
            raise CompressionError(f"unknown BDI encoding {block.encoding!r}")
        modulus = 1 << (8 * payload.base_size)
        out = bytearray()
        for delta, zero_based in zip(payload.deltas, payload.from_zero):
            base = 0 if zero_based else payload.base
            word = (base + delta) % modulus
            out += word.to_bytes(payload.base_size, "little")
        if len(out) != self.line_size:
            raise CompressionError(
                f"decompressed {len(out)} bytes, expected {self.line_size}"
            )
        return bytes(out)

"""Opt-in per-access tracing with a bounded event window.

When a golden figure drifts, the first question is *which access
diverged* — and answering it with a debugger inside a 50k-access loop is
miserable.  The tracer records the first ``limit`` accesses of a run as
plain dicts (index, address, kind, serving level) and counts the rest,
so two runs can be diffed event-by-event.

Activation:

* ``REPRO_TRACE=1`` in the environment (picked up by the single-core
  driver), with ``REPRO_TRACE_LIMIT`` overriding the window size and
  ``REPRO_TRACE_FILE`` redirecting output from stderr to a file, or
* ``repro stats --trace-events`` on the CLI (the spelling avoids the
  ``--trace`` flag, which already names the trace to simulate).

Tracing is a *serial-only* diagnostic: the parallel engine strips
``REPRO_TRACE`` from worker environments so a sweep never interleaves
event streams from many processes.  Recording never alters simulation
state, so traced and untraced runs produce identical results.
"""

from __future__ import annotations

import json
import os
import sys
from typing import IO

#: Environment switch: any value other than "", "0" enables tracing.
TRACE_ENV = "REPRO_TRACE"

#: Maximum number of events recorded per run (default 200).
TRACE_LIMIT_ENV = "REPRO_TRACE_LIMIT"

#: Optional output path; events append as JSONL.  Default: stderr.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"

DEFAULT_LIMIT = 200


class TraceRecorder:
    """Bounded-window recorder for per-access simulation events."""

    __slots__ = ("limit", "events", "dropped", "path")

    def __init__(self, limit: int = DEFAULT_LIMIT, path: str | None = None) -> None:
        if limit <= 0:
            raise ValueError(f"trace limit must be positive, got {limit}")
        self.limit = limit
        self.events: list[dict] = []
        self.dropped = 0
        self.path = path

    @property
    def active(self) -> bool:
        """True while the window still has room."""
        return len(self.events) < self.limit

    def record(self, **fields: object) -> None:
        """Record one event (or count it as dropped past the window)."""
        if len(self.events) < self.limit:
            self.events.append(fields)
        else:
            self.dropped += 1

    @classmethod
    def from_env(cls, force: bool = False) -> "TraceRecorder | None":
        """Build a recorder if ``$REPRO_TRACE`` (or ``force``) asks for one.

        ``force=True`` (used by ``repro stats --trace-events``) builds a
        recorder regardless of ``$REPRO_TRACE`` while still honouring
        the limit and output-file variables.
        """
        flag = os.environ.get(TRACE_ENV, "").strip()
        if not force and flag in ("", "0"):
            return None
        limit = DEFAULT_LIMIT
        raw_limit = os.environ.get(TRACE_LIMIT_ENV, "").strip()
        if raw_limit:
            try:
                limit = int(raw_limit)
            except ValueError:
                raise ValueError(
                    f"${TRACE_LIMIT_ENV} must be an integer, got {raw_limit!r}"
                ) from None
        return cls(limit=limit, path=os.environ.get(TRACE_FILE_ENV) or None)

    def flush(self, stream: IO[str] | None = None) -> int:
        """Write the window as JSONL; returns events written.

        Events go to ``stream`` if given, else to the path configured at
        construction (append mode), else to stderr.  The window and the
        dropped count reset so one recorder can serve several runs.
        """
        events, dropped = self.events, self.dropped
        self.events, self.dropped = [], 0
        if not events:
            return 0
        if stream is not None:
            return _write_events(stream, events, dropped)
        if self.path is not None:
            with open(self.path, "a") as handle:
                return _write_events(handle, events, dropped)
        return _write_events(sys.stderr, events, dropped)


def _write_events(stream: IO[str], events: list[dict], dropped: int) -> int:
    for event in events:
        stream.write(json.dumps(event, sort_keys=True) + "\n")
    if dropped:
        stream.write(
            json.dumps({"truncated": True, "dropped_events": dropped}) + "\n"
        )
    return len(events)

"""Structured observability for the simulator.

The simulation layers publish their counters into a hierarchical
:class:`~repro.obs.registry.CounterRegistry` at the end of every run:
the cache hierarchy (hit/miss breakdown by level), the Base-Victim LLC
(partner victimization, demotions, victim-cache occupancy), the victim
insertion policy, and the compression codecs (per-codec compressed-size
histograms).  The registry serialises deterministically into the JSONL
result cache, merges across parallel worker shards with per-kind
semantics (:func:`~repro.obs.registry.merge_observations`), and surfaces
through ``repro stats`` / ``repro stats --json``.

Opt-in tracing (:mod:`repro.obs.tracing`, ``REPRO_TRACE=1``) records a
bounded window of per-access events for diagnosing golden-figure
mismatches without a debugger.
"""

from repro.obs.registry import (
    Counter,
    CounterRegistry,
    Histogram,
    MetricKindError,
    Timer,
    merge_observations,
)
from repro.obs.tracing import (
    TRACE_ENV,
    TRACE_FILE_ENV,
    TRACE_LIMIT_ENV,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "CounterRegistry",
    "Histogram",
    "MetricKindError",
    "Timer",
    "TraceRecorder",
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "TRACE_LIMIT_ENV",
    "merge_observations",
]

"""Hierarchical counter registry with deterministic serialisation.

Three metric kinds cover everything the paper's analyses need:

* :class:`Counter` — a monotonically growing integer (hits, demotions,
  partner victimizations…).  Merges across shards by summation.
* :class:`Histogram` — integer-bucketed value counts (victim-cache
  occupancy samples, per-codec compressed sizes).  Merges bucketwise.
* :class:`Timer` — accumulated wall-clock seconds for a phase.  Timers
  are *excluded* from the deterministic serialised form: wall time is
  not a pure function of (preset, machine, trace), and including it
  would break the ``jobs=1`` / ``jobs=4`` byte-identity guarantee the
  result cache depends on.  ``repro stats`` reports the live process's
  timers separately.

Metric names are hierarchical ``/``-separated paths ("llc/victim_hits",
"codec/bdi/size_bytes"); :meth:`CounterRegistry.scoped` gives a
publisher a view that prefixes everything it records.

Serialised observations are plain dicts — ``{name: {"kind": ...,
...}}`` — so they travel inside the JSONL result cache unchanged, and
:func:`merge_observations` aggregates them across traces, shards or
whole sweeps with per-kind merge semantics.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping


class MetricKindError(TypeError):
    """A metric name was used with two different kinds."""


class Counter:
    """Sum-merged integer metric."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Add ``amount`` to the counter."""
        self.value += amount

    def as_dict(self) -> dict:
        """Serialisable (JSON-safe) representation."""
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Bucketwise-merged integer-valued histogram."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}

    def observe(self, value: int, count: int = 1) -> None:
        """Record ``count`` samples of ``value``."""
        self.buckets[value] = self.buckets.get(value, 0) + count

    @property
    def total(self) -> int:
        """Total samples recorded across all buckets."""
        return sum(self.buckets.values())

    def as_dict(self) -> dict:
        # JSON objects key on strings; sort numerically so the
        # serialised form is canonical regardless of insertion order.
        """Serialisable (JSON-safe) representation."""
        return {
            "kind": self.kind,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }


class Timer:
    """Accumulated wall-clock seconds; excluded from serialisation."""

    kind = "timer"
    __slots__ = ("seconds", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds += time.perf_counter() - self._started

    def as_dict(self) -> dict:
        """Serialisable (JSON-safe) representation."""
        return {"kind": self.kind, "seconds": self.seconds}


class CounterRegistry:
    """Namespace of named metrics that simulation layers publish into."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Histogram | Timer] = {}

    def _get(self, name: str, cls: type) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise MetricKindError(
                f"metric {name!r} is a {metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """Get or create the named histogram."""
        return self._get(name, Histogram)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        """Get or create the named timer."""
        return self._get(name, Timer)  # type: ignore[return-value]

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand: bump the counter ``name``."""
        self.counter(name).add(amount)

    def observe(self, name: str, value: int, count: int = 1) -> None:
        """Shorthand: record one histogram observation."""
        self.histogram(name).observe(value, count)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A view that prefixes every metric name with ``prefix/``."""
        return ScopedRegistry(self, prefix)

    @property
    def timers(self) -> dict[str, float]:
        """Live timer values (seconds) by name; not serialised."""
        return {
            name: metric.seconds
            for name, metric in sorted(self._metrics.items())
            if isinstance(metric, Timer)
        }

    def as_dict(self) -> dict:
        """Deterministic serialised form: sorted names, no timers."""
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
            if not isinstance(metric, Timer)
        }


class ScopedRegistry:
    """Prefixing view over a :class:`CounterRegistry`."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: CounterRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip("/")

    def _name(self, name: str) -> str:
        return f"{self._prefix}/{name}"

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._registry.counter(self._name(name))

    def histogram(self, name: str) -> Histogram:
        """Get or create the named histogram."""
        return self._registry.histogram(self._name(name))

    def timer(self, name: str) -> Timer:
        """Get or create the named timer."""
        return self._registry.timer(self._name(name))

    def inc(self, name: str, amount: int = 1) -> None:
        """Bump the named counter."""
        self._registry.inc(self._name(name), amount)

    def observe(self, name: str, value: int, count: int = 1) -> None:
        """Record ``count`` samples of ``value``."""
        self._registry.observe(self._name(name), value, count)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A registry view nested one prefix deeper."""
        return ScopedRegistry(self._registry, self._name(prefix))


def merge_observations(observations: Iterable[Mapping]) -> dict:
    """Merge serialised observation dicts with per-kind semantics.

    Counters sum; histograms sum bucketwise (disjoint buckets union);
    an empty iterable or empty member dicts (a shard that published
    nothing) contribute nothing.  Serialised timers — which
    :meth:`CounterRegistry.as_dict` never emits — are rejected, as is
    any kind mismatch between shards, since silently coercing either
    would corrupt the aggregate.
    """
    merged: dict[str, dict] = {}
    for obs in observations:
        for name, metric in obs.items():
            kind = metric.get("kind")
            if kind not in ("counter", "histogram"):
                raise MetricKindError(
                    f"metric {name!r} has unmergeable kind {kind!r}"
                )
            current = merged.get(name)
            if current is None:
                if kind == "counter":
                    merged[name] = {"kind": kind, "value": metric["value"]}
                else:
                    merged[name] = {
                        "kind": kind,
                        "buckets": dict(metric["buckets"]),
                    }
                continue
            if current["kind"] != kind:
                raise MetricKindError(
                    f"metric {name!r} is a {current['kind']} in one shard "
                    f"and a {kind} in another"
                )
            if kind == "counter":
                current["value"] += metric["value"]
            else:
                buckets = current["buckets"]
                for bucket, count in metric["buckets"].items():
                    buckets[bucket] = buckets.get(bucket, 0) + count
    # Canonical ordering: sorted names, numerically sorted bucket keys.
    out: dict[str, dict] = {}
    for name in sorted(merged):
        metric = merged[name]
        if metric["kind"] == "histogram":
            metric = {
                "kind": "histogram",
                "buckets": {
                    key: metric["buckets"][key]
                    for key in sorted(metric["buckets"], key=_bucket_sort_key)
                },
            }
        out[name] = metric
    return out


def _bucket_sort_key(key: str) -> tuple[int, int | str]:
    try:
        return (0, int(key))
    except ValueError:
        return (1, key)

"""SRAM energy/area models and system energy accounting."""

from repro.power.area import (
    ADDRESS_BITS,
    AreaReport,
    base_victim_area,
    paper_headline_area,
    tag_bits,
)
from repro.power.cacti import SRAMEnergyParams, SRAMModel
from repro.power.energy import EnergyInputs, EnergyReport, system_energy

__all__ = [
    "ADDRESS_BITS",
    "AreaReport",
    "base_victim_area",
    "EnergyInputs",
    "EnergyReport",
    "paper_headline_area",
    "SRAMEnergyParams",
    "SRAMModel",
    "system_energy",
    "tag_bits",
]

"""CACTI-like analytic SRAM energy model.

The paper uses CACTI 6.0 at a 22nm process to estimate the dynamic and
leakage energy of the LLC tag/state and data arrays (Section VI.D).  CACTI
itself is a large circuit estimator; for reproducing energy *ratios* its
output reduces to a handful of per-access energies and a leakage power,
each scaling roughly with the square root of array capacity (bitline/
wordline lengths grow with sqrt of area).  The reference values below are
representative 22nm numbers for a 2MB SRAM macro and are calibrated so the
relative magnitudes (DRAM >> data array >> tag array) match published
CACTI tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.config import CacheGeometry
from repro.power.area import BASELINE_METADATA_BITS, tag_bits

#: Capacity (bytes) at which the reference energies are quoted.
_REFERENCE_BYTES = 2 * 2**20


@dataclass(frozen=True)
class SRAMEnergyParams:
    """Per-event energies (nJ) and leakage (W) for a 2MB, 22nm SRAM."""

    #: Reading one full 64B line from the data array.
    data_read_nj: float = 0.45
    #: Writing one full 64B line into the data array (write drivers make
    #: writes costlier than reads in wide SRAM macros).
    data_write_nj: float = 0.90
    #: One tag+state lookup over a 16-way set (all ways compared).
    tag_access_nj: float = 0.035
    #: Leakage power of the whole 2MB array (tags + data).
    leakage_watts: float = 0.12
    #: BDI compression of one line (scaled to 22nm per [23]).
    compress_nj: float = 0.040
    #: BDI decompression of one line.
    decompress_nj: float = 0.020
    #: CPU frequency for cycle-to-time conversion.
    cpu_hz: float = 4.0e9


class SRAMModel:
    """Scales the reference energies to a concrete cache geometry."""

    def __init__(
        self,
        geometry: CacheGeometry,
        tags_per_way: int = 1,
        extra_metadata_bits: int = 0,
        params: SRAMEnergyParams | None = None,
    ) -> None:
        self.geometry = geometry
        self.tags_per_way = tags_per_way
        self.extra_metadata_bits = extra_metadata_bits
        self.params = params or SRAMEnergyParams()
        #: sqrt capacity scaling for wire-dominated access energy.
        self._scale = math.sqrt(geometry.size_bytes / _REFERENCE_BYTES)

    # ------------------------------------------------------------------
    # Dynamic energy
    # ------------------------------------------------------------------

    @property
    def data_read_nj(self) -> float:
        """Energy to read one physical line."""
        return self.params.data_read_nj * self._scale

    @property
    def data_write_nj(self) -> float:
        """Energy to write one full physical line."""
        return self.params.data_write_nj * self._scale

    def data_partial_write_nj(self, segments: int, segments_per_line: int) -> float:
        """Write energy with word enables: only touched segments toggle."""
        if segments_per_line <= 0:
            raise ValueError("segments_per_line must be positive")
        fraction = min(segments, segments_per_line) / segments_per_line
        return self.data_write_nj * fraction

    @property
    def tag_access_nj(self) -> float:
        """Energy of one tag lookup; doubled tags cost proportionally more."""
        bits_factor = self.tags_per_way + self.extra_metadata_bits / self._tag_entry_bits
        return self.params.tag_access_nj * self._scale * bits_factor

    @property
    def _tag_entry_bits(self) -> int:
        return tag_bits(self.geometry) + BASELINE_METADATA_BITS

    # ------------------------------------------------------------------
    # Static energy
    # ------------------------------------------------------------------

    @property
    def leakage_watts(self) -> float:
        """Leakage scales linearly with stored bits, including added tags.

        The added bits per way are one bare address tag plus the extra
        metadata (Section IV.C: the Victim Cache tag needs no replacement
        or coherence byte of its own), over the original tag+metadata+data
        entry — the same 40b/551b arithmetic as the area model.
        """
        base = self.params.leakage_watts * (self.geometry.size_bytes / _REFERENCE_BYTES)
        entry = self._tag_entry_bits
        line_bits = self.geometry.line_bytes * 8
        added_bits = (self.tags_per_way - 1) * tag_bits(
            self.geometry
        ) + self.extra_metadata_bits
        return base * (1.0 + added_bits / (entry + line_bits))

    def leakage_joules(self, cycles: float) -> float:
        """Leakage energy over ``cycles`` CPU cycles."""
        return self.leakage_watts * cycles / self.params.cpu_hz

"""Area overhead accounting (paper Section IV.C).

The opportunistic compressed cache keeps the data array untouched and adds
per way: one extra address tag for the Victim Cache plus 9 bits of
metadata (two 4-bit compressed-size fields, one valid bit).  For the
paper's 2MB 16-way LLC with 48-bit addresses that is

    40 bits / (39 bits + 512 bits) = 7.3%

of the original tag+data array, and adding the 1.2% compression/
decompression logic estimate from DCC gives the headline 8.5%.
These functions reproduce the arithmetic for arbitrary geometries so the
Section IV.C bench can print the paper's numbers and sensitivity around
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheGeometry

#: Physical address width assumed by the paper.
ADDRESS_BITS = 48

#: Baseline per-line metadata: replacement + coherence + tracking bits.
BASELINE_METADATA_BITS = 8

#: Compressed-size field width: 4 bits address 16 sizes at 4B granularity.
SIZE_FIELD_BITS = 4

#: Victim Cache metadata: one valid bit (clean, random-replaced lines need
#: no coherence or replacement state, Section IV.C).
VICTIM_VALID_BITS = 1

#: Compression + decompression logic, as a fraction of cache area (from
#: DCC's estimate, which the paper adopts).
COMPRESSION_LOGIC_FRACTION = 0.012


@dataclass(frozen=True)
class AreaReport:
    """Per-way bit accounting and resulting overhead fractions."""

    tag_bits: int
    baseline_way_bits: int
    added_bits: int
    tag_metadata_overhead: float
    compression_logic_overhead: float

    @property
    def total_overhead(self) -> float:
        """Combined area overhead as a fraction of the baseline LLC."""
        return self.tag_metadata_overhead + self.compression_logic_overhead


def tag_bits(geometry: CacheGeometry, address_bits: int = ADDRESS_BITS) -> int:
    """Address-tag width for a cache geometry."""
    return address_bits - geometry.index_bits - geometry.offset_bits


def base_victim_area(
    geometry: CacheGeometry, address_bits: int = ADDRESS_BITS
) -> AreaReport:
    """Area overhead of Base-Victim vs. the uncompressed cache.

    ``geometry`` is the *baseline* (uncompressed) geometry; Base-Victim
    doubles its tags.
    """
    tag = tag_bits(geometry, address_bits)
    data_bits = geometry.line_bytes * 8
    baseline_way = tag + BASELINE_METADATA_BITS + data_bits
    # Added per way: a second address tag, two size fields, one valid bit.
    added = tag + 2 * SIZE_FIELD_BITS + VICTIM_VALID_BITS
    # The paper's 40b/(39b+512b) counts the original tag + metadata as
    # 39 bits against a 31-bit tag; it compares the added bits to the
    # original (tag + data) array.
    original = tag + BASELINE_METADATA_BITS + data_bits
    return AreaReport(
        tag_bits=tag,
        baseline_way_bits=baseline_way,
        added_bits=added,
        tag_metadata_overhead=added / original,
        compression_logic_overhead=COMPRESSION_LOGIC_FRACTION,
    )


def paper_headline_area() -> AreaReport:
    """The exact Section IV.C computation: 2MB 16-way, 48-bit addresses.

    The paper quotes 40b/(39b+512b) = 7.3%: a 31-bit tag, 8 bits of
    original metadata (counted in the denominator as 39b + 512b data) and
    40 added bits (31-bit tag + 9 metadata bits).
    """
    return base_victim_area(CacheGeometry(2 * 2**20, 16))

"""System (cache + memory) energy accounting for Section VI.D.

Combines the SRAM model (tags, data array, leakage, compression logic)
with the Micron-style DRAM model to produce the paper's Figure 14 metric:
energy of a compressed configuration relative to the uncompressed
baseline, with and without SRAM word enables.

With word enables, a compressed fill only toggles the segments it writes;
without them every fill and writeback of a partial line becomes a
read-modify-write (a full-line read plus a full-line write) to preserve
the partner line — the effect that erodes most of the savings in the
paper ("the energy savings drop to 2.2%").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheGeometry
from repro.memory.power import DRAMEnergyParams, dram_energy_from_counts
from repro.power.cacti import SRAMEnergyParams, SRAMModel


@dataclass(frozen=True)
class EnergyInputs:
    """Run counters needed to compute subsystem energy.

    All counts come from :class:`~repro.cache.hierarchy.HierarchyStats`
    and the DRAM model of a finished simulation.
    """

    cycles: float
    llc_accesses: int
    llc_data_reads: int
    llc_data_writes: int
    llc_fill_segments: int
    compressions: int
    decompressions: int
    dram_reads: int
    dram_writes: int
    dram_activates: int


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run, in joules."""

    tag_j: float
    data_read_j: float
    data_write_j: float
    leakage_j: float
    compression_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        """Total energy in joules across all components."""
        return (
            self.tag_j
            + self.data_read_j
            + self.data_write_j
            + self.leakage_j
            + self.compression_j
            + self.dram_j
        )


def system_energy(
    inputs: EnergyInputs,
    geometry: CacheGeometry,
    tags_per_way: int = 1,
    extra_metadata_bits: int = 0,
    segments_per_line: int = 16,
    word_enables: bool = True,
    sram_params: SRAMEnergyParams | None = None,
    dram_params: DRAMEnergyParams | None = None,
) -> EnergyReport:
    """Energy of the LLC + DRAM subsystem for one run.

    ``tags_per_way=2`` with ``extra_metadata_bits=9`` models Base-Victim's
    doubled tags (Section IV.C); compression/decompression events are only
    charged when ``tags_per_way > 1`` (the baseline has no codec).
    """
    sram = SRAMModel(geometry, tags_per_way, extra_metadata_bits, sram_params)
    params = sram.params

    tag_j = inputs.llc_accesses * sram.tag_access_nj * 1e-9
    data_read_j = inputs.llc_data_reads * sram.data_read_nj * 1e-9

    if word_enables or tags_per_way == 1:
        # Uncompressed caches always write full lines; fill_segments then
        # equals data_writes * segments_per_line by construction.
        if tags_per_way == 1:
            data_write_j = inputs.llc_data_writes * sram.data_write_nj * 1e-9
        else:
            data_write_j = (
                sram.data_partial_write_nj(1, segments_per_line)
                * inputs.llc_fill_segments
                * 1e-9
            )
    else:
        # No word enables: each partial write is a read-modify-write.
        data_write_j = (
            inputs.llc_data_writes
            * (sram.data_read_nj + sram.data_write_nj)
            * 1e-9
        )

    leakage_j = sram.leakage_joules(inputs.cycles)
    if tags_per_way > 1:
        compression_j = (
            inputs.compressions * params.compress_nj
            + inputs.decompressions * params.decompress_nj
        ) * 1e-9
    else:
        compression_j = 0.0

    dram = dram_energy_from_counts(
        inputs.dram_reads,
        inputs.dram_writes,
        inputs.dram_activates,
        inputs.cycles,
        dram_params,
    )
    return EnergyReport(
        tag_j=tag_j,
        data_read_j=data_read_j,
        data_write_j=data_write_j,
        leakage_j=leakage_j,
        compression_j=compression_j,
        dram_j=dram.total_j,
    )

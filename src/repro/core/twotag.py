"""Two-tags-per-way compressed cache strawmen (Sections III and VI.A).

The simple two-tag architecture associates two logical tags with every
physical way: a way can hold two lines when their compressed sizes share
its segments.  The replacement policy runs over all ``2 * ways`` logical
lines.  Because compressibility and recency do not correlate, the policy's
chosen victim may not free enough space, forcing one of two bad options the
paper analyses:

* **Naive** (Figure 6): *partner line victimization* — evict every logical
  line in the physical way of the chosen victim, even if the partner is
  the MRU line.
* **Modified** (Figure 7): an ECM-like repair — search the policy's
  eviction-eligible tier for victims whose eviction needs no partner
  eviction, pick the one with the largest compressed size, and only fall
  back to partner victimization when no such candidate exists.

Both lose to the uncompressed baseline on many traces, which is the
paper's motivation for Base-Victim.
"""

from __future__ import annotations

from repro.cache.config import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy
from repro.compression.segments import SegmentGeometry
from repro.core.interfaces import AccessKind, LLCAccessResult, LLCArchitecture


class _TwoTagSet:
    """One two-tag set: ``2 * ways`` logical slots.

    The slot layout mirrors the hardware organisation of two tag arrays:
    slot ``l`` is tag ``l // ways`` of physical way ``l % ways``, so slots
    ``l`` and ``l + ways`` share one physical line.
    """

    __slots__ = ("tags", "valid", "dirty", "size", "policy_state", "lookup")

    def __init__(self, slots: int, policy_state: object) -> None:
        self.tags = [0] * slots
        self.valid = [False] * slots
        self.dirty = [False] * slots
        self.size = [0] * slots
        self.policy_state = policy_state
        self.lookup: dict[int, int] = {}


class TwoTagLLC(LLCArchitecture):
    """Simple two-tag compressed LLC, naive or modified replacement."""

    name = "two-tag"
    extra_tag_cycles = 1
    tags_per_way = 2

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        segment_geometry: SegmentGeometry | None = None,
        modified: bool = False,
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        self.modified = modified
        if modified:
            self.name = "two-tag-modified"
        self.segment_geometry = segment_geometry or SegmentGeometry(
            geometry.line_bytes
        )
        self.segments_per_line = self.segment_geometry.segments_per_line
        slots = geometry.associativity * 2
        self._sets = [
            _TwoTagSet(slots, policy.make_set_state(slots, index))
            for index in range(geometry.num_sets)
        ]
        self._set_mask = geometry.num_sets - 1

        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_partner_victimizations = 0
        self.stat_writeback_misses = 0

    # ------------------------------------------------------------------
    # Main access path
    # ------------------------------------------------------------------

    def _partner(self, slot: int) -> int:
        """The logical slot sharing ``slot``'s physical way."""
        ways = self.geometry.associativity
        return slot - ways if slot >= ways else slot + ways

    def access(self, addr: int, kind: int, size_segments: int) -> LLCAccessResult:
        """Service one access against this LLC architecture."""
        if not 0 <= size_segments <= self.segments_per_line:
            raise ValueError(
                f"size_segments {size_segments} out of range "
                f"0..{self.segments_per_line}"
            )
        result = LLCAccessResult()
        cset = self._sets[addr & self._set_mask]

        slot = cset.lookup.get(addr)
        if slot is not None:
            self._hit(cset, slot, kind, size_segments, result)
            return result

        if kind == AccessKind.WRITEBACK:
            self.stat_writeback_misses += 1
            result.memory_writes = 1
            return result

        self.stat_misses += 1
        result.memory_reads = 1
        self._fill(cset, addr, size_segments, kind == AccessKind.WRITE, result)
        result.data_writes += 1
        result.fill_segments += size_segments
        if kind != AccessKind.PREFETCH:
            result.data_reads += 1
        return result

    def _hit(
        self,
        cset: _TwoTagSet,
        slot: int,
        kind: int,
        size_segments: int,
        result: LLCAccessResult,
    ) -> None:
        result.hit = True
        self.stat_hits += 1
        if kind == AccessKind.PREFETCH:
            return

        self.policy.on_hit(cset.policy_state, slot)
        if kind == AccessKind.READ:
            result.data_reads = 1
            result.compressed_hit = self._needs_decompression(cset.size[slot])
            return

        # WRITE or WRITEBACK: new data, possibly a new compressed size.
        cset.dirty[slot] = True
        cset.size[slot] = size_segments
        result.data_writes = 1
        result.fill_segments = size_segments
        partner = self._partner(slot)
        if (
            cset.valid[partner]
            and size_segments + cset.size[partner] > self.segments_per_line
        ):
            # The grown line overflows the shared way: the partner must go.
            self._evict(cset, partner, result)
            self.stat_partner_victimizations += 1

    # ------------------------------------------------------------------
    # Fill / replacement
    # ------------------------------------------------------------------

    def _fill(
        self,
        cset: _TwoTagSet,
        addr: int,
        size_segments: int,
        dirty: bool,
        result: LLCAccessResult,
    ) -> None:
        slot = self._choose_slot(cset, size_segments, result)
        partner = self._partner(slot)
        if cset.valid[slot]:
            self._evict(cset, slot, result)
        if (
            cset.valid[partner]
            and size_segments + cset.size[partner] > self.segments_per_line
        ):
            self._evict(cset, partner, result)
            self.stat_partner_victimizations += 1
        cset.tags[slot] = addr
        cset.valid[slot] = True
        cset.dirty[slot] = dirty
        cset.size[slot] = size_segments
        cset.lookup[addr] = slot
        self.policy.on_fill_sized(cset.policy_state, slot, size_segments)

    def _choose_slot(
        self, cset: _TwoTagSet, size_segments: int, result: LLCAccessResult
    ) -> int:
        """Pick the logical slot to fill; may imply partner eviction.

        The *naive* scheme (Section III, option 1) does not look at sizes
        at all: it takes the first invalid slot, or the policy's victim,
        and lets ``_fill`` victimize the partner when the incoming line
        does not fit — exactly the behaviour whose glass jaws Figure 6
        demonstrates.

        The *modified* scheme (Section VI.A) repairs that: it prefers
        invalid slots whose partner leaves room, then searches the
        policy's eviction-eligible tier for victims that need no partner
        eviction (taking the largest compressed size among them), and
        only then falls back to partner victimization.
        """
        valid = cset.valid
        size = cset.size

        if not self.modified:
            # Naive: strict policy order over all logical tags, exactly as
            # Section III describes ("LRU replacement indicates it should
            # replace the LRU line").  Sizes are never consulted here;
            # ``_fill`` victimizes the partner when the line does not fit.
            return self.policy.choose_victim(cset.policy_state)

        # Modified (Section VI.A): among the policy's eviction-eligible
        # tier, keep only slots whose use needs no partner eviction.
        # Invalid slots are the cheapest candidates (nothing is evicted at
        # all); among valid ones the largest compressed size frees the
        # most segments, per ECM's capacity-maximising goal.
        eligible = self.policy.eligible_victims(cset.policy_state)
        candidates = [
            slot
            for slot in eligible
            if self._fits_after_evicting(cset, slot, size_segments)
        ]
        if candidates:
            return max(
                candidates,
                key=lambda s: (not valid[s], size[s] if valid[s] else 0, -s),
            )
        for slot in range(len(valid)):
            if not valid[slot]:
                return slot
        return self.policy.choose_victim(cset.policy_state)

    def _fits_after_evicting(
        self, cset: _TwoTagSet, slot: int, size_segments: int
    ) -> bool:
        partner = self._partner(slot)
        return (
            not cset.valid[partner]
            or size_segments + cset.size[partner] <= self.segments_per_line
        )

    def _evict(self, cset: _TwoTagSet, slot: int, result: LLCAccessResult) -> None:
        addr = cset.tags[slot]
        was_dirty = cset.dirty[slot]
        if was_dirty:
            result.memory_writes += 1
        result.invalidates.append((addr, was_dirty))
        del cset.lookup[addr]
        cset.valid[slot] = False
        cset.dirty[slot] = False
        self.policy.on_invalidate(cset.policy_state, slot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _needs_decompression(self, size_segments: int) -> bool:
        return 0 < size_segments < self.segments_per_line

    def contains(self, addr: int) -> bool:
        """Return whether the address's line is resident."""
        return addr in self._sets[addr & self._set_mask].lookup

    def hint_downgrade(self, addr: int) -> None:
        """Downgrade the line's replacement priority if resident."""
        cset = self._sets[addr & self._set_mask]
        slot = cset.lookup.get(addr)
        if slot is not None:
            self.policy.on_hint(cset.policy_state, slot)

    def resident_logical_lines(self) -> int:
        """Count of logical lines currently resident."""
        return sum(len(cset.lookup) for cset in self._sets)

    def check_invariants(self) -> None:
        """Validate per-way segment budgets; used by property-based tests."""
        spl = self.segments_per_line
        ways = self.geometry.associativity
        for index, cset in enumerate(self._sets):
            for way in range(ways):
                used = 0
                for slot in (way, way + ways):
                    if cset.valid[slot]:
                        used += cset.size[slot]
                        if cset.lookup.get(cset.tags[slot]) != slot:
                            raise AssertionError(
                                f"set {index} slot {slot}: lookup out of sync"
                            )
                if used > spl:
                    raise AssertionError(
                        f"set {index} way {way}: {used} segments exceed {spl}"
                    )
